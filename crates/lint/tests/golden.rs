//! Golden-file tests: the JSON and pretty renderings of a fixture
//! report are pinned byte-for-byte, so any drift in spans, wording, or
//! key order is a reviewed diff rather than a silent change.
//!
//! Regenerate after an intentional format change with
//! `LP_LINT_BLESS=1 cargo test -p lp-lint --test golden`.

use std::path::{Path, PathBuf};

use lp_lint::{analyze_source, default_targets, lint_paths, LintConfig};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn golden_check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("LP_LINT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with LP_LINT_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, want,
        "golden mismatch for {name}; if intentional, regenerate with LP_LINT_BLESS=1"
    );
}

fn ep_skip_flush_report() -> lp_lint::LintReport {
    analyze_source(
        &fixture("ep_skip_flush.rs"),
        "fixtures/ep_skip_flush.rs",
        "ep_skip_flush",
        &LintConfig::default(),
    )
}

#[test]
fn ep_skip_flush_json_golden() {
    let mut json = ep_skip_flush_report().to_json();
    json.push('\n');
    golden_check("ep_skip_flush.json", &json);
}

#[test]
fn ep_skip_flush_pretty_golden() {
    let pretty = ep_skip_flush_report().to_string();
    golden_check("ep_skip_flush.txt", &pretty);
}

/// One combined report over the W1–W4/S6 efficiency-rule fixtures, linted
/// through the same two-pass (summaries-first) pipeline as the real tree.
fn efficiency_report() -> lp_lint::LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let paths: Vec<PathBuf> = [
        "w1_redundant_flush.rs",
        "w2_redundant_fence.rs",
        "w3_range_shadowed_flush.rs",
        "w4_unrolled_flush.rs",
        "w4_loop_barrier.rs",
        "s6_lp_unfolded_store.rs",
    ]
    .iter()
    .map(|n| root.join("fixtures").join(n))
    .collect();
    lint_paths(&paths, &root, &LintConfig::default()).expect("lint fixtures")
}

#[test]
fn efficiency_fixtures_json_golden() {
    let mut json = efficiency_report().to_json();
    json.push('\n');
    golden_check("efficiency.json", &json);
}

#[test]
fn efficiency_fixtures_pretty_golden() {
    let pretty = efficiency_report().to_string();
    golden_check("efficiency.txt", &pretty);
}

#[test]
fn each_efficiency_fixture_flags_its_own_rule() {
    use lp_lint::SRule;
    for (stem, rule) in [
        ("w1_redundant_flush", SRule::W1RedundantFlush),
        ("w2_redundant_fence", SRule::W2RedundantFence),
        ("w3_range_shadowed_flush", SRule::W3ShadowedFlush),
        ("w4_unrolled_flush", SRule::W4MissedCoalescing),
        ("w4_loop_barrier", SRule::W4MissedCoalescing),
        ("s6_lp_unfolded_store", SRule::S6UncoveredData),
    ] {
        let report = analyze_source(
            &fixture(&format!("{stem}.rs")),
            &format!("fixtures/{stem}.rs"),
            stem,
            &LintConfig::default(),
        );
        assert!(
            report.findings.iter().any(|v| v.rule == rule),
            "{stem} should flag {}:\n{report}",
            rule.id()
        );
    }
}

#[test]
fn clean_tree_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let targets = default_targets(&root).expect("enumerate lint surface");
    assert!(targets.len() >= 10, "lint surface unexpectedly small");
    let report = lint_paths(&targets, &root, &LintConfig::default()).expect("lint tree");
    assert!(report.is_clean(), "clean tree must lint clean:\n{report}");
    assert_eq!(report.files.len(), targets.len());
}

#[test]
fn every_buggy_fixture_is_dirty_and_control_is_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(fixtures.len() >= 7, "{fixtures:?}");
    for f in fixtures {
        let stem = f.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&f).unwrap();
        let report = analyze_source(&src, &stem, &stem, &LintConfig::default());
        if stem == "clean_control" {
            assert!(report.is_clean(), "{report}");
        } else {
            assert!(!report.is_clean(), "{stem} should have findings");
        }
    }
}

//! Golden-file tests: the JSON and pretty renderings of a fixture
//! report are pinned byte-for-byte, so any drift in spans, wording, or
//! key order is a reviewed diff rather than a silent change.
//!
//! Regenerate after an intentional format change with
//! `LP_LINT_BLESS=1 cargo test -p lp-lint --test golden`.

use std::path::{Path, PathBuf};

use lp_lint::{analyze_source, default_targets, lint_paths, LintConfig};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn golden_check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("LP_LINT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with LP_LINT_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, want,
        "golden mismatch for {name}; if intentional, regenerate with LP_LINT_BLESS=1"
    );
}

fn ep_skip_flush_report() -> lp_lint::LintReport {
    analyze_source(
        &fixture("ep_skip_flush.rs"),
        "fixtures/ep_skip_flush.rs",
        "ep_skip_flush",
        &LintConfig::default(),
    )
}

#[test]
fn ep_skip_flush_json_golden() {
    let mut json = ep_skip_flush_report().to_json();
    json.push('\n');
    golden_check("ep_skip_flush.json", &json);
}

#[test]
fn ep_skip_flush_pretty_golden() {
    let pretty = ep_skip_flush_report().to_string();
    golden_check("ep_skip_flush.txt", &pretty);
}

#[test]
fn clean_tree_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let targets = default_targets(&root).expect("enumerate lint surface");
    assert!(targets.len() >= 10, "lint surface unexpectedly small");
    let report = lint_paths(&targets, &root, &LintConfig::default()).expect("lint tree");
    assert!(report.is_clean(), "clean tree must lint clean:\n{report}");
    assert_eq!(report.files.len(), targets.len());
}

#[test]
fn every_buggy_fixture_is_dirty_and_control_is_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(fixtures.len() >= 7, "{fixtures:?}");
    for f in fixtures {
        let stem = f.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&f).unwrap();
        let report = analyze_source(&src, &stem, &stem, &LintConfig::default());
        if stem == "clean_control" {
            assert!(report.is_clean(), "{report}");
        } else {
            assert!(!report.is_clean(), "{stem} should have findings");
        }
    }
}

//! Cross-stack differential: the static expectation table must stay in
//! lock-step with the rigs lp-crashmc actually registers, and with the
//! dynamic-rule twin mapping declared in lp-check.

use lp_lint::differential::{expectations, run_differential, Verdict};
use lp_lint::LintConfig;

/// The expectation table covers exactly the registered rigs, in
/// registration order — adding a rig to lp-crashmc without deciding its
/// static verdict is a test failure, not a silent gap. Entries past the
/// lp-crashmc registry are allowed only for rigs whose bug the dynamic
/// stack flags in the lp-check sanitizer instead (latent bugs that
/// defense-in-depth masks at runtime, so no corrupt crash state exists);
/// each must be Static and backed by a flagged sanitizer mutation of the
/// same dynamic rule.
#[test]
fn expectation_table_is_total_over_registered_rigs() {
    let expected: Vec<&str> = expectations().iter().map(|e| e.rig).collect();
    let mut registered: Vec<String> = lp_crashmc::mutations::all()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    registered.extend(
        lp_crashmc::fault_mutations::all()
            .iter()
            .map(|(c, _)| c.name.clone()),
    );
    assert!(
        expected.len() >= registered.len(),
        "expectation table misses lp-crashmc rigs: {expected:?} vs {registered:?}"
    );
    assert_eq!(&expected[..registered.len()], registered.as_slice());
    let sanitizer = lp_check::mutations::run_all();
    for e in expectations().into_iter().skip(registered.len()) {
        assert!(
            matches!(e.verdict, Verdict::Static { .. }),
            "{}: sanitizer-only rigs must be statically decidable",
            e.rig
        );
        let rig_name = e.rig.trim_start_matches("mut:");
        let backing = sanitizer
            .iter()
            .find(|o| o.name == rig_name)
            .unwrap_or_else(|| panic!("{}: no lp-check sanitizer rig named {rig_name}", e.rig));
        assert_eq!(backing.expected, e.dynamic_rule, "{}", e.rig);
        assert!(
            backing.flagged(),
            "{}: sanitizer rig did not flag {}",
            e.rig,
            e.dynamic_rule.id()
        );
    }
}

/// Every statically-decidable rig is flagged with its expected rule at a
/// real span, and the clean control lints to zero findings.
#[test]
fn differential_run_passes() {
    let out = run_differential(&LintConfig::default());
    assert!(out.pass(), "{out}");
    assert!(out.static_count() >= 6, "{}", out.static_count());
}

/// A rig is marked dynamic-only only when its *rule family* is runtime
/// dependent (no static twin) or the rig's bug is injected by the fault
/// model rather than visible in persist ordering (`fmut:` rigs).
#[test]
fn dynamic_only_rigs_are_justified() {
    for e in expectations() {
        if let Verdict::DynamicOnly { reason } = e.verdict {
            let fault_injected = e.rig.starts_with("fmut:");
            let no_twin = e.dynamic_rule.static_twin().is_none();
            assert!(
                fault_injected || no_twin,
                "{} marked dynamic-only without justification",
                e.rig
            );
            assert!(!reason.is_empty());
        }
    }
}

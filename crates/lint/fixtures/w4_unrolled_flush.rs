//! W4 fixture (element form): a loop body flushing two adjacent elements
//! of the same array per iteration — a single `flush_range` over the
//! strip would queue each line once instead of per-element. Dynamic
//! twin: the `flushes` counter (adjacent elements share cache lines, so
//! coalescing dedups them).

fn persist_strip(ctx: &mut CoreCtx<'_>) {
    for i in 0..n {
        ctx.store(a, i, v);
        ctx.store(a, i + 1, v);
        ctx.clflushopt(a.addr(i)); // BUG: per-element flushes of one strip;
        ctx.clflushopt(a.addr(i + 1)); // use flush_range over the strip
    }
    ctx.sfence();
}

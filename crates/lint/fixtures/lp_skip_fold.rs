//! Fixture mirroring `mut:lp_skip_fold`: an LP region folds only two of
//! its three stores into the running checksum before publishing it, so a
//! lost third line is invisible to recovery verification.

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for (n, (i, v)) in VALS.into_iter().enumerate() {
        ctx.store(arr, i, v);
        if n < 2 {
            self.ck.update(v.to_bits());
        } // BUG: the third store is never folded
    }
    self.table.store(ctx, KEY, self.ck.value());
    ctx.region_end();
}

//! W1 fixture: the same line is flushed twice with no intervening store
//! on any path — the second `clflushopt` queues a second writeback of
//! identical bytes. Dynamic twin: the `flushes` counter drops from 2 to
//! 1 when the duplicate is deleted (see `lp-lint --cost-check`).

fn persist_result(ctx: &mut CoreCtx<'_>) {
    ctx.store(self.buf, 0, v);
    ctx.clflushopt(self.buf.addr(0));
    ctx.clflushopt(self.buf.addr(0)); // BUG: line already queued, nothing stored since
    ctx.sfence();
}

//! Control fixture: the same three scheme idioms written *correctly*.
//! Must lint to zero findings — this pins down the analyzer's false
//! positive rate on the exact patterns the buggy fixtures perturb.

fn region_lazy(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for (i, v) in VALS {
        ctx.store(arr, i, v);
        self.ck.update(v.to_bits());
    }
    self.table.store(ctx, KEY, self.ck.value());
    ctx.region_end();
}

fn region_eager(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for (i, v) in VALS {
        ctx.store(arr, i, v);
        ctx.clflushopt(arr.addr(i));
    }
    ctx.sfence();
    ctx.store(markers, 0, KEY as u64 + 1);
    ctx.clflushopt(markers.addr(0));
    ctx.sfence();
    ctx.region_end();
}

fn recover(ctx: &mut CoreCtx<'_>) {
    for (i, v) in VALS {
        ctx.store(arr, i, v);
        ctx.clflushopt(arr.addr(i));
    }
    ctx.sfence();
    ctx.store(markers, 0, KEY as u64 + 1);
    ctx.clflushopt(markers.addr(0));
    ctx.sfence();
}

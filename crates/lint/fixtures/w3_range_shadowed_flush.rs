//! W3 fixture: an element flush of a line the preceding `flush_range`
//! over the same array already covers — one line is persisted twice per
//! call. Dynamic twin: the `flushes` counter drops by one when the
//! shadowed element flush is deleted.

fn persist_block(ctx: &mut CoreCtx<'_>) {
    ctx.store(self.buf, 0, v);
    ctx.flush_range(self.buf, 0, n);
    ctx.clflushopt(self.buf.addr(0)); // BUG: covered by the range flush above
    ctx.sfence();
}

//! Fixture mirroring `mut:wal_data_before_log`: a hand-rolled WAL
//! transaction mutates data in place *before* its undo log is durable.

fn commit(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    let old: f64 = ctx.load(arr, 0);
    ctx.store(arr, 0, old + DELTA); // BUG: data before log
    ctx.store(log, 0, arr.addr(0).0);
    ctx.store(log, 1, old.to_bits());
    ctx.clflushopt(log.addr(0));
    ctx.sfence();
    ctx.store(header, 1, 2); // count
    ctx.store(header, 0, 1); // status: log sealed
    ctx.clflushopt(header.addr(0));
    ctx.sfence();
    ctx.clflushopt(arr.addr(0)); // apply phase
    ctx.store(header, 2, KEY as u64 + 1); // marker
    ctx.clflushopt(header.addr(0));
    ctx.sfence();
    ctx.store(header, 0, 0); // status: applied
    ctx.clflushopt(header.addr(0));
    ctx.sfence();
    ctx.region_end();
}

//! W2 fixture: a fence that no unflushed store or flush can reach — the
//! first `sfence` already drained everything, so the second stalls the
//! pipeline for nothing. Dynamic twin: the `fences` counter drops from 2
//! to 1 when the duplicate is deleted.

fn persist_result(ctx: &mut CoreCtx<'_>) {
    ctx.store(self.buf, 0, v);
    ctx.clflushopt(self.buf.addr(0));
    ctx.sfence();
    ctx.sfence(); // BUG: nothing issued since the previous fence
}

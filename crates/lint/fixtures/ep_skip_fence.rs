//! Fixture mirroring `mut:ep_skip_fence`: an EagerRecompute region
//! flushes its stores but omits the fence before the marker update, so
//! the marker can become durable while data flushes are still in flight.

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for (i, v) in VALS {
        ctx.store(arr, i, v);
        ctx.clflushopt(arr.addr(i));
    }
    // BUG: no sfence before the marker — data flushes are still
    // retirable when the marker becomes durable.
    ctx.store(markers, 0, KEY as u64 + 1);
    ctx.clflushopt(markers.addr(0));
    ctx.sfence();
    ctx.region_end();
}

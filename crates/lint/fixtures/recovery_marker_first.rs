//! Fixture mirroring `fmut:marker_first_recovery`: an EP-style recovery
//! persists its done-marker *before* re-doing the data it vouches for.

fn recover(ctx: &mut CoreCtx<'_>) {
    // BUG: the marker becomes durable before the data it promises; a
    // crash in between convinces the next attempt there is nothing left
    // to repair.
    ctx.store(markers, 0, KEY as u64 + 1);
    ctx.clflushopt(markers.addr(0));
    ctx.sfence();
    for (i, v) in VALS {
        ctx.store(arr, i, v);
        ctx.clflushopt(arr.addr(i));
    }
    ctx.sfence();
}

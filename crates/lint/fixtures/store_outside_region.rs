//! Fixture mirroring `mut:store_outside_region`: a store to protected
//! data lands before the region opens, so no checksum covers it.

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.store(arr, 0, 5.0); // BUG: unprotected store, no region
    ctx.region_begin(KEY);
    ctx.store(arr, 8, 2.0);
    self.ck.update(bits(2.0));
    ctx.store(arr, 9, 4.0);
    self.ck.update(bits(4.0));
    self.table.store(ctx, KEY, self.ck.value());
    ctx.region_end();
}

//! Fixture mirroring `mut:ep_skip_flush`: an EagerRecompute region
//! forgets to flush one of its stores; the line can sit dirty in cache
//! while the properly fenced marker commits.

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for (n, (i, v)) in VALS.into_iter().enumerate() {
        ctx.store(arr, i, v);
        if n != 1 {
            ctx.clflushopt(arr.addr(i));
        } // BUG: arr[8] is never flushed
    }
    ctx.sfence();
    ctx.store(markers, 0, KEY as u64 + 1);
    ctx.clflushopt(markers.addr(0));
    ctx.sfence();
    ctx.region_end();
}

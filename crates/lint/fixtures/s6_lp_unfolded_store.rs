//! S6 fixture: a Lazy Persistency region persists two data lines but
//! folds only the first into its running checksum — a post-crash audit
//! of the second line can pass verification on garbage. Every persisted
//! data line on an LP path must be covered by some checksum range before
//! the region commits (dynamic twin: R2).

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(key);
    ctx.store(a, 0, v);
    self.ck.update(v);
    ctx.store(a, 8, w); // BUG: persisted but never folded into the checksum
    ctx.region_end();
}

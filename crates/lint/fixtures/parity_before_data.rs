//! Fixture mirroring the lp-check sanitizer rig `parity_before_data`: a
//! LazyParity region publishes its parity line mid-region, while half the
//! protected stores it will end up summarizing are still to come. A crash
//! in that window leaves durable parity describing data that never
//! reached NVMM, so a later media repair reconstructs garbage.

fn region(ctx: &mut CoreCtx<'_>) {
    ctx.region_begin(KEY);
    for i in 0..4 {
        ctx.store(arr, i, v);
        self.ck.update(v.to_bits());
    }
    self.parity.store_lanes(ctx, KEY, &lanes); // BUG: parity before data
    for i in 4..8 {
        ctx.store(arr, i, v);
        self.ck.update(v.to_bits());
    }
    self.table.store(ctx, KEY, self.ck.value());
    ctx.region_end();
}

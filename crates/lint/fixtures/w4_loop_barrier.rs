//! W4 fixture (barrier form): a replay loop that commits a non-publishing
//! eager sink every iteration — each round flushes and fences, but no
//! marker, table entry, or region commit becomes visible, so the commits
//! coalesce. Hoisting the sink out of the loop dedups the repeated lines
//! and pays one fence total (the `Tmm::rebuild_strip` /
//! `Gauss::recover_marker_based` shape before it was fixed).

impl ReplaySink {
    fn commit(&mut self, ctx: &mut CoreCtx<'_>) {
        committer.commit(ctx);
    }
}

fn replay_strips(ctx: &mut CoreCtx<'_>) {
    for kb in 0..n {
        let mut sink = ReplaySink::default();
        ctx.store(a, kb, v);
        sink.commit(ctx); // BUG: flushes+fences every round, publishes nothing
    }
}

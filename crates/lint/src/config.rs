//! Name-allowlist configuration: where type-level inference falls short,
//! the analyzer classifies call targets and function contexts by
//! identifier conventions that the repo's persistency API already follows
//! (`table`, `markers`, `entries`, `ck`, `tp`, `sink`, …).
//!
//! Per-site overrides are available as directive comments
//! (`// lp-lint: context(recovery)` before a `fn`,
//! `// lp-lint: allow(S4)` on a finding line) so the config never has to
//! grow special cases for one call site.

/// The execution context a function is analyzed under. Context decides
/// which rule a publish point is checked against (see `analysis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnContext {
    /// Forward execution (LP/EP regions).
    Forward,
    /// Post-crash recovery / repair code — progress publishes must trail
    /// the repairs they vouch for (rule S4).
    Recovery,
    /// Write-ahead-logging code — undo entries must be durably ordered
    /// before in-place overwrites (rule S3).
    Wal,
    /// Skip this function entirely.
    Ignore,
}

impl FnContext {
    /// Parse a `lp-lint: context(...)` directive argument.
    pub fn parse(s: &str) -> Option<FnContext> {
        match s {
            "forward" => Some(FnContext::Forward),
            "recovery" => Some(FnContext::Recovery),
            "wal" => Some(FnContext::Wal),
            "ignore" => Some(FnContext::Ignore),
            _ => None,
        }
    }
}

/// Identifier conventions the classifier keys on.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Store targets holding durable progress markers.
    pub marker_targets: Vec<String>,
    /// Store receivers/targets that are checksum tables.
    pub table_targets: Vec<String>,
    /// Store targets that are WAL undo-log entry arrays.
    pub log_targets: Vec<String>,
    /// Store targets that are WAL arena headers (status/count/marker).
    pub log_header_targets: Vec<String>,
    /// Store targets/receivers that are per-region parity arenas.
    pub parity_targets: Vec<String>,
    /// Receivers whose `update` call folds a running checksum.
    pub fold_receivers: Vec<String>,
    /// Receivers whose `begin`/`commit` bracket a persistency region.
    pub region_receivers: Vec<String>,
    /// Receivers whose `store` routes through a scheme/recovery sink
    /// (flush bookkeeping owned by the sink, not the caller).
    pub sink_receivers: Vec<String>,
    /// Substrings of a function name implying recovery context.
    pub recovery_fn_markers: Vec<String>,
    /// Substrings of a file stem implying WAL context.
    pub wal_file_markers: Vec<String>,
    /// Trailing accessor calls stripped when resolving a store/flush
    /// target from an argument expression (`arr.addr(i)` → `arr`).
    pub accessor_suffixes: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect();
        LintConfig {
            marker_targets: v(&["markers", "marker"]),
            table_targets: v(&["table"]),
            log_targets: v(&["entries", "log"]),
            log_header_targets: v(&["header"]),
            parity_targets: v(&["parity"]),
            fold_receivers: v(&["ck", "checksum"]),
            region_receivers: v(&["tp"]),
            sink_receivers: v(&["sink"]),
            recovery_fn_markers: v(&[
                "recover", "rebuild", "restore", "repair", "replay", "scrub", "zero_", "arm_",
            ]),
            wal_file_markers: v(&["wal"]),
            accessor_suffixes: v(&["addr", "array", "entries_array", "header_array", "base"]),
        }
    }
}

impl LintConfig {
    fn last_seg(target: &str) -> &str {
        target.rsplit('.').next().unwrap_or(target)
    }

    /// Whether `target` (a dotted path like `self.handles.table`) names a
    /// checksum table.
    pub fn is_table(&self, target: &str) -> bool {
        self.table_targets
            .iter()
            .any(|t| t == Self::last_seg(target))
    }

    /// Whether `target` names a durable progress marker array.
    pub fn is_marker(&self, target: &str) -> bool {
        self.marker_targets
            .iter()
            .any(|t| t == Self::last_seg(target))
    }

    /// Whether `target` names a WAL undo-log entry array. Requires WAL
    /// evidence (an `arena` segment in the path, or a WAL-flavored file)
    /// so an unrelated `entries` field elsewhere stays a plain data store.
    pub fn is_log(&self, target: &str, file_is_wal: bool) -> bool {
        self.log_targets.iter().any(|t| t == Self::last_seg(target))
            && (file_is_wal || target.contains("arena"))
    }

    /// Whether `target` names a WAL arena header line.
    pub fn is_log_header(&self, target: &str, file_is_wal: bool) -> bool {
        self.log_header_targets
            .iter()
            .any(|t| t == Self::last_seg(target))
            && (file_is_wal || target.contains("arena"))
    }

    /// Whether `target` names a per-region parity arena.
    pub fn is_parity(&self, target: &str) -> bool {
        self.parity_targets
            .iter()
            .any(|t| t == Self::last_seg(target))
    }

    /// Whether `receiver` is a running-checksum fold target.
    pub fn is_fold_receiver(&self, receiver: &str) -> bool {
        self.fold_receivers
            .iter()
            .any(|t| t == Self::last_seg(receiver))
    }

    /// Whether `receiver` is a per-thread persistency runtime (`tp`).
    pub fn is_region_receiver(&self, receiver: &str) -> bool {
        self.region_receivers
            .iter()
            .any(|t| t == Self::last_seg(receiver))
    }

    /// Whether `receiver` is a store sink.
    pub fn is_sink_receiver(&self, receiver: &str) -> bool {
        self.sink_receivers
            .iter()
            .any(|t| t == Self::last_seg(receiver))
    }

    /// Infer a function's context from its name (file flavor is handled
    /// by the caller; directives override both).
    pub fn fn_context(&self, fn_name: &str) -> Option<FnContext> {
        let lower = fn_name.to_ascii_lowercase();
        if self.recovery_fn_markers.iter().any(|m| lower.contains(m)) {
            return Some(FnContext::Recovery);
        }
        None
    }

    /// Whether a file stem (`wal`, `wal_data_before_log`, …) marks WAL
    /// code.
    pub fn is_wal_file(&self, file_stem: &str) -> bool {
        let lower = file_stem.to_ascii_lowercase();
        self.wal_file_markers.iter().any(|m| lower.contains(m))
    }

    /// Whether the final path segment is an accessor to strip when
    /// resolving a target (`arr.addr` → `arr`).
    pub fn strip_accessors<'a>(&self, mut target: &'a str) -> &'a str {
        while let Some((head, tail)) = target.rsplit_once('.') {
            if self.accessor_suffixes.iter().any(|a| a == tail) {
                target = head;
            } else {
                break;
            }
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_uses_last_segment() {
        let c = LintConfig::default();
        assert!(c.is_table("self.handles.table"));
        assert!(c.is_table("table"));
        assert!(!c.is_table("self.handles"));
        assert!(c.is_marker("markers"));
        assert!(c.is_fold_receiver("self.ck"));
        assert!(c.is_region_receiver("tp"));
    }

    #[test]
    fn log_needs_wal_evidence() {
        let c = LintConfig::default();
        assert!(c.is_log("self.arena.entries", false));
        assert!(c.is_log("entries", true));
        assert!(
            !c.is_log("self.entries", false),
            "table.rs field stays data"
        );
        assert!(c.is_log_header("arena.header", false));
    }

    #[test]
    fn context_inference_and_accessors() {
        let c = LintConfig::default();
        assert_eq!(c.fn_context("recover_lazy"), Some(FnContext::Recovery));
        assert_eq!(c.fn_context("rebuild_strip"), Some(FnContext::Recovery));
        assert_eq!(c.fn_context("region_body"), None);
        assert!(c.is_wal_file("wal_data_before_log"));
        assert!(!c.is_wal_file("table"));
        assert_eq!(c.strip_accessors("self.c.array"), "self.c");
        assert_eq!(c.strip_accessors("arr.addr"), "arr");
        assert_eq!(c.strip_accessors("arr"), "arr");
    }

    #[test]
    fn fn_context_parse() {
        assert_eq!(FnContext::parse("recovery"), Some(FnContext::Recovery));
        assert_eq!(FnContext::parse("wal"), Some(FnContext::Wal));
        assert_eq!(FnContext::parse("nope"), None);
    }
}

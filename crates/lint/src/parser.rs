//! Block-structure parser: token stream → per-function control-flow trees.
//!
//! This is deliberately *not* a full Rust parser. It recovers exactly the
//! structure the persist-order analysis needs: function boundaries (with
//! impl-qualified names), `if`/`match` branching, loop bodies, early exits
//! (`return`/`break`/`continue`/`panic!`), and call sites with receiver
//! chains and first-argument target paths. Everything else — types,
//! generics, expressions — is skipped as token soup. Closures and inline
//! blocks are treated as executed in place (a documented approximation;
//! see DESIGN.md §5e).

use crate::config::{FnContext, LintConfig};
use crate::lexer::{lex, scan_directives, Directive, Tok};

/// A call site as it appears in source, before classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCall {
    /// Method/function name (`store`, `sfence`, `flush_rows`, …).
    pub name: String,
    /// Dotted receiver chain (`self.ck`, `tp`, `ctx`), empty for free calls.
    pub receiver: String,
    /// Dotted path of the first argument (`self.l.array`), empty if the
    /// first argument is not a simple path.
    pub arg0: String,
    /// Dotted path of the second argument, empty if absent or complex.
    /// Needed for free helpers like `persist_store(ctx, arr, i, v)` where
    /// the target array is the second argument.
    pub arg1: String,
    /// Full token text of the argument list (`arr . addr ( i )`), used as
    /// an expression identity for the must-flushed lattice: two flushes
    /// are "the same line(s)" only when this text matches exactly.
    pub args_full: String,
    /// 1-based source line of the call name.
    pub line: u32,
}

/// One arm of a multi-way branch.
#[derive(Debug, Clone)]
pub struct Arm {
    /// For `match` arms: identifiers appearing in the pattern before any
    /// guard (`Scheme Eager`, `Some x`). Empty for `if`/`else` arms and
    /// implicit fallthroughs. Lets the cost model select the arm a given
    /// scheme executes.
    pub pat: Vec<String>,
    /// The arm body.
    pub body: Vec<Node>,
}

/// One node of a function body's control-flow tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A call site.
    Call(RawCall),
    /// A multi-way branch (`if`/`else if`/`else`, `match`). An `if`
    /// without `else` carries an empty fallthrough arm.
    Branch(Vec<Arm>),
    /// A loop body, executed zero or more times.
    Loop {
        /// For `for` loops: dotted path of the iterable (`self.pending`),
        /// empty for ranges, `while`, and `loop`. Lets the cost model
        /// attribute per-element loop bodies to the collection iterated.
        hint: String,
        /// The loop body.
        body: Vec<Node>,
    },
    /// Control leaves the enclosing path (`return`, `break`, `continue`,
    /// `panic!`-family macro).
    Diverge,
}

/// A parsed function with its analysis context.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Impl-qualified name (`WalTx::commit`) or bare name.
    pub name: String,
    /// 1-based line of the function name.
    pub line: u32,
    /// Context the analysis runs this function under.
    pub context: FnContext,
    /// Body as a control-flow tree.
    pub body: Vec<Node>,
    /// `let`-bindings to constructor calls / struct literals seen in the
    /// body: `(variable, TypeName)`. Resolves receivers like `sink.commit`
    /// to a concrete impl for interprocedural summary lookup.
    pub bindings: Vec<(String, String)>,
}

/// A parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// All non-test functions with bodies.
    pub fns: Vec<FnItem>,
    /// `lp-lint:` directives found in comments, keyed by line.
    pub directives: Vec<(u32, Directive)>,
    /// Whether the file stem marks this as WAL code.
    pub is_wal: bool,
}

/// Parse one source file into function trees, resolving each function's
/// context from (in priority order) `lp-lint: context(...)` directives,
/// name conventions, then file flavor.
pub fn parse_file(src: &str, file_stem: &str, cfg: &LintConfig) -> ParsedFile {
    let directives = scan_directives(src);
    let toks = lex(src);
    let is_wal = cfg.is_wal_file(file_stem);
    let mut p = P {
        t: &toks,
        i: 0,
        bindings: Vec::new(),
    };
    let mut fns = Vec::new();
    scan_items(&mut p, None, false, false, &mut fns);
    let bound = bind_context_directives(&directives, &fns);
    for (f, b) in fns.iter_mut().zip(bound) {
        let bare = f.name.rsplit("::").next().unwrap_or(&f.name).to_string();
        f.context = b.or_else(|| cfg.fn_context(&bare)).unwrap_or(if is_wal {
            FnContext::Wal
        } else {
            FnContext::Forward
        });
    }
    ParsedFile {
        fns,
        directives,
        is_wal,
    }
}

/// A `context(...)` directive binds to exactly the next `fn` that starts
/// within five lines of it (room for attributes and a doc line).
fn bind_context_directives(
    directives: &[(u32, Directive)],
    fns: &[FnItem],
) -> Vec<Option<FnContext>> {
    let mut bound = vec![None; fns.len()];
    for (line, d) in directives {
        let Directive::Context(c) = d else { continue };
        let Some(ctx) = FnContext::parse(c) else {
            continue;
        };
        if let Some(idx) = fns
            .iter()
            .position(|f| f.line >= *line && f.line <= line + 5)
        {
            bound[idx] = Some(ctx);
        }
    }
    bound
}

struct P<'a> {
    t: &'a [Tok],
    i: usize,
    /// `let` bindings collected while parsing the current fn body.
    bindings: Vec<(String, String)>,
}

impl P<'_> {
    fn at_end(&self) -> bool {
        self.i >= self.t.len()
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn at_ident(&self, s: &str) -> bool {
        self.t
            .get(self.i)
            .is_some_and(|t| t.is_ident && t.text == s)
    }

    fn at_punct(&self, c: char) -> bool {
        self.t.get(self.i).is_some_and(|t| t.is_punct(c))
    }

    fn punct_at(&self, idx: usize, c: char) -> bool {
        self.t.get(idx).is_some_and(|t| t.is_punct(c))
    }

    /// Skip a balanced `{ ... }` block without parsing it.
    fn skip_block(&mut self) {
        let mut depth = 0usize;
        while !self.at_end() {
            if self.at_punct('{') {
                depth += 1;
            } else if self.at_punct('}') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip `#[...]` / `#![...]`, returning the idents inside.
    fn skip_attr(&mut self) -> Vec<String> {
        self.bump(); // '#'
        if self.at_punct('!') {
            self.bump();
        }
        let mut idents = Vec::new();
        if !self.at_punct('[') {
            return idents;
        }
        let mut depth = 0usize;
        while !self.at_end() {
            if self.at_punct('[') {
                depth += 1;
            } else if self.at_punct(']') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return idents;
                }
            } else if let Some(t) = self.t.get(self.i) {
                if t.is_ident {
                    idents.push(t.text.clone());
                }
            }
            self.bump();
        }
        idents
    }

    /// Skip a balanced `<...>` run starting at `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while !self.at_end() {
            if self.at_punct('<') {
                depth += 1;
            } else if self.at_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Parse `{ ... }` into nodes. Expects the cursor at `{`.
    fn parse_block(&mut self) -> Vec<Node> {
        self.bump(); // '{'
        let mut nodes = Vec::new();
        let mut paren = 0i32;
        while !self.at_end() {
            if self.at_punct('}') {
                self.bump();
                break;
            }
            self.step(&mut nodes, &mut paren);
        }
        nodes
    }

    /// Parse a flat match-arm body: until `,` at depth 0 (consumed) or the
    /// match's closing `}` (left in place).
    fn parse_flat(&mut self) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut paren = 0i32;
        while !self.at_end() {
            if paren == 0 && self.at_punct(',') {
                self.bump();
                break;
            }
            if paren == 0 && self.at_punct('}') {
                break;
            }
            self.step(&mut nodes, &mut paren);
        }
        nodes
    }

    /// Consume one construct at the cursor, appending nodes.
    fn step(&mut self, nodes: &mut Vec<Node>, paren: &mut i32) {
        let Some(tok) = self.t.get(self.i) else {
            return;
        };
        if tok.is_ident {
            match tok.text.as_str() {
                "if" if *paren == 0 => {
                    self.parse_if(nodes);
                    return;
                }
                "match" if *paren == 0 => {
                    self.parse_match(nodes);
                    return;
                }
                "for" | "while" if *paren == 0 => {
                    let is_for = tok.text == "for";
                    self.bump();
                    let hint = if is_for {
                        self.loop_hint()
                    } else {
                        String::new()
                    };
                    self.scan_header(nodes);
                    let body = self.parse_block();
                    nodes.push(Node::Loop { hint, body });
                    return;
                }
                "loop" if *paren == 0 => {
                    self.bump();
                    while !self.at_end() && !self.at_punct('{') {
                        self.bump();
                    }
                    let body = self.parse_block();
                    nodes.push(Node::Loop {
                        hint: String::new(),
                        body,
                    });
                    return;
                }
                "let" if *paren == 0 => {
                    self.record_binding();
                    self.bump();
                    return;
                }
                "return" | "break" | "continue" if *paren == 0 => {
                    self.bump();
                    nodes.push(Node::Diverge);
                    return;
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if self.punct_at(self.i + 1, '!') =>
                {
                    self.bump();
                    self.bump();
                    nodes.push(Node::Diverge);
                    return;
                }
                // A bare `else` here is a let-else tail (its block only
                // runs when the binding fails, and must diverge) or an
                // if-expression inside parentheses. Inline the block's
                // calls but drop its Diverge markers so a let-else does
                // not truncate the happy path.
                "else" if *paren == 0 => {
                    self.bump();
                    if self.at_punct('{') {
                        let inner = self.parse_block();
                        nodes.extend(inner.into_iter().filter(|n| !matches!(n, Node::Diverge)));
                    }
                    return;
                }
                _ => {}
            }
            if let Some(call) = self.try_call() {
                nodes.push(Node::Call(call));
                return;
            }
            self.bump();
            return;
        }
        match tok.text.as_bytes()[0] as char {
            '{' => {
                let inner = self.parse_block();
                nodes.extend(inner);
            }
            '(' | '[' => {
                *paren += 1;
                self.bump();
            }
            ')' | ']' => {
                *paren = (*paren - 1).max(0);
                self.bump();
            }
            '#' => {
                self.skip_attr();
            }
            _ => self.bump(),
        }
    }

    /// Peek ahead in a `for` header for `in <path>` at depth 0 and return
    /// the iterable's dotted path (`self.pending`), or empty for ranges
    /// and complex iterator expressions. Does not consume.
    fn loop_hint(&self) -> String {
        let mut a = self.i;
        let mut depth = 0i32;
        while let Some(t) = self.t.get(a) {
            if depth == 0 && t.is_punct('{') {
                return String::new();
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = (depth - 1).max(0);
            } else if depth == 0 && t.is_ident && t.text == "in" {
                return self.arg_path(a + 1).0;
            }
            a += 1;
        }
        String::new()
    }

    /// At a `let` keyword, peek for `let [mut] var = TypeName …` and record
    /// `(var, TypeName)` when the initializer starts with an
    /// uppercase-leading path (constructor call or struct literal). Does
    /// not consume.
    fn record_binding(&mut self) {
        let mut a = self.i + 1;
        if self.t.get(a).is_some_and(|t| t.is_ident && t.text == "mut") {
            a += 1;
        }
        let Some(var) = self.t.get(a).filter(|t| t.is_ident) else {
            return;
        };
        if !var
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            return; // pattern binding (`let Some(x) = …`), not a variable
        }
        let var = var.text.clone();
        // Find `=` at depth 0 (skipping an optional `: Type` ascription).
        let mut depth = 0i32;
        let mut b = a + 1;
        loop {
            let Some(t) = self.t.get(b) else { return };
            if depth == 0 && t.is_punct('=') && !self.punct_at(b + 1, '=') {
                break;
            }
            if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
                return;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth = (depth - 1).max(0);
            }
            b += 1;
        }
        let Some(ty) = self.t.get(b + 1).filter(|t| t.is_ident) else {
            return;
        };
        if ty.text.chars().next().is_some_and(char::is_uppercase) {
            self.bindings.push((var, ty.text.clone()));
        }
    }

    /// Scan a condition / scrutinee / loop header up to its `{` at paren
    /// depth 0, emitting any calls found along the way.
    fn scan_header(&mut self, nodes: &mut Vec<Node>) {
        let mut depth = 0i32;
        while !self.at_end() {
            if depth == 0 && self.at_punct('{') {
                return;
            }
            let tok = &self.t[self.i];
            if tok.is_ident {
                if let Some(call) = self.try_call() {
                    nodes.push(Node::Call(call));
                } else {
                    self.bump();
                }
            } else if tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
                self.bump();
            } else if tok.is_punct(')') || tok.is_punct(']') {
                depth = (depth - 1).max(0);
                self.bump();
            } else if tok.is_punct('{') {
                // Closure body inside the header: treat as executed.
                let inner = self.parse_block();
                nodes.extend(inner);
            } else {
                self.bump();
            }
        }
    }

    /// `if c1 { } else if c2 { } else { }` → one Branch with all arms;
    /// condition calls are emitted before the Branch node.
    fn parse_if(&mut self, nodes: &mut Vec<Node>) {
        let mut arms: Vec<Arm> = Vec::new();
        let arm = |body| Arm {
            pat: Vec::new(),
            body,
        };
        loop {
            self.bump(); // 'if'
            self.scan_header(nodes);
            arms.push(arm(self.parse_block()));
            if self.at_ident("else") {
                self.bump();
                if self.at_ident("if") {
                    continue;
                }
                if self.at_punct('{') {
                    arms.push(arm(self.parse_block()));
                } else {
                    arms.push(arm(Vec::new()));
                }
            } else {
                arms.push(arm(Vec::new())); // implicit fallthrough
            }
            nodes.push(Node::Branch(arms));
            return;
        }
    }

    /// `match scrutinee { pat => body, ... }` → one Branch node. Guard
    /// calls are emitted before the Branch (they run pre-selection).
    fn parse_match(&mut self, nodes: &mut Vec<Node>) {
        self.bump(); // 'match'
        self.scan_header(nodes);
        if !self.at_punct('{') {
            return;
        }
        self.bump(); // '{'
        let mut arms: Vec<Arm> = Vec::new();
        while !self.at_end() {
            if self.at_punct('}') {
                self.bump();
                break;
            }
            // Pattern (and optional guard) up to `=>` at depth 0. Idents
            // before a depth-0 `if` are the pattern; after it, the guard
            // (whose calls run pre-selection and are emitted here).
            let mut pat: Vec<String> = Vec::new();
            let mut in_guard = false;
            let mut depth = 0i32;
            while !self.at_end() {
                if depth == 0 && self.at_punct('=') && self.punct_at(self.i + 1, '>') {
                    self.bump();
                    self.bump();
                    break;
                }
                let tok = &self.t[self.i];
                if tok.is_ident {
                    if depth == 0 && tok.text == "if" {
                        in_guard = true;
                        self.bump();
                    } else if in_guard {
                        if let Some(call) = self.try_call() {
                            nodes.push(Node::Call(call));
                        } else {
                            self.bump();
                        }
                    } else {
                        pat.push(tok.text.clone());
                        self.bump();
                    }
                } else {
                    match tok.text.as_bytes()[0] as char {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth = (depth - 1).max(0),
                        _ => {}
                    }
                    self.bump();
                }
            }
            if self.at_punct('{') {
                let body = self.parse_block();
                if self.at_punct(',') {
                    self.bump();
                }
                arms.push(Arm { pat, body });
            } else {
                arms.push(Arm {
                    pat,
                    body: self.parse_flat(),
                });
            }
        }
        nodes.push(Node::Branch(arms));
    }

    /// If the cursor sits on `name(` (or `name::<T>(`), build a RawCall.
    /// Only the name token is consumed, so calls nested in the argument
    /// list are still discovered by the main loop.
    fn try_call(&mut self) -> Option<RawCall> {
        let name_idx = self.i;
        let name_tok = &self.t[name_idx];
        let mut j = name_idx + 1;
        if self.punct_at(j, ':') && self.punct_at(j + 1, ':') && self.punct_at(j + 2, '<') {
            let save = self.i;
            self.i = j + 2;
            self.skip_angles();
            j = self.i;
            self.i = save;
        }
        if !self.punct_at(j, '(') {
            return None;
        }
        // Receiver: walk back over `ident . ident . name`.
        let mut segs: Vec<&str> = Vec::new();
        let mut k = name_idx;
        while k >= 2 && self.t[k - 1].is_punct('.') && self.t[k - 2].is_ident {
            segs.push(&self.t[k - 2].text);
            k -= 2;
        }
        segs.reverse();
        let receiver = segs.join(".");
        // First two arguments, when they are simple paths
        // (`& mut self.l.array` → `self.l.array`).
        let (arg0, after0) = self.arg_path(j + 1);
        let arg1 = if self.punct_at(after0, ',') {
            self.arg_path(after0 + 1).0
        } else {
            String::new()
        };
        let args_full = self.args_full(j + 1);
        self.i = name_idx + 1;
        Some(RawCall {
            name: name_tok.text.clone(),
            receiver,
            arg0,
            arg1,
            args_full,
            line: name_tok.line,
        })
    }

    /// Full token text of the argument list starting at `a`, up to the
    /// call's closing `)` at depth 0. Tokens are space-joined and capped,
    /// giving a stable expression identity for the must-flushed lattice.
    fn args_full(&self, mut a: usize) -> String {
        let mut depth = 0i32;
        let mut parts: Vec<&str> = Vec::new();
        while let Some(t) = self.t.get(a) {
            if depth == 0 && t.is_punct(')') {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            parts.push(&t.text);
            if parts.len() >= 24 {
                parts.push("…");
                break;
            }
            a += 1;
        }
        parts.join(" ")
    }

    /// Read a dotted ident path at `a`, skipping `&`/`*`/`mut` prefixes.
    /// Returns the path (possibly empty) and the index just past it.
    fn arg_path(&self, mut a: usize) -> (String, usize) {
        while self.punct_at(a, '&') || self.punct_at(a, '*') || {
            self.t.get(a).is_some_and(|t| t.is_ident && t.text == "mut")
        } {
            a += 1;
        }
        let mut chain: Vec<&str> = Vec::new();
        while let Some(t) = self.t.get(a) {
            let starts_alpha = t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_');
            if !(t.is_ident && starts_alpha) {
                break;
            }
            chain.push(&t.text);
            a += 1;
            if self.punct_at(a, '.') && self.t.get(a + 1).is_some_and(|t| t.is_ident) {
                a += 1;
            } else {
                break;
            }
        }
        (chain.join("."), a)
    }
}

/// Item-level scanner: finds `fn` bodies, tracks `impl` types, and skips
/// `#[cfg(test)]` items.
fn scan_items(
    p: &mut P,
    impl_ty: Option<&str>,
    in_block: bool,
    skip_all: bool,
    out: &mut Vec<FnItem>,
) {
    let mut pending_skip = false;
    while !p.at_end() {
        if in_block && p.at_punct('}') {
            p.bump();
            return;
        }
        if p.at_punct('#') {
            let idents = p.skip_attr();
            if idents.iter().any(|s| s == "cfg") && idents.iter().any(|s| s == "test") {
                pending_skip = true;
            }
            continue;
        }
        if p.at_ident("mod") {
            p.bump();
            if p.t.get(p.i).is_some_and(|t| t.is_ident) {
                p.bump(); // mod name
            }
            if p.at_punct('{') {
                if pending_skip {
                    p.skip_block();
                } else {
                    p.bump();
                    scan_items(p, None, true, skip_all, out);
                }
            } else if p.at_punct(';') {
                p.bump();
            }
            pending_skip = false;
            continue;
        }
        if p.at_ident("impl") {
            p.bump();
            if p.at_punct('<') {
                p.skip_angles();
            }
            let name = scan_impl_type(p);
            if p.at_punct('{') {
                p.bump();
                scan_items(p, Some(&name), true, skip_all || pending_skip, out);
            }
            pending_skip = false;
            continue;
        }
        if p.at_ident("trait") {
            // Trait declarations: default method bodies are not analyzed.
            while !p.at_end() && !p.at_punct('{') && !p.at_punct(';') {
                p.bump();
            }
            if p.at_punct('{') {
                p.skip_block();
            } else {
                p.bump();
            }
            pending_skip = false;
            continue;
        }
        if p.at_ident("fn") {
            p.bump();
            let (name, line) = match p.t.get(p.i) {
                Some(t) if t.is_ident => (t.text.clone(), t.line),
                _ => {
                    continue;
                }
            };
            p.bump();
            // Signature: to `{` at paren depth 0, or `;` (no body).
            let mut paren = 0i32;
            let mut has_body = false;
            while !p.at_end() {
                if paren == 0 && p.at_punct('{') {
                    has_body = true;
                    break;
                }
                if paren == 0 && p.at_punct(';') {
                    p.bump();
                    break;
                }
                if p.at_punct('(') || p.at_punct('[') {
                    paren += 1;
                } else if p.at_punct(')') || p.at_punct(']') {
                    paren -= 1;
                }
                p.bump();
            }
            if has_body {
                if skip_all || pending_skip {
                    p.skip_block();
                } else {
                    p.bindings.clear();
                    let body = p.parse_block();
                    let bindings = std::mem::take(&mut p.bindings);
                    let qualified = match impl_ty {
                        Some(ty) => format!("{ty}::{name}"),
                        None => name,
                    };
                    out.push(FnItem {
                        name: qualified,
                        line,
                        context: FnContext::Forward,
                        body,
                        bindings,
                    });
                }
            }
            pending_skip = false;
            continue;
        }
        if p.at_punct('{') {
            // Struct/enum/const bodies and other item-level blocks.
            p.skip_block();
            pending_skip = false;
            continue;
        }
        p.bump();
    }
}

/// After `impl [<...>]`, read the implemented type's name: the last ident
/// at angle depth 0 before `{`/`for`/`where`; with `for`, the trait name
/// is discarded and the self type is read instead.
fn scan_impl_type(p: &mut P) -> String {
    let mut name = String::new();
    let mut depth = 0i32;
    while !p.at_end() {
        if depth == 0 && (p.at_punct('{') || p.at_ident("where")) {
            break;
        }
        if depth == 0 && p.at_ident("for") {
            p.bump();
            name.clear();
            continue;
        }
        let tok = &p.t[p.i];
        if tok.is_punct('<') {
            depth += 1;
        } else if tok.is_punct('>') {
            depth = (depth - 1).max(0);
        } else if depth == 0 && tok.is_ident && tok.text != "dyn" && tok.text != "mut" {
            name = tok.text.clone();
        }
        p.bump();
    }
    if p.at_ident("where") {
        while !p.at_end() && !p.at_punct('{') {
            p.bump();
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src, "test", &LintConfig::default())
    }

    fn call_names(nodes: &[Node]) -> Vec<String> {
        let mut out = Vec::new();
        for n in nodes {
            match n {
                Node::Call(c) => out.push(c.name.clone()),
                Node::Branch(arms) => {
                    for a in arms {
                        out.extend(call_names(&a.body));
                    }
                }
                Node::Loop { body, .. } => out.extend(call_names(body)),
                Node::Diverge => {}
            }
        }
        out
    }

    #[test]
    fn extracts_calls_with_receiver_and_arg() {
        let f = parse("fn f(ctx: &C) { ctx.store(self.buf, 0, v); self.ck.update(v); }");
        assert_eq!(f.fns.len(), 1);
        let Node::Call(c) = &f.fns[0].body[0] else {
            panic!("want call")
        };
        assert_eq!(c.name, "store");
        assert_eq!(c.receiver, "ctx");
        assert_eq!(c.arg0, "self.buf");
        let Node::Call(c2) = &f.fns[0].body[1] else {
            panic!("want call")
        };
        assert_eq!(c2.receiver, "self.ck");
    }

    #[test]
    fn if_else_becomes_branch_with_arms() {
        let f = parse("fn f() { if c { a(); } else if d { b(); } else { e(); } }");
        let Node::Branch(arms) = &f.fns[0].body[0] else {
            panic!("want branch, got {:?}", f.fns[0].body)
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(call_names(&arms[0].body), ["a"]);
        assert_eq!(call_names(&arms[1].body), ["b"]);
        assert_eq!(call_names(&arms[2].body), ["e"]);
    }

    #[test]
    fn if_without_else_gets_fallthrough_arm() {
        let f = parse("fn f() { if c { a(); } b(); }");
        let Node::Branch(arms) = &f.fns[0].body[0] else {
            panic!("want branch")
        };
        assert_eq!(arms.len(), 2);
        assert!(arms[1].body.is_empty());
    }

    #[test]
    fn match_with_flat_and_block_arms() {
        let f =
            parse("fn f() { let k = match s { A => a(), B => { b(); } _ => return, }; tail(); }");
        let Node::Branch(arms) = &f.fns[0].body[0] else {
            panic!("want branch, got {:?}", f.fns[0].body)
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(call_names(&arms[0].body), ["a"]);
        assert_eq!(call_names(&arms[1].body), ["b"]);
        assert_eq!(arms[0].pat, ["A"]);
        assert_eq!(arms[1].pat, ["B"]);
        assert_eq!(arms[2].pat, ["_"]);
        assert!(matches!(arms[2].body[0], Node::Diverge));
        let Node::Call(t) = &f.fns[0].body[1] else {
            panic!("want tail call")
        };
        assert_eq!(t.name, "tail");
    }

    #[test]
    fn loops_and_diverge() {
        let f = parse("fn f() { for i in 0..n { g(i); if z { continue; } } return; }");
        let Node::Loop { body, .. } = &f.fns[0].body[0] else {
            panic!("want loop")
        };
        assert_eq!(call_names(body), ["g"]);
        assert!(matches!(f.fns[0].body[1], Node::Diverge));
    }

    #[test]
    fn impl_qualifies_names_and_cfg_test_is_skipped() {
        let f = parse(
            "impl Wal { fn commit(&self) { x(); } }\n\
             #[cfg(test)] mod tests { fn t() { bad(); } }\n\
             #[cfg(test)] fn t2() { bad2(); }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "Wal::commit");
    }

    #[test]
    fn impl_trait_for_type_uses_self_type() {
        let f = parse("impl Kernel for Tmm { fn run(&self) { x(); } }");
        assert_eq!(f.fns[0].name, "Tmm::run");
    }

    #[test]
    fn closure_bodies_inline_and_turbofish_calls() {
        let f = parse("fn f() { run(|sink| { sink.store(a, 0, v); }); g::<u64>(x); }");
        let names = call_names(&f.fns[0].body);
        assert!(names.contains(&"store".to_string()), "{names:?}");
        assert!(names.contains(&"g".to_string()), "{names:?}");
    }

    #[test]
    fn let_else_does_not_truncate_path() {
        let f = parse("fn f() { let Some(x) = y else { return; }; tail(); }");
        let names = call_names(&f.fns[0].body);
        assert!(names.contains(&"tail".to_string()), "{names:?}");
        assert!(!f.fns[0].body.iter().any(|n| matches!(n, Node::Diverge)));
    }

    #[test]
    fn context_from_name_and_directive() {
        let src = "fn recover_lazy() { x(); }\n\
                   // lp-lint: context(wal)\n\
                   fn plain() { y(); }\n\
                   fn other() { z(); }";
        let f = parse(src);
        assert_eq!(f.fns[0].context, FnContext::Recovery);
        assert_eq!(f.fns[1].context, FnContext::Wal);
        assert_eq!(f.fns[2].context, FnContext::Forward);
    }

    #[test]
    fn wal_file_context_default() {
        let f = parse_file("fn commit() { x(); }", "wal", &LintConfig::default());
        assert_eq!(f.fns[0].context, FnContext::Wal);
    }

    #[test]
    fn calls_in_conditions_emitted_before_branch() {
        let f = parse("fn f() { if t.load(i) != 0 { a(); } }");
        let Node::Call(c) = &f.fns[0].body[0] else {
            panic!("want load call first, got {:?}", f.fns[0].body)
        };
        assert_eq!(c.name, "load");
        assert!(matches!(f.fns[0].body[1], Node::Branch(_)));
    }
}

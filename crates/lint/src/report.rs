//! Structured lint findings, mirroring lp-check's `ViolationReport`:
//! a typed rule enum, per-finding file:line spans, and both pretty-text
//! and JSON renderings (hand-rolled — the workspace has no serde).

use std::fmt;

/// The static persist-order rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SRule {
    /// S1: every persistent store on a path to a publish/commit point is
    /// covered by a flush and an sfence before that point.
    S1StoreNotCovered,
    /// S2: no checksum/table publish precedes the fold/fence covering
    /// its data.
    S2PublishBeforeCover,
    /// S3: WAL undo entries are appended and fenced before the first
    /// in-place overwrite of logged data.
    S3OverwriteBeforeLogFence,
    /// S4: recovery progress markers are stored only after the repairs
    /// they vouch for are flushed and fenced (static twin of dynamic R7).
    S4MarkerBeforeRepairFence,
    /// S5: every region begin has a matching commit/abort on all paths,
    /// and no persistent store happens outside a region in region code.
    S5UnbalancedRegion,
    /// S6: every persisted data line on an LP path is folded into some
    /// checksum before the region commits (coverage twin of dynamic R2).
    S6UncoveredData,
    /// S7: the parity line is published only after every protected store
    /// of its region — forward regions must not store data after the
    /// parity publish, and recovery must not re-publish parity while a
    /// repaired line is still unfenced (static twin of dynamic R8).
    S7ParityBeforeData,
    /// W1: the same line(s) are flushed twice with no intervening store
    /// on any path — the second flush is wasted write traffic.
    W1RedundantFlush,
    /// W2: a fence no store or flush can reach on any path — it orders
    /// nothing.
    W2RedundantFence,
    /// W3: an element flush of a line already covered by a live range
    /// flush of the same array.
    W3ShadowedFlush,
    /// W4: missed coalescing — adjacent per-element flushes in a loop
    /// body (or a per-iteration commit barrier that publishes nothing)
    /// that a single hoisted range flush/fence would cover.
    W4MissedCoalescing,
}

impl SRule {
    /// Short rule identifier (`"S1"`).
    pub fn id(self) -> &'static str {
        match self {
            SRule::S1StoreNotCovered => "S1",
            SRule::S2PublishBeforeCover => "S2",
            SRule::S3OverwriteBeforeLogFence => "S3",
            SRule::S4MarkerBeforeRepairFence => "S4",
            SRule::S5UnbalancedRegion => "S5",
            SRule::S6UncoveredData => "S6",
            SRule::S7ParityBeforeData => "S7",
            SRule::W1RedundantFlush => "W1",
            SRule::W2RedundantFence => "W2",
            SRule::W3ShadowedFlush => "W3",
            SRule::W4MissedCoalescing => "W4",
        }
    }

    /// One-line rule description.
    pub fn title(self) -> &'static str {
        match self {
            SRule::S1StoreNotCovered => "store reaches publish without covering flush+sfence",
            SRule::S2PublishBeforeCover => "checksum/table publish precedes cover of its data",
            SRule::S3OverwriteBeforeLogFence => "logged data overwritten before undo log is fenced",
            SRule::S4MarkerBeforeRepairFence => "recovery marker stored before repair fence",
            SRule::S5UnbalancedRegion => "region begin/commit unbalanced or store outside region",
            SRule::S6UncoveredData => "persisted data not folded into any checksum before commit",
            SRule::S7ParityBeforeData => {
                "parity line published before the region data it summarizes"
            }
            SRule::W1RedundantFlush => "same line flushed twice with no intervening store",
            SRule::W2RedundantFence => "fence that no unflushed store can reach",
            SRule::W3ShadowedFlush => "element flush already covered by a range flush",
            SRule::W4MissedCoalescing => "per-element flushes a single range flush would cover",
        }
    }

    /// Parse `"S1"`..`"S6"`, `"W1"`..`"W4"`.
    pub fn from_id(id: &str) -> Option<SRule> {
        match id {
            "S1" => Some(SRule::S1StoreNotCovered),
            "S2" => Some(SRule::S2PublishBeforeCover),
            "S3" => Some(SRule::S3OverwriteBeforeLogFence),
            "S4" => Some(SRule::S4MarkerBeforeRepairFence),
            "S5" => Some(SRule::S5UnbalancedRegion),
            "S6" => Some(SRule::S6UncoveredData),
            "S7" => Some(SRule::S7ParityBeforeData),
            "W1" => Some(SRule::W1RedundantFlush),
            "W2" => Some(SRule::W2RedundantFence),
            "W3" => Some(SRule::W3ShadowedFlush),
            "W4" => Some(SRule::W4MissedCoalescing),
            _ => None,
        }
    }

    /// All rules, in id order.
    pub fn all() -> [SRule; 11] {
        [
            SRule::S1StoreNotCovered,
            SRule::S2PublishBeforeCover,
            SRule::S3OverwriteBeforeLogFence,
            SRule::S4MarkerBeforeRepairFence,
            SRule::S5UnbalancedRegion,
            SRule::S6UncoveredData,
            SRule::S7ParityBeforeData,
            SRule::W1RedundantFlush,
            SRule::W2RedundantFence,
            SRule::W3ShadowedFlush,
            SRule::W4MissedCoalescing,
        ]
    }

    /// The dynamic ground truth this rule is validated against.
    pub fn dynamic_twin(self) -> Twin {
        match self {
            SRule::S1StoreNotCovered => Twin::DynamicRule("R3"),
            SRule::S2PublishBeforeCover => Twin::DynamicRule("R2"),
            SRule::S3OverwriteBeforeLogFence => Twin::DynamicRule("R4"),
            SRule::S4MarkerBeforeRepairFence => Twin::DynamicRule("R7"),
            SRule::S5UnbalancedRegion => Twin::DynamicRule("R1"),
            SRule::S6UncoveredData => Twin::DynamicRule("R2"),
            SRule::S7ParityBeforeData => Twin::DynamicRule("R8"),
            SRule::W1RedundantFlush => Twin::Counter("flushes"),
            SRule::W2RedundantFence => Twin::Counter("fences"),
            SRule::W3ShadowedFlush => Twin::Counter("flushes"),
            SRule::W4MissedCoalescing => Twin::Counter("flushes"),
        }
    }
}

/// How a static rule is cross-validated against the dynamic stack:
/// safety rules (S*) have an `lp_check` rule twin that fires on a crash
/// enumeration; efficiency rules (W*) are validated by a measured drop in
/// a simulator `Stats` counter when the flagged redundancy is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Twin {
    /// An `lp_check::report::Rule` id (`"R1"`..`"R8"`).
    DynamicRule(&'static str),
    /// A `Stats` counter name (`"flushes"` / `"fences"`).
    Counter(&'static str),
}

impl fmt::Display for SRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id(), self.title())
    }
}

/// One static finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// The violated rule.
    pub rule: SRule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the violating call (the publish/overwrite point).
    pub line: u32,
    /// Qualified function name the finding sits in.
    pub function: String,
    /// Human-readable explanation, including related store lines.
    pub detail: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} in {}: {} ({})",
            self.rule.id(),
            self.file,
            self.line,
            self.function,
            self.rule.title(),
            self.detail
        )
    }
}

/// A full lint run over one or more files.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Files analyzed (repo-relative), in analysis order.
    pub files: Vec<String>,
    /// Number of functions analyzed.
    pub functions: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether the run produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule.
    pub fn of_rule(&self, rule: SRule) -> Vec<&LintFinding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Whether any finding matches `rule`.
    pub fn flags(&self, rule: SRule) -> bool {
        self.findings.iter().any(|f| f.rule == rule)
    }

    /// Per-rule finding counts, in id order.
    pub fn counts(&self) -> Vec<(SRule, usize)> {
        SRule::all()
            .into_iter()
            .map(|r| (r, self.of_rule(r).len()))
            .collect()
    }

    /// Merge another report into this one (re-sorting findings).
    pub fn merge(&mut self, other: LintReport) {
        self.files.extend(other.files);
        self.functions += other.functions;
        self.findings.extend(other.findings);
        self.sort();
    }

    /// Sort and dedup findings by (file, line, rule).
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.findings
            .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    }

    /// Render as a JSON object (hand-rolled, stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"files\": [{}],\n",
            self.files
                .iter()
                .map(|f| json_str(f))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"functions\": {},\n", self.functions));
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"title\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \"detail\": {}}}{}\n",
                json_str(f.rule.id()),
                json_str(f.rule.title()),
                json_str(&f.file),
                f.line,
                json_str(&f.function),
                json_str(&f.detail),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lp-lint: {} file(s), {} function(s), {} finding(s)",
            self.files.len(),
            self.functions,
            self.findings.len()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        if self.is_clean() {
            writeln!(f, "  clean: no persist-order violations found")?;
        } else {
            for (rule, n) in self.counts() {
                if n > 0 {
                    writeln!(f, "  {} x{}", rule, n)?;
                }
            }
        }
        Ok(())
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport {
            files: vec!["kernels/src/x.rs".into()],
            functions: 3,
            findings: vec![
                LintFinding {
                    rule: SRule::S2PublishBeforeCover,
                    file: "kernels/src/x.rs".into(),
                    line: 20,
                    function: "X::commit".into(),
                    detail: "table publish at line 20; unfolded store at line 12".into(),
                },
                LintFinding {
                    rule: SRule::S1StoreNotCovered,
                    file: "kernels/src/x.rs".into(),
                    line: 10,
                    function: "X::run".into(),
                    detail: "store at line 8 unflushed at publish".into(),
                },
            ],
        };
        r.sort();
        r
    }

    #[test]
    fn rule_ids_roundtrip() {
        for r in SRule::all() {
            assert_eq!(SRule::from_id(r.id()), Some(r));
        }
        assert_eq!(SRule::from_id("S9"), None);
        assert_eq!(SRule::from_id("S7"), Some(SRule::S7ParityBeforeData));
        assert_eq!(SRule::from_id("W5"), None);
    }

    #[test]
    fn safety_rules_twin_dynamic_rules_and_efficiency_rules_twin_counters() {
        for r in SRule::all() {
            match r.dynamic_twin() {
                Twin::DynamicRule(id) => {
                    assert!(r.id().starts_with('S'), "{r:?}");
                    assert!(id.starts_with('R'), "{id}");
                }
                Twin::Counter(c) => {
                    assert!(r.id().starts_with('W'), "{r:?}");
                    assert!(c == "flushes" || c == "fences", "{c}");
                }
            }
        }
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let r = sample();
        assert_eq!(r.findings[0].line, 10);
        assert_eq!(r.findings[1].line, 20);
        assert!(!r.is_clean());
        assert!(r.flags(SRule::S1StoreNotCovered));
        assert!(!r.flags(SRule::S5UnbalancedRegion));
    }

    #[test]
    fn dedup_removes_same_site_same_rule() {
        let mut r = sample();
        let dup = r.findings[0].clone();
        r.findings.push(dup);
        r.sort();
        assert_eq!(r.findings.len(), 2);
    }

    #[test]
    fn json_has_stable_shape_and_escaping() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"rule\": \"S1\""));
        assert!(j.contains("\"line\": 10"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn pretty_lists_findings_and_counts() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("[S1] kernels/src/x.rs:10 in X::run"));
        assert!(s.contains("2 finding(s)"));
    }
}

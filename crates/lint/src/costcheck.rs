//! Dynamic cross-check of the static cost model (`lp-lint --cost-check`).
//!
//! Two validations, both against the simulator's real `flushes`/`fences`
//! counters:
//!
//! 1. **Kernel × scheme cost check.** Each kernel's region structure is
//!    measured once on a `Base`-scheme run at `Scale::Micro` with a
//!    [`RegionTally`] observer installed — region boundaries are announced
//!    identically under every scheme, so the `Base` run yields the
//!    structural counts `S` (in-region stores) and `C` (region commits)
//!    of the scheme runs too. The static [`CostModel`] coefficients are
//!    multiplied out to a predicted flush/fence interval per scheme, and
//!    the kernel is then actually run under each scheme with its own
//!    tally; the check fails if a measured in-region counter falls
//!    outside its predicted interval.
//!
//! 2. **W-rule dynamic twins.** Each write-efficiency rule (W1–W4) is
//!    demonstrated as a buggy/fixed pair of instruction sequences run on
//!    a real machine; the check fails unless fixing the redundancy
//!    strictly drops the rule's twin counter (flushes for W1/W3/W4,
//!    fences for W2).

use std::path::Path;

use lp_core::ep::EagerCommitter;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::mem::PArray;
use lp_sim::observe::{RegionCounts, RegionTally};

use crate::config::LintConfig;
use crate::cost::{Cost, CostModel};
use crate::report::{SRule, Twin};

/// The `Scheme` variant identifier used to key into the [`CostModel`].
fn variant_of(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Base => "Base",
        Scheme::Lazy(_) => "Lazy",
        // LazyParity shares Lazy's in-region flush/fence profile (both
        // zero): the parity lanes ride the same cache-resident path, so
        // the cost grid keys it to the same coefficients.
        Scheme::LazyParity(_) => "Lazy",
        Scheme::LazyEagerCk(_) => "LazyEagerCk",
        Scheme::Eager => "Eager",
        Scheme::Wal => "Wal",
    }
}

/// One kernel × scheme comparison.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Kernel display name (paper figure label).
    pub kernel: String,
    /// Scheme display name (paper figure label).
    pub scheme: String,
    /// In-region stores of the structural (`Base`) run.
    pub stores: u64,
    /// Region commits of the structural (`Base`) run.
    pub commits: u64,
    /// Statically predicted in-region flush/fence interval.
    pub predicted: Cost,
    /// Dynamically measured in-region counters.
    pub measured: RegionCounts,
    /// Whether the run completed (a crash voids the comparison).
    pub completed: bool,
}

impl CaseResult {
    /// Whether the measured counters fall inside the predicted intervals.
    pub fn ok(&self) -> bool {
        self.completed
            && self.predicted.flushes.contains(self.measured.flushes)
            && self.predicted.fences.contains(self.measured.fences)
    }
}

/// One W-rule buggy/fixed counter pair.
#[derive(Debug, Clone)]
pub struct RuleDelta {
    /// The write-efficiency rule demonstrated.
    pub rule: SRule,
    /// The dynamic counter the rule twins with (`flushes` or `fences`).
    pub counter: &'static str,
    /// Counter value with the redundancy present.
    pub buggy: u64,
    /// Counter value with the redundancy removed.
    pub fixed: u64,
}

impl RuleDelta {
    /// Whether fixing the redundancy strictly dropped the counter.
    pub fn improved(&self) -> bool {
        self.fixed < self.buggy
    }
}

/// Full `--cost-check` outcome.
#[derive(Debug)]
pub struct CostCheckReport {
    /// The extracted static model the predictions came from.
    pub model: CostModel,
    /// Kernel × scheme comparisons.
    pub cases: Vec<CaseResult>,
    /// W-rule buggy/fixed demonstrations.
    pub deltas: Vec<RuleDelta>,
}

impl CostCheckReport {
    /// Whether every case and every delta passed.
    pub fn pass(&self) -> bool {
        !self.cases.is_empty()
            && self.cases.iter().all(CaseResult::ok)
            && self.deltas.iter().all(RuleDelta::improved)
    }
}

impl std::fmt::Display for CostCheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "static cost model (crates/core/src):")?;
        write!(f, "{}", self.model)?;
        writeln!(f)?;
        writeln!(
            f,
            "kernel x scheme @ Micro (S = in-region stores, C = region commits):"
        )?;
        for c in &self.cases {
            writeln!(
                f,
                "  {:<9} {:<17} S={:<6} C={:<4} predicted {:<16} measured {}F {}S  {}",
                c.kernel,
                c.scheme,
                c.stores,
                c.commits,
                c.predicted.to_string(),
                c.measured.flushes,
                c.measured.fences,
                if c.ok() { "ok" } else { "MISMATCH" },
            )?;
        }
        writeln!(f)?;
        writeln!(f, "W-rule dynamic twins (counter drop when fixed):")?;
        for d in &self.deltas {
            writeln!(
                f,
                "  {} {:<8} buggy {:<6} fixed {:<6} {}",
                d.rule.id(),
                d.counter,
                d.buggy,
                d.fixed,
                if d.improved() { "ok" } else { "NO IMPROVEMENT" },
            )?;
        }
        writeln!(
            f,
            "cost-check: {}",
            if self.pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// The schemes the cost check exercises (every variant with a distinct
/// cost profile).
fn schemes() -> [Scheme; 5] {
    [
        Scheme::Base,
        Scheme::lazy_default(),
        Scheme::LazyEagerCk(lp_core::checksum::ChecksumKind::Modular),
        Scheme::Eager,
        Scheme::Wal,
    ]
}

fn machine_config() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(16 << 20)
}

/// Run one kernel under one scheme at `Scale::Micro` with a tally
/// installed; returns the tally and whether the run completed.
fn observed_run(kernel: KernelId, scheme: Scheme) -> (RegionTally, bool) {
    let mut pk = prepare_kernel(kernel, Scale::Micro, &machine_config(), scheme);
    let tally = RegionTally::shared();
    pk.machine.set_observer(tally.clone());
    let outcome = pk.machine.run(pk.plans);
    let snapshot = tally.lock().unwrap().clone();
    (snapshot, outcome == Outcome::Completed)
}

/// Run the kernel × scheme cost check for `kernels` against `model`.
pub fn check_kernels(kernels: &[KernelId], model: &CostModel) -> Vec<CaseResult> {
    let mut cases = Vec::new();
    for &kernel in kernels {
        let (base, base_done) = observed_run(kernel, Scheme::Base);
        let stores = base.in_region().stores;
        let commits = base.commits;
        for scheme in schemes() {
            let (tally, completed) = if matches!(scheme, Scheme::Base) {
                (base.clone(), base_done)
            } else {
                observed_run(kernel, scheme)
            };
            let predicted = model
                .get(variant_of(scheme))
                .copied()
                .unwrap_or_default()
                .predict(stores, commits);
            cases.push(CaseResult {
                kernel: kernel.name().to_string(),
                scheme: scheme.name(),
                stores,
                commits,
                predicted,
                measured: tally.in_region(),
                // The scheme run must agree with the Base run on region
                // structure, or S and C don't transfer.
                completed: completed && tally.commits == commits,
            });
        }
    }
    cases
}

/// Core flush/fence totals after running `f` on a one-core machine with
/// a 64-element `f64` scratch array (8 cache lines).
fn counters(f: impl FnOnce(&mut CoreCtx<'_>, PArray<f64>)) -> (u64, u64) {
    let mut m = Machine::new(machine_config().with_cores(1));
    let arr = m.alloc::<f64>(64).expect("scratch fits");
    {
        let mut ctx = m.ctx(0);
        f(&mut ctx, arr);
    }
    let t = m.stats().core_totals();
    (t.flushes, t.fences)
}

/// Demonstrate each W rule as a buggy/fixed pair on a real machine.
pub fn wrule_deltas() -> Vec<RuleDelta> {
    let mut out = Vec::new();
    let mut push = |rule: SRule, buggy: (u64, u64), fixed: (u64, u64)| {
        let Twin::Counter(counter) = rule.dynamic_twin() else {
            unreachable!("W rules twin counters");
        };
        let pick = |(flushes, fences): (u64, u64)| match counter {
            "fences" => fences,
            _ => flushes,
        };
        out.push(RuleDelta {
            rule,
            counter,
            buggy: pick(buggy),
            fixed: pick(fixed),
        });
    };

    // W1: the same line flushed twice with no intervening store.
    let w1_buggy = counters(|ctx, arr| {
        ctx.store(arr, 0, 1.0);
        ctx.clflushopt(arr.addr(0));
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
    });
    let w1_fixed = counters(|ctx, arr| {
        ctx.store(arr, 0, 1.0);
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
    });
    push(SRule::W1RedundantFlush, w1_buggy, w1_fixed);

    // W2: a fence no unflushed store can reach.
    let w2_buggy = counters(|ctx, arr| {
        ctx.store(arr, 0, 1.0);
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
        ctx.sfence();
    });
    let w2_fixed = counters(|ctx, arr| {
        ctx.store(arr, 0, 1.0);
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
    });
    push(SRule::W2RedundantFence, w2_buggy, w2_fixed);

    // W3: an element flush already covered by a range flush.
    let w3_buggy = counters(|ctx, arr| {
        for i in 0..64 {
            ctx.store(arr, i, i as f64);
        }
        ctx.clflushopt(arr.addr(0));
        ctx.flush_range(arr, 0, 64);
        ctx.sfence();
    });
    let w3_fixed = counters(|ctx, arr| {
        for i in 0..64 {
            ctx.store(arr, i, i as f64);
        }
        ctx.flush_range(arr, 0, 64);
        ctx.sfence();
    });
    push(SRule::W3ShadowedFlush, w3_buggy, w3_fixed);

    // W4: a per-iteration commit that publishes nothing — the same lines
    // are re-flushed and re-fenced every round; hoisting the commit out
    // of the loop dedups them (the tmm/gauss recovery-replay shape).
    let w4_buggy = counters(|ctx, arr| {
        for round in 0..4 {
            let mut ec = EagerCommitter::new();
            for i in 0..8 {
                ctx.store(arr, i, (round * 8 + i) as f64);
                ec.note(arr.addr(i));
            }
            ec.commit(ctx);
        }
    });
    let w4_fixed = counters(|ctx, arr| {
        let mut ec = EagerCommitter::new();
        for round in 0..4 {
            for i in 0..8 {
                ctx.store(arr, i, (round * 8 + i) as f64);
                ec.note(arr.addr(i));
            }
        }
        ec.commit(ctx);
    });
    push(SRule::W4MissedCoalescing, w4_buggy, w4_fixed);
    out
}

/// Run the full cost check: extract the model from the sources under
/// `root`, check every kernel under every scheme, and demonstrate the
/// W-rule counter deltas.
///
/// # Errors
///
/// Returns any I/O error from reading the core sources.
pub fn run_cost_check(root: &Path, cfg: &LintConfig) -> std::io::Result<CostCheckReport> {
    let model = CostModel::extract(root, cfg)?;
    let cases = check_kernels(&KernelId::ALL, &model);
    let deltas = wrule_deltas();
    Ok(CostCheckReport {
        model,
        cases,
        deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    fn model() -> CostModel {
        CostModel::extract(&repo_root(), &LintConfig::default()).unwrap()
    }

    #[test]
    fn every_wrule_counter_drops_when_fixed() {
        let deltas = wrule_deltas();
        assert_eq!(deltas.len(), 4);
        for d in &deltas {
            assert!(
                d.improved(),
                "{} {}: {} -> {}",
                d.rule.id(),
                d.counter,
                d.buggy,
                d.fixed
            );
        }
        let ids: Vec<&str> = deltas.iter().map(|d| d.rule.id()).collect();
        assert_eq!(ids, vec!["W1", "W2", "W3", "W4"]);
    }

    #[test]
    fn w4_delta_matches_the_dedup_arithmetic() {
        let w4 = &wrule_deltas()[3];
        // 4 rounds x 1 line vs 1 deduplicated line.
        assert_eq!(w4.buggy, 4);
        assert_eq!(w4.fixed, 1);
    }

    #[test]
    fn tmm_measured_counters_match_predictions_under_every_scheme() {
        let cases = check_kernels(&[KernelId::Tmm], &model());
        assert_eq!(cases.len(), 5);
        for c in &cases {
            assert!(
                c.ok(),
                "{} {}: predicted {} measured {}F {}S",
                c.kernel,
                c.scheme,
                c.predicted,
                c.measured.flushes,
                c.measured.fences,
            );
        }
        let base = &cases[0];
        assert!(base.stores > 0 && base.commits > 0);
        assert_eq!(base.measured.flushes, 0, "Base never flushes in-region");
    }

    #[test]
    fn report_displays_and_passes_for_one_kernel() {
        let model = model();
        let report = CostCheckReport {
            cases: check_kernels(&[KernelId::Fft], &model),
            deltas: wrule_deltas(),
            model,
        };
        assert!(report.pass(), "{report}");
        let text = report.to_string();
        assert!(text.contains("cost-check: PASS"), "{text}");
        assert!(text.contains("W4"), "{text}");
    }
}

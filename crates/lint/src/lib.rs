//! `lp-lint`: static persist-order analyzer over the kernel persistency
//! API.
//!
//! The dynamic stack (lp-check, lp-crashmc) decides persistency bugs by
//! *running* a workload against the simulated memory hierarchy. This
//! crate decides the statically-decidable subset from *source*: it lexes
//! the kernel and core persistency code (no external parser — the
//! toolchain here is intentionally dependency-free), lowers each function
//! to a control-flow graph ([`cfg`]), and solves a must/may dataflow
//! fixpoint over flush/fence/fold obligations — widening at loop heads,
//! joining at branch merges, and flowing obligations through helper calls
//! via per-function summaries.
//!
//! Safety rules S1–S7 are static twins of dynamic checker rules (see
//! [`lp_check::report::Rule::static_twin`]); efficiency rules W1–W4 are
//! validated against the simulator's `flushes`/`fences` counters (see
//! [`costcheck`] and `lp-lint --cost-check`):
//!
//! | rule | property | dynamic twin |
//! |------|----------|--------------|
//! | S1 | every store on a path to a durable-marker publish is flushed and fenced first | R3 |
//! | S2 | no checksum-table publish precedes the fold covering its data | R2 |
//! | S3 | WAL undo entries are appended and fenced before the first in-place overwrite | R4 |
//! | S4 | recovery progress markers stored only after repair stores are flushed and fenced | R7 |
//! | S5 | every `region_begin` is matched by `region_end`/abort on all paths | R1 |
//! | S6 | every persisted LP data line is folded into a checksum before region commit | R2 |
//! | S7 | the parity line is published only after every protected store of its region | R8 |
//! | W1 | no line is flushed twice without an intervening store on any path | `flushes` counter |
//! | W2 | no fence is unreachable by any store or flush | `fences` counter |
//! | W3 | no element flush of a line already covered by a range flush | `flushes` counter |
//! | W4 | per-element loop flushes / non-publishing per-iteration barriers are coalesced | `flushes` counter |
//!
//! Findings carry `file:line` spans and are emitted as a structured
//! [`report::LintReport`] (pretty text or JSON), mirroring lp-check's
//! `ViolationReport`. The [`differential`] module cross-validates the
//! rules against the lp-crashmc mutation rigs and the W-rule fixtures;
//! the [`cost`] module extracts a static per-scheme flush/fence cost
//! model from the core sources, and [`costcheck`] holds the dynamic
//! counters to it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod cfg;
pub mod config;
pub mod cost;
pub mod costcheck;
pub mod differential;
pub mod lexer;
pub mod parser;
pub mod report;

use std::path::{Path, PathBuf};

pub use analysis::analyze_source;
pub use config::LintConfig;
pub use report::{LintFinding, LintReport, SRule};

/// The default lint surface, relative to the workspace root: every
/// kernel plus the core persistency modules the kernels call into.
pub fn default_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let kernels = root.join("crates/kernels/src");
    let mut entries: Vec<_> = std::fs::read_dir(&kernels)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    out.extend(entries);
    for core in [
        "wal.rs",
        "ep.rs",
        "recovery.rs",
        "table.rs",
        "table/hashed.rs",
    ] {
        let p = root.join("crates/core/src").join(core);
        if p.is_file() {
            out.push(p);
        }
    }
    Ok(out)
}

/// Lint a set of files, labelling findings with paths relative to
/// `root` when possible. Runs in two passes: every file is parsed and
/// summarized first, so helper-call obligations resolve across files
/// (a kernel's sink types live in `common.rs`, their call sites in the
/// kernel files).
pub fn lint_paths(paths: &[PathBuf], root: &Path, cfg: &LintConfig) -> std::io::Result<LintReport> {
    let mut parsed = Vec::new();
    let mut summaries = analysis::Summaries::new();
    for path in paths {
        let src = std::fs::read_to_string(path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned();
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let file = parser::parse_file(&src, &stem, cfg);
        summaries.extend(analysis::summarize_file(&file, cfg));
        parsed.push((file, label));
    }
    let mut total = LintReport::default();
    for (file, label) in &parsed {
        total.merge(analysis::analyze_parsed(file, label, cfg, &summaries));
    }
    total.sort();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn default_targets_cover_kernels_and_core() {
        let targets = default_targets(&repo_root()).unwrap();
        let names: Vec<String> = targets
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"wal.rs".to_string()), "{names:?}");
        assert!(names.contains(&"ep.rs".to_string()), "{names:?}");
        assert!(names.contains(&"tmm.rs".to_string()), "{names:?}");
        assert!(targets.len() >= 8, "{names:?}");
    }

    #[test]
    fn clean_tree_lints_to_zero_findings() {
        let root = repo_root();
        let targets = default_targets(&root).unwrap();
        let report = lint_paths(&targets, &root, &LintConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
    }
}

//! `lp-lint` CLI: statically lint persist-order discipline.
//!
//! ```text
//! lp-lint --all                 # lint the default surface (kernels + core)
//! lp-lint --all --json          # same, machine-readable
//! lp-lint --differential        # cross-validate against the mutation rigs
//! lp-lint --cost-check          # hold the static cost model to dynamic counters
//! lp-lint path/to/file.rs ...   # lint specific files
//! ```
//!
//! Exit codes: 0 clean / check pass, 1 findings / check failure, 2 usage
//! or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use lp_lint::costcheck::run_cost_check;
use lp_lint::differential::run_differential;
use lp_lint::{default_targets, lint_paths, LintConfig};

struct Options {
    all: bool,
    json: bool,
    differential: bool,
    cost_check: bool,
    root: PathBuf,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: lp-lint [--all] [--json] [--differential] [--cost-check] [--root DIR] [FILES...]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        json: false,
        differential: false,
        cost_check: false,
        root: PathBuf::from("."),
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => opts.all = true,
            "--json" => opts.json = true,
            "--differential" => opts.differential = true,
            "--cost-check" => opts.cost_check = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            f if f.starts_with('-') => return Err(format!("unknown flag {f}\n{}", usage())),
            f => opts.files.push(PathBuf::from(f)),
        }
    }
    if !opts.differential && !opts.cost_check && !opts.all && opts.files.is_empty() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = LintConfig::default();

    if opts.differential {
        let out = run_differential(&cfg);
        print!("{out}");
        return if out.pass() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.cost_check {
        return match run_cost_check(&opts.root, &cfg) {
            Ok(report) => {
                print!("{report}");
                if report.pass() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("lp-lint: cost-check: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut targets = opts.files.clone();
    if opts.all {
        match default_targets(&opts.root) {
            Ok(t) => targets.extend(t),
            Err(e) => {
                eprintln!(
                    "lp-lint: cannot enumerate targets under {}: {e}",
                    opts.root.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    match lint_paths(&targets, &opts.root, &cfg) {
        Ok(report) => {
            if opts.json {
                println!("{}", report.to_json());
            } else {
                print!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

//! Static flush/fence cost model, extracted from the core persistency
//! sources.
//!
//! Every scheme pays its durability tax through exactly two API calls —
//! [`ThreadPersist::store`] and [`ThreadPersist::commit`] (see
//! `crates/core/src/scheme.rs`) — so a scheme's cost is fully described by
//! two coefficient pairs: flushes/fences **per region store** and
//! **per region commit**. This module recovers those coefficients from
//! *source*, not from documentation: it parses `scheme.rs` and the helpers
//! it calls into (`wal.rs`, `table.rs`), selects the match arm each scheme
//! variant executes, resolves helper calls into their bodies, and counts
//! flush/fence operations along the way.
//!
//! The result is an interval ([`Range`]) per counter, exact (`min == max`)
//! when the path is straight-line, widened when a flush sits behind a
//! branch (`min` excludes it) or inside a loop of unknown trip count
//! (`max` becomes unbounded). Loops over a transaction's staged stores
//! (`for … in &self.pending`) are recognized and billed to the per-store
//! bucket — that is how WAL's commit-time data apply ends up costing one
//! flush *per store* rather than "unbounded".
//!
//! `lp-lint --cost-check` (see [`crate::costcheck`]) multiplies these
//! coefficients by a kernel's structural counts (in-region stores `S`,
//! region commits `C`, measured once on a `Base`-scheme run) and holds the
//! resulting interval against the dynamic `flushes`/`fences` counters of
//! the real scheme runs.
//!
//! [`ThreadPersist::store`]: ../../lp_core/scheme/struct.ThreadPersist.html#method.store
//! [`ThreadPersist::commit`]: ../../lp_core/scheme/struct.ThreadPersist.html#method.commit

use std::collections::BTreeMap;
use std::path::Path;

use crate::analysis::{classify, Kind};
use crate::config::LintConfig;
use crate::parser::{self, Arm, FnItem, Node, RawCall};

/// The `Scheme` enum's variant identifiers, as they appear in match
/// patterns. Keys of [`CostModel::schemes`].
pub const SCHEME_VARIANTS: [&str; 5] = ["Base", "Lazy", "LazyEagerCk", "Eager", "Wal"];

/// The function the per-store coefficients are extracted from.
const STORE_FN: &str = "ThreadPersist::store";
/// The function the per-commit coefficients are extracted from.
const COMMIT_FN: &str = "ThreadPersist::commit";

/// Loop-iterable names (last path segment) that mean "once per staged
/// region store": costs inside such loops bill to the per-store bucket.
const PER_STORE_COLLECTIONS: [&str; 2] = ["pending", "staged"];

/// An inclusive count interval. `max == u64::MAX` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Range {
    /// Fewest occurrences on any path.
    pub min: u64,
    /// Most occurrences on any path (`u64::MAX` = statically unbounded).
    pub max: u64,
}

impl Range {
    /// The exact count `n` (`min == max == n`).
    pub fn exact(n: u64) -> Range {
        Range { min: n, max: n }
    }

    /// Whether the interval is a single point.
    pub fn is_exact(self) -> bool {
        self.min == self.max
    }

    /// Whether `v` falls inside the interval.
    pub fn contains(self, v: u64) -> bool {
        self.min <= v && v <= self.max
    }

    /// Sequential composition: both paths execute.
    fn add(self, other: Range) -> Range {
        Range {
            min: self.min.saturating_add(other.min),
            max: self.max.saturating_add(other.max),
        }
    }

    /// Alternative composition: one of the two paths executes.
    pub fn join(self, other: Range) -> Range {
        Range {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The interval of `count` sequential executions.
    pub fn scale(self, count: u64) -> Range {
        Range {
            min: self.min.saturating_mul(count),
            max: self.max.saturating_mul(count),
        }
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.min)
        } else if self.max == u64::MAX {
            write!(f, "{}..", self.min)
        } else {
            write!(f, "{}..={}", self.min, self.max)
        }
    }
}

/// Flush and fence intervals for one execution of a code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// `clflushopt`/`clwb`/range-flush line flushes.
    pub flushes: Range,
    /// `sfence` executions.
    pub fences: Range,
}

impl Cost {
    fn add(self, other: Cost) -> Cost {
        Cost {
            flushes: self.flushes.add(other.flushes),
            fences: self.fences.add(other.fences),
        }
    }

    fn join(self, other: Cost) -> Cost {
        Cost {
            flushes: self.flushes.join(other.flushes),
            fences: self.fences.join(other.fences),
        }
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}F {}S", self.flushes, self.fences)
    }
}

/// A path's cost split into a fixed part and a per-staged-store part.
#[derive(Debug, Clone, Copy, Default)]
struct PathCost {
    fixed: Cost,
    per_elem: Cost,
}

impl PathCost {
    fn add(self, other: PathCost) -> PathCost {
        PathCost {
            fixed: self.fixed.add(other.fixed),
            per_elem: self.per_elem.add(other.per_elem),
        }
    }

    fn join(self, other: PathCost) -> PathCost {
        PathCost {
            fixed: self.fixed.join(other.fixed),
            per_elem: self.per_elem.join(other.per_elem),
        }
    }
}

/// One scheme's extracted coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeCost {
    /// Cost of one [`ThreadPersist::store`] (plus any commit-time work
    /// that repeats per staged store, e.g. WAL's data apply).
    ///
    /// [`ThreadPersist::store`]: ../../lp_core/scheme/struct.ThreadPersist.html#method.store
    pub per_store: Cost,
    /// Fixed cost of one [`ThreadPersist::commit`].
    ///
    /// [`ThreadPersist::commit`]: ../../lp_core/scheme/struct.ThreadPersist.html#method.commit
    pub per_commit: Cost,
}

impl SchemeCost {
    /// Predicted flush/fence interval for a run with `stores` in-region
    /// stores and `commits` region commits.
    pub fn predict(&self, stores: u64, commits: u64) -> Cost {
        Cost {
            flushes: self
                .per_store
                .flushes
                .scale(stores)
                .add(self.per_commit.flushes.scale(commits)),
            fences: self
                .per_store
                .fences
                .scale(stores)
                .add(self.per_commit.fences.scale(commits)),
        }
    }
}

/// Per-scheme cost coefficients extracted from the core sources.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Coefficients keyed by `Scheme` variant identifier (see
    /// [`SCHEME_VARIANTS`]).
    pub schemes: BTreeMap<String, SchemeCost>,
}

impl CostModel {
    /// Extract the model from the core sources under `root` (the
    /// workspace root containing `crates/core/src`).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the source files.
    pub fn extract(root: &Path, cfg: &LintConfig) -> std::io::Result<CostModel> {
        let dir = root.join("crates/core/src");
        let mut sources = Vec::new();
        for stem in ["scheme", "wal", "table"] {
            let src = std::fs::read_to_string(dir.join(format!("{stem}.rs")))?;
            sources.push((stem.to_string(), src));
        }
        Ok(Self::from_sources(&sources, cfg))
    }

    /// Extract the model from in-memory `(file_stem, source)` pairs.
    pub fn from_sources(sources: &[(String, String)], cfg: &LintConfig) -> CostModel {
        let mut fns: BTreeMap<String, (FnItem, bool)> = BTreeMap::new();
        let mut by_bare: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (stem, src) in sources {
            let file = parser::parse_file(src, stem, cfg);
            for f in file.fns {
                let bare = f.name.rsplit("::").next().unwrap_or(&f.name).to_string();
                by_bare.entry(bare).or_default().push(f.name.clone());
                fns.insert(f.name.clone(), (f, file.is_wal));
            }
        }
        let cx = Cx {
            cfg,
            fns: &fns,
            by_bare: &by_bare,
        };
        let mut schemes = BTreeMap::new();
        for variant in SCHEME_VARIANTS {
            let store = cx.cost_fn(STORE_FN, variant, &mut Vec::new());
            let commit = cx.cost_fn(COMMIT_FN, variant, &mut Vec::new());
            schemes.insert(
                variant.to_string(),
                SchemeCost {
                    // Commit-time work that repeats per staged store is
                    // per-store cost; a per-elem remainder of the store
                    // path itself (none today) also lands here.
                    per_store: store.fixed.add(store.per_elem).add(commit.per_elem),
                    per_commit: commit.fixed,
                },
            );
        }
        CostModel { schemes }
    }

    /// The coefficients for a `Scheme` variant identifier, if extracted.
    pub fn get(&self, variant: &str) -> Option<&SchemeCost> {
        self.schemes.get(variant)
    }
}

impl std::fmt::Display for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "scheme        per-store     per-commit")?;
        for (name, c) in &self.schemes {
            let (s, e) = (c.per_store.to_string(), c.per_commit.to_string());
            writeln!(f, "{name:<13} {s:<13} {e}")?;
        }
        Ok(())
    }
}

/// Extraction context: the parsed helper universe.
struct Cx<'a> {
    cfg: &'a LintConfig,
    /// Qualified name → (item, parsed-from-a-WAL-file).
    fns: &'a BTreeMap<String, (FnItem, bool)>,
    /// Bare name → qualified candidates.
    by_bare: &'a BTreeMap<String, Vec<String>>,
}

impl Cx<'_> {
    fn cost_fn(&self, qualified: &str, variant: &str, stack: &mut Vec<String>) -> PathCost {
        let Some((item, is_wal)) = self.fns.get(qualified) else {
            return PathCost::default();
        };
        if stack.iter().any(|s| s == qualified) {
            return PathCost::default(); // recursion: already billed
        }
        stack.push(qualified.to_string());
        let out = self.cost_nodes(&item.body, variant, *is_wal, stack);
        stack.pop();
        out
    }

    fn cost_nodes(
        &self,
        nodes: &[Node],
        variant: &str,
        is_wal: bool,
        stack: &mut Vec<String>,
    ) -> PathCost {
        let mut total = PathCost::default();
        for node in nodes {
            match node {
                Node::Call(call) => total = total.add(self.cost_call(call, variant, stack)),
                Node::Branch(arms) => {
                    total = total.add(self.cost_branch(arms, variant, is_wal, stack));
                }
                Node::Loop { hint, body } => {
                    let inner = self.cost_nodes(body, variant, is_wal, stack);
                    let elem = hint
                        .rsplit('.')
                        .next()
                        .is_some_and(|seg| PER_STORE_COLLECTIONS.contains(&seg));
                    if elem {
                        // Once per staged store: fixed body cost becomes
                        // per-element; nested per-element cost stays there.
                        total.per_elem = total.per_elem.add(inner.fixed).add(inner.per_elem);
                    } else {
                        // Unknown trip count: zero or more executions.
                        total.fixed = total.fixed.add(unknown_repeat(inner.fixed));
                        total.per_elem = total.per_elem.add(unknown_repeat(inner.per_elem));
                    }
                }
                // Early exits in these bodies are assertion/error paths;
                // the cost model describes the completing execution.
                Node::Diverge => {}
            }
        }
        total
    }

    fn cost_branch(
        &self,
        arms: &[Arm],
        variant: &str,
        is_wal: bool,
        stack: &mut Vec<String>,
    ) -> PathCost {
        let is_scheme_dispatch = arms
            .iter()
            .any(|a| a.pat.iter().any(|p| SCHEME_VARIANTS.contains(&p.as_str())));
        if is_scheme_dispatch {
            // Take exactly the arm(s) this variant executes; a variant
            // with no arm (e.g. behind a wildcard) costs nothing extra.
            let mut out: Option<PathCost> = None;
            for arm in arms {
                if arm.pat.iter().any(|p| p == variant) {
                    let c = self.cost_nodes(&arm.body, variant, is_wal, stack);
                    out = Some(match out {
                        Some(prev) => prev.join(c),
                        None => c,
                    });
                }
            }
            return out.unwrap_or_default();
        }
        // Data-dependent branch: interval over all arms.
        let mut out: Option<PathCost> = None;
        for arm in arms {
            let c = self.cost_nodes(&arm.body, variant, is_wal, stack);
            out = Some(match out {
                Some(prev) => prev.join(c),
                None => c,
            });
        }
        out.unwrap_or_default()
    }

    fn cost_call(&self, call: &RawCall, variant: &str, stack: &mut Vec<String>) -> PathCost {
        if let Some(target) = self.resolve(call, stack) {
            return self.cost_fn(&target, variant, stack);
        }
        let is_wal = false; // receiver-based classification only below
        let fixed = match classify(call, self.cfg, is_wal) {
            Kind::Flush(_) => Cost {
                flushes: Range::exact(1),
                ..Cost::default()
            },
            Kind::Fence => Cost {
                fences: Range::exact(1),
                ..Cost::default()
            },
            // store + flush + fence in one helper.
            Kind::DurableStore => Cost {
                flushes: Range::exact(1),
                fences: Range::exact(1),
            },
            // Flushes one line per touched line of the range, then fences.
            Kind::PersistRange(_) => Cost {
                flushes: Range {
                    min: 1,
                    max: u64::MAX,
                },
                fences: Range::exact(1),
            },
            // An unresolvable flush-and-fence barrier: unbounded flushes.
            Kind::Barrier => Cost {
                flushes: Range {
                    min: 0,
                    max: u64::MAX,
                },
                fences: Range {
                    min: 0,
                    max: u64::MAX,
                },
            },
            _ => Cost::default(),
        };
        PathCost {
            fixed,
            per_elem: Cost::default(),
        }
    }

    /// Resolve a call to a parsed helper's qualified name. `ctx` methods
    /// are primitives, never helpers; otherwise candidates share the bare
    /// name, excluding functions already on the walk stack (so a scheme
    /// method calling a helper with the same bare name — `commit` — does
    /// not resolve to itself). Multiple survivors are disambiguated by
    /// matching the receiver's last segment against the impl type name.
    fn resolve(&self, call: &RawCall, stack: &[String]) -> Option<String> {
        let recv_last = call.receiver.rsplit('.').next().unwrap_or("");
        if recv_last == "ctx" {
            return None;
        }
        let candidates: Vec<&String> = self
            .by_bare
            .get(&call.name)?
            .iter()
            .filter(|q| !stack.iter().any(|s| s == *q))
            .collect();
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0].clone()),
            _ => {
                let seg = recv_last.to_lowercase();
                candidates
                    .iter()
                    .find(|q| {
                        let impl_ty = q.split("::").next().unwrap_or("").to_lowercase();
                        !seg.is_empty() && (impl_ty.contains(&seg) || seg.contains(&impl_ty))
                    })
                    .map(|q| (*q).clone())
            }
        }
    }
}

/// The interval of executing `cost` zero or more times.
fn unknown_repeat(cost: Cost) -> Cost {
    let widen = |r: Range| {
        if r.max == 0 {
            r
        } else {
            Range {
                min: 0,
                max: u64::MAX,
            }
        }
    };
    Cost {
        flushes: widen(cost.flushes),
        fences: widen(cost.fences),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    fn model() -> CostModel {
        CostModel::extract(&repo_root(), &LintConfig::default()).unwrap()
    }

    #[test]
    fn range_display_and_contains() {
        assert_eq!(Range::exact(3).to_string(), "3");
        assert_eq!(Range { min: 0, max: 2 }.to_string(), "0..=2");
        assert_eq!(
            Range {
                min: 1,
                max: u64::MAX
            }
            .to_string(),
            "1.."
        );
        assert!(Range { min: 2, max: 4 }.contains(3));
        assert!(!Range { min: 2, max: 4 }.contains(5));
    }

    #[test]
    fn base_and_lazy_cost_nothing() {
        let m = model();
        for variant in ["Base", "Lazy"] {
            let c = m.get(variant).unwrap();
            assert_eq!(c.per_store, Cost::default(), "{variant}");
            assert_eq!(c.per_commit, Cost::default(), "{variant}");
        }
    }

    #[test]
    fn eager_is_one_flush_per_store_and_marker_round_at_commit() {
        let c = *model().get("Eager").unwrap();
        assert_eq!(c.per_store.flushes, Range::exact(1));
        assert_eq!(c.per_store.fences, Range::exact(0));
        assert_eq!(c.per_commit.flushes, Range::exact(1), "marker flush");
        assert_eq!(c.per_commit.fences, Range::exact(2), "drain + marker");
    }

    #[test]
    fn wal_is_three_flushes_per_store_and_four_fence_rounds() {
        let c = *model().get("Wal").unwrap();
        // Two log-entry flushes at store time + the commit-time data
        // apply (recognized from the `for … in &self.pending` loop).
        assert_eq!(c.per_store.flushes, Range::exact(3));
        assert_eq!(c.per_store.fences, Range::exact(0));
        // Marker log pair + count + status set + marker + status clear.
        assert_eq!(c.per_commit.flushes, Range::exact(6));
        assert_eq!(c.per_commit.fences, Range::exact(4), "Figure 2 rounds");
    }

    #[test]
    fn lazy_eager_ck_pays_one_table_persist_per_commit() {
        let c = *model().get("LazyEagerCk").unwrap();
        assert_eq!(c.per_store, Cost::default());
        assert_eq!(c.per_commit.flushes, Range::exact(1));
        assert_eq!(c.per_commit.fences, Range::exact(1));
    }

    #[test]
    fn predict_scales_with_stores_and_commits() {
        let m = model();
        let wal = m.get("Wal").unwrap().predict(10, 2);
        assert_eq!(wal.flushes, Range::exact(3 * 10 + 6 * 2));
        assert_eq!(wal.fences, Range::exact(4 * 2));
        let ep = m.get("Eager").unwrap().predict(7, 3);
        assert_eq!(ep.flushes, Range::exact(7 + 3));
        assert_eq!(ep.fences, Range::exact(6));
    }

    #[test]
    fn conditional_flush_widens_the_interval() {
        let src = r#"
impl ThreadPersist {
    pub fn store(&self, ctx: &mut C) {
        match self.scheme {
            Scheme::Eager => {
                if dirty {
                    ctx.clflushopt(arr.addr(i));
                }
            }
            _ => {}
        }
    }
    pub fn commit(&self, ctx: &mut C) {}
}
"#;
        let m = CostModel::from_sources(&[("scheme".into(), src.into())], &LintConfig::default());
        let c = m.get("Eager").unwrap();
        assert_eq!(c.per_store.flushes, Range { min: 0, max: 1 });
    }

    #[test]
    fn unknown_loop_is_unbounded_and_pending_loop_is_per_store() {
        let src = r#"
impl ThreadPersist {
    pub fn store(&self, ctx: &mut C) {}
    pub fn commit(&self, ctx: &mut C) {
        match self.scheme {
            Scheme::Wal => {
                for x in 0..n {
                    ctx.sfence();
                }
            }
            Scheme::Eager => {
                for &(addr, bits) in &self.pending {
                    ctx.clflushopt(addr);
                }
            }
        }
    }
}
"#;
        let m = CostModel::from_sources(&[("scheme".into(), src.into())], &LintConfig::default());
        let wal = m.get("Wal").unwrap();
        assert_eq!(
            wal.per_commit.fences,
            Range {
                min: 0,
                max: u64::MAX
            }
        );
        let eager = m.get("Eager").unwrap();
        assert_eq!(eager.per_store.flushes, Range::exact(1));
        assert_eq!(eager.per_commit.flushes, Range::exact(0));
    }

    #[test]
    fn model_displays_one_row_per_scheme() {
        let text = model().to_string();
        for variant in SCHEME_VARIANTS {
            assert!(text.contains(variant), "{text}");
        }
    }
}

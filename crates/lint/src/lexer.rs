//! A minimal Rust lexer: identifiers, punctuation, and line numbers.
//!
//! The analyzer needs call names, receiver chains, and block structure —
//! not full Rust syntax. The lexer therefore strips comments (doc
//! examples included), string/char literals, and lifetimes, and emits a
//! flat token stream tagged with 1-based line numbers. `lp-lint:`
//! directive comments are collected separately by [`scan_directives`]
//! *before* lexing, since lexing discards comments.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text: an identifier/number, or a single punctuation char.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether the token is an identifier (or number), not punctuation.
    pub is_ident: bool,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        !self.is_ident && self.text.len() == 1 && self.text.as_bytes()[0] as char == c
    }
}

/// An `lp-lint:` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `lp-lint: allow(S1, S4)` — suppress the listed rules on this line
    /// and the next.
    Allow(Vec<String>),
    /// `lp-lint: context(recovery)` — override the inferred context of
    /// the next `fn`.
    Context(String),
}

/// Scan raw source for `lp-lint:` directive comments, keyed by line.
pub fn scan_directives(src: &str) -> Vec<(u32, Directive)> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i as u32 + 1;
        let Some(pos) = raw.find("lp-lint:") else {
            continue;
        };
        // Only honor directives inside comments, not string literals.
        if !raw[..pos].contains("//") {
            continue;
        }
        let rest = raw[pos + "lp-lint:".len()..].trim();
        if let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        {
            let rules: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !rules.is_empty() {
                out.push((line, Directive::Allow(rules)));
            }
        } else if let Some(ctx) = rest
            .strip_prefix("context(")
            .and_then(|r| r.split(')').next())
        {
            out.push((line, Directive::Context(ctx.trim().to_string())));
        }
    }
    out
}

/// Lex `src` into tokens. Comments, strings, chars and lifetimes are
/// dropped; everything else becomes an ident or a one-char punct token.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => i = skip_string(&b, i, &mut line),
            'r' if matches!(b.get(i + 1), Some(&'"' | &'#')) && is_raw_string(&b, i) => {
                i = skip_raw_string(&b, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(' ');
                if (next.is_alphabetic() || next == '_') && b.get(i + 2) != Some(&'\'') {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                } else {
                    i += 1; // opening quote
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: b[start..i].iter().collect(),
                    line,
                    is_ident: true,
                });
            }
            _ => {
                toks.push(Tok {
                    text: c.to_string(),
                    line,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_raw_string(b: &[char], i: usize) -> bool {
    // `r"..."` or `r#..#"..."#..#` — but not an identifier like `rs`.
    let mut j = i + 1;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() && b[i] != '"' {
        if b[i] == '\\' {
            i += 1;
        } else if b[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // past `r`
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    'outer: while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            for _ in 0..hashes {
                if b.get(j) != Some(&'#') {
                    i += 1;
                    continue 'outer;
                }
                j += 1;
            }
            return j;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_and_punct_with_lines() {
        let toks = lex("fn f() {\n  ctx.store(a, 1);\n}");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "f", "(", ")", "{", "ctx", ".", "store", "(", "a", ",", "1", ")", ";", "}"]
        );
        assert_eq!(toks[5].line, 2, "ctx on line 2");
        assert!(toks[5].is_ident);
        assert!(toks[6].is_punct('.'));
    }

    #[test]
    fn strips_comments_strings_and_lifetimes() {
        let toks = lex("// store(x)\n/* sfence */ let s = \"sfence()\"; &'a mut T; 'x';");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"store"));
        assert!(!texts.contains(&"sfence"));
        assert!(texts.contains(&"let"));
        assert!(texts.contains(&"T"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let toks = lex("/* a /* b */ c */ fn x() {} r#\"flush()\"#");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts[..2], ["fn", "x"]);
        assert!(!texts.contains(&"flush"));
    }

    #[test]
    fn directive_scan() {
        let src = "x\n// lp-lint: allow(S1, S4) reason\ny\n// lp-lint: context(recovery)\n";
        let d = scan_directives(src);
        assert_eq!(
            d,
            vec![
                (2, Directive::Allow(vec!["S1".into(), "S4".into()])),
                (4, Directive::Context("recovery".into())),
            ]
        );
    }

    #[test]
    fn directive_outside_comment_is_ignored() {
        assert!(scan_directives("let s = \"lp-lint: allow(S1)\";").is_empty());
    }
}

//! Differential cross-validation against the dynamic verification stack.
//!
//! The dynamic stack carries eleven mutation rigs (`mut:*` ordering
//! bugs, `fmut:*` fault-interaction bugs — ten in lp-crashmc, plus the
//! lp-check sanitizer's `parity_before_data`) that it provably flags. For
//! each rig this module carries a source *fixture* reproducing the rig's
//! buggy persist-order pattern in kernel-API idiom; the differential run
//! asserts that `lp-lint` flags every statically-decidable fixture with
//! the expected S rule (and a real file:line span), and that the clean
//! control fixture lints to zero findings. Rigs whose bug only exists at
//! runtime are documented as dynamic-only with the reason.

use std::fmt;

use lp_check::report::Rule;

use crate::analysis::analyze_source;
use crate::config::LintConfig;
use crate::report::{SRule, Twin};

/// How a mutation rig is expected to show up statically.
#[derive(Debug, Clone, Copy)]
pub enum Verdict {
    /// The bug is visible in source: this fixture must trip this rule.
    Static {
        /// Fixture file name (under `crates/lint/fixtures/`).
        fixture: &'static str,
        /// Fixture source (embedded at compile time).
        src: &'static str,
        /// The S rule the fixture must trip.
        rule: SRule,
    },
    /// The bug only exists at runtime; `lp-lint` cannot decide it.
    DynamicOnly {
        /// Why no static rule can decide this rig.
        reason: &'static str,
    },
}

/// One rig's static expectation, tied to the dynamic rule it trips.
#[derive(Debug, Clone, Copy)]
pub struct RigExpectation {
    /// Rig name as registered in lp-crashmc (`mut:*` / `fmut:*`).
    pub rig: &'static str,
    /// The dynamic lp-check rule the rig was built to trip.
    pub dynamic_rule: Rule,
    /// Static verdict.
    pub verdict: Verdict,
}

/// The clean control fixture: correct LP/EP/recovery idioms that must
/// lint to zero findings.
pub const CLEAN_FIXTURE: (&str, &str) = (
    "clean_control.rs",
    include_str!("../fixtures/clean_control.rs"),
);

/// Static expectations for all eleven rigs, in lp-crashmc registration
/// order (`mutations::all()` then `fault_mutations::all()`), plus the
/// lp-check sanitizer rig for R8 (certification masks the premature
/// parity at runtime — no corrupt crash state exists for lp-crashmc to
/// exhibit — so its dynamic ground truth is the sanitizer suite).
pub fn expectations() -> Vec<RigExpectation> {
    vec![
        RigExpectation {
            rig: "mut:store_outside_region",
            dynamic_rule: Rule::R1,
            verdict: Verdict::Static {
                fixture: "store_outside_region.rs",
                src: include_str!("../fixtures/store_outside_region.rs"),
                rule: SRule::S5UnbalancedRegion,
            },
        },
        RigExpectation {
            rig: "mut:lp_skip_fold",
            dynamic_rule: Rule::R2,
            verdict: Verdict::Static {
                fixture: "lp_skip_fold.rs",
                src: include_str!("../fixtures/lp_skip_fold.rs"),
                rule: SRule::S2PublishBeforeCover,
            },
        },
        RigExpectation {
            rig: "mut:ep_skip_fence",
            dynamic_rule: Rule::R3,
            verdict: Verdict::Static {
                fixture: "ep_skip_fence.rs",
                src: include_str!("../fixtures/ep_skip_fence.rs"),
                rule: SRule::S1StoreNotCovered,
            },
        },
        RigExpectation {
            rig: "mut:ep_skip_flush",
            dynamic_rule: Rule::R3,
            verdict: Verdict::Static {
                fixture: "ep_skip_flush.rs",
                src: include_str!("../fixtures/ep_skip_flush.rs"),
                rule: SRule::S1StoreNotCovered,
            },
        },
        RigExpectation {
            rig: "mut:wal_data_before_log",
            dynamic_rule: Rule::R4,
            verdict: Verdict::Static {
                fixture: "wal_data_before_log.rs",
                src: include_str!("../fixtures/wal_data_before_log.rs"),
                rule: SRule::S3OverwriteBeforeLogFence,
            },
        },
        RigExpectation {
            rig: "mut:overlap_write_sets",
            dynamic_rule: Rule::R5,
            verdict: Verdict::DynamicOnly {
                reason: "needs concrete addresses and the cross-thread \
                         schedule; write-set overlap is a whole-program \
                         aliasing fact invisible to an intraprocedural pass",
            },
        },
        RigExpectation {
            rig: "mut:torn_rewrite",
            dynamic_rule: Rule::R6,
            verdict: Verdict::DynamicOnly {
                reason: "depends on natural eviction timing: the rewrite is \
                         only a bug if the first region's checksum had not \
                         yet reached NVMM",
            },
        },
        RigExpectation {
            rig: "fmut:torn_blind_word",
            dynamic_rule: Rule::R3,
            verdict: Verdict::DynamicOnly {
                reason: "torn-write fault semantics: the source ordering is \
                         correct; the bug is a blind rewrite interacting \
                         with a mid-line tear injected by the fault model",
            },
        },
        RigExpectation {
            rig: "fmut:poison_pattern_collision",
            dynamic_rule: Rule::R2,
            verdict: Verdict::DynamicOnly {
                reason: "value-dependent: a media-fault poison pattern \
                         colliding with a weak checksum is a property of \
                         runtime data, not of persist ordering",
            },
        },
        RigExpectation {
            rig: "fmut:marker_first_recovery",
            dynamic_rule: Rule::R7,
            verdict: Verdict::Static {
                fixture: "recovery_marker_first.rs",
                src: include_str!("../fixtures/recovery_marker_first.rs"),
                rule: SRule::S4MarkerBeforeRepairFence,
            },
        },
        RigExpectation {
            rig: "mut:parity_before_data",
            dynamic_rule: Rule::R8,
            verdict: Verdict::Static {
                fixture: "parity_before_data.rs",
                src: include_str!("../fixtures/parity_before_data.rs"),
                rule: SRule::S7ParityBeforeData,
            },
        },
    ]
}

/// Efficiency expectations: every W/S6 fixture must be flagged with its
/// rule. Unlike the rig fixtures, these have no `lp_check` rule as
/// ground truth — their dynamic twin is a simulator counter, and
/// `lp-lint --cost-check` measures the flush/fence drop when each
/// flagged redundancy is removed (S6 twins R2 and rides along here
/// because its fixture exercises the same checksum-coverage lattice).
pub fn efficiency_expectations() -> Vec<(&'static str, &'static str, &'static str, SRule)> {
    vec![
        (
            "eff:redundant_flush",
            "w1_redundant_flush.rs",
            include_str!("../fixtures/w1_redundant_flush.rs"),
            SRule::W1RedundantFlush,
        ),
        (
            "eff:redundant_fence",
            "w2_redundant_fence.rs",
            include_str!("../fixtures/w2_redundant_fence.rs"),
            SRule::W2RedundantFence,
        ),
        (
            "eff:range_shadowed_flush",
            "w3_range_shadowed_flush.rs",
            include_str!("../fixtures/w3_range_shadowed_flush.rs"),
            SRule::W3ShadowedFlush,
        ),
        (
            "eff:unrolled_flush",
            "w4_unrolled_flush.rs",
            include_str!("../fixtures/w4_unrolled_flush.rs"),
            SRule::W4MissedCoalescing,
        ),
        (
            "eff:loop_barrier",
            "w4_loop_barrier.rs",
            include_str!("../fixtures/w4_loop_barrier.rs"),
            SRule::W4MissedCoalescing,
        ),
        (
            "eff:lp_unfolded_store",
            "s6_lp_unfolded_store.rs",
            include_str!("../fixtures/s6_lp_unfolded_store.rs"),
            SRule::S6UncoveredData,
        ),
    ]
}

/// One rig's differential result.
#[derive(Debug, Clone)]
pub struct RigResult {
    /// Rig name.
    pub rig: &'static str,
    /// Expected rule, `None` for dynamic-only rigs.
    pub expected: Option<SRule>,
    /// Whether the expectation held (dynamic-only rigs trivially pass).
    pub ok: bool,
    /// Human-readable outcome line.
    pub note: String,
}

/// Outcome of a full differential run.
#[derive(Debug, Clone)]
pub struct DifferentialOutcome {
    /// Per-rig results, in registration order.
    pub rigs: Vec<RigResult>,
    /// Whether the clean control fixture linted to zero findings.
    pub clean_ok: bool,
    /// Clean fixture findings (empty when `clean_ok`).
    pub clean_note: String,
}

impl DifferentialOutcome {
    /// All static expectations held and the control fixture is clean.
    pub fn pass(&self) -> bool {
        self.clean_ok && self.rigs.iter().all(|r| r.ok)
    }

    /// Number of rigs decided statically.
    pub fn static_count(&self) -> usize {
        self.rigs.iter().filter(|r| r.expected.is_some()).count()
    }
}

impl fmt::Display for DifferentialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lp-lint differential: {}/{} rigs statically decidable",
            self.static_count(),
            self.rigs.len()
        )?;
        for r in &self.rigs {
            let mark = if r.ok { "ok " } else { "FAIL" };
            writeln!(f, "  [{mark}] {:<28} {}", r.rig, r.note)?;
        }
        let mark = if self.clean_ok { "ok " } else { "FAIL" };
        writeln!(f, "  [{mark}] {:<28} {}", "clean control", self.clean_note)?;
        writeln!(f, "result: {}", if self.pass() { "PASS" } else { "FAIL" })
    }
}

/// Run the full differential: every fixture against its expected rule,
/// plus the clean control.
pub fn run_differential(cfg: &LintConfig) -> DifferentialOutcome {
    let mut rigs: Vec<RigResult> = expectations()
        .into_iter()
        .map(|e| match e.verdict {
            Verdict::Static { fixture, src, rule } => {
                let stem = fixture.trim_end_matches(".rs");
                let label = format!("fixtures/{fixture}");
                let report = analyze_source(src, &label, stem, cfg);
                match report.of_rule(rule).first() {
                    Some(hit) if hit.line > 0 => RigResult {
                        rig: e.rig,
                        expected: Some(rule),
                        ok: true,
                        note: format!(
                            "{} (dynamic {}) flagged at {}:{}",
                            rule.id(),
                            e.dynamic_rule.id(),
                            hit.file,
                            hit.line
                        ),
                    },
                    _ => RigResult {
                        rig: e.rig,
                        expected: Some(rule),
                        ok: false,
                        note: format!(
                            "expected {} on {label}, got: {}",
                            rule.id(),
                            if report.is_clean() {
                                "no findings".to_string()
                            } else {
                                report
                                    .findings
                                    .iter()
                                    .map(|f| f.rule.id())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            }
                        ),
                    },
                }
            }
            Verdict::DynamicOnly { reason } => RigResult {
                rig: e.rig,
                expected: None,
                ok: true,
                note: format!("dynamic-only ({}): {reason}", e.dynamic_rule.id()),
            },
        })
        .collect();
    for (rig, file, src, rule) in efficiency_expectations() {
        let stem = file.trim_end_matches(".rs");
        let label = format!("fixtures/{file}");
        let report = analyze_source(src, &label, stem, cfg);
        let twin = match rule.dynamic_twin() {
            Twin::DynamicRule(r) => format!("dynamic {r}"),
            Twin::Counter(c) => format!("{c} counter"),
        };
        rigs.push(match report.of_rule(rule).first() {
            Some(hit) if hit.line > 0 => RigResult {
                rig,
                expected: Some(rule),
                ok: true,
                note: format!(
                    "{} ({twin}) flagged at {}:{}",
                    rule.id(),
                    hit.file,
                    hit.line
                ),
            },
            _ => RigResult {
                rig,
                expected: Some(rule),
                ok: false,
                note: format!(
                    "expected {} on {label}, got {} finding(s)",
                    rule.id(),
                    report.findings.len()
                ),
            },
        });
    }
    let clean = analyze_source(
        CLEAN_FIXTURE.1,
        "fixtures/clean_control.rs",
        "clean_control",
        cfg,
    );
    DifferentialOutcome {
        rigs,
        clean_ok: clean.is_clean(),
        clean_note: if clean.is_clean() {
            "zero findings".to_string()
        } else {
            format!(
                "{} unexpected finding(s): {}",
                clean.findings.len(),
                clean
                    .findings
                    .iter()
                    .map(|f| format!("{} at line {}", f.rule.id(), f.line))
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_passes_end_to_end() {
        let out = run_differential(&LintConfig::default());
        assert!(out.pass(), "{out}");
    }

    #[test]
    fn at_least_six_rigs_are_static() {
        let out = run_differential(&LintConfig::default());
        assert!(out.static_count() >= 6, "{}", out.static_count());
    }

    #[test]
    fn static_rules_agree_with_dynamic_twins() {
        // The S rule each fixture trips must be a declared static twin
        // of the dynamic rule its rig was built around.
        for e in expectations() {
            if let Verdict::Static { rule, .. } = e.verdict {
                assert!(
                    e.dynamic_rule.static_twins().contains(&rule.id()),
                    "{} twin mismatch: {} not in {:?}",
                    e.rig,
                    rule.id(),
                    e.dynamic_rule.static_twins()
                );
            }
        }
        // Dynamic-only rigs: the *rig* is undecidable even when the rule
        // family has a twin (e.g. fmut rigs trip R2/R3 via faults).
    }

    #[test]
    fn twin_mapping_is_total_and_round_trips() {
        // Forward: every static twin a dynamic rule declares names a real
        // S rule whose own twin points straight back at that rule.
        for r in Rule::ALL {
            for id in r.static_twins() {
                let s = SRule::from_id(id)
                    .unwrap_or_else(|| panic!("{} declares unknown twin {id}", r.id()));
                assert_eq!(
                    s.dynamic_twin(),
                    Twin::DynamicRule(r.id()),
                    "{id} does not round-trip to {}",
                    r.id()
                );
            }
        }
        // Reverse: every safety rule is claimed by exactly one dynamic
        // rule, and every efficiency rule twins a counter `--cost-check`
        // can actually measure.
        for s in SRule::all() {
            match s.dynamic_twin() {
                Twin::DynamicRule(rid) => {
                    let owners: Vec<Rule> =
                        Rule::ALL.into_iter().filter(|r| r.id() == rid).collect();
                    assert_eq!(owners.len(), 1, "{} twins unknown {rid}", s.id());
                    assert!(
                        owners[0].static_twins().contains(&s.id()),
                        "{rid} does not list {} back",
                        s.id()
                    );
                }
                Twin::Counter(c) => {
                    assert!(c == "flushes" || c == "fences", "{}: {c}", s.id());
                }
            }
        }
    }

    #[test]
    fn every_efficiency_fixture_is_expected_exactly_once() {
        let exp = efficiency_expectations();
        let mut files: Vec<&str> = exp.iter().map(|(_, f, _, _)| *f).collect();
        files.sort_unstable();
        files.dedup();
        assert_eq!(files.len(), exp.len());
        // Every W rule has at least one fixture; S6 rides along.
        for rule in SRule::all().into_iter().filter(|r| r.id().starts_with('W')) {
            assert!(
                exp.iter().any(|(_, _, _, r)| *r == rule),
                "no efficiency fixture for {}",
                rule.id()
            );
        }
    }
}

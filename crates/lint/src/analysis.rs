//! The persist-order and write-efficiency dataflow engine.
//!
//! Each function body is lowered to a control-flow graph ([`crate::cfg`])
//! and solved to a fixpoint over an abstract state with two polarities:
//!
//! * **may** facts (union at joins): pending durability obligations —
//!   stores not yet flushed, flushed but not yet fenced, not yet folded
//!   into a running checksum, WAL append/fence ordering, region balance.
//!   These drive the safety rules S1–S6: a store pending on *any* path is
//!   pending at the merge.
//! * **must** facts (intersection at joins): lines known to be clean —
//!   flush expressions already issued with no intervening store on any
//!   path, and fence cleanliness. These drive the write-efficiency rules
//!   W1–W3: a redundancy is only flagged when it holds on *every* path.
//!
//! Loop heads widen the must facts: a flush born inside the loop body is
//! iteration-dependent (its index changes), so it is dropped at the back
//! edge join rather than falsely proving the next iteration redundant.
//!
//! Per-function summaries make obligations flow through helper calls:
//! a call to a function that leaves stores unflushed imports those
//! obligations at the call site, while a call to a summarized pure helper
//! no longer destroys must facts the way an unknown call must.
//!
//! The solver runs in two phases — fixpoint first (no emission), then a
//! single emission pass over the converged block-entry states — so a
//! block revisited by the worklist never double-reports.

use std::collections::{BTreeMap, VecDeque};

use crate::cfg::Cfg;
use crate::config::{FnContext, LintConfig};
use crate::lexer::Directive;
use crate::parser::{parse_file, FnItem, Node, ParsedFile, RawCall};
use crate::report::{LintFinding, LintReport, SRule};

/// Classified persistency-API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Raw persistent data store: creates flush/fence/fold obligations.
    DataStore(String),
    /// Scheme-managed store (`tp.store`, `sink.store`): durability is the
    /// scheme's job, but the call must sit inside a region (S5).
    RegionStore,
    /// Lazy checksum-table publish (`table.store`).
    TablePublish,
    /// Eager checksum-table publish (`table.persist`).
    TablePersist,
    /// Durable progress-marker store.
    MarkerPublish,
    /// WAL undo-log append (`entries` store, `log_and_stage`).
    LogAppend,
    /// WAL arena header store (status/count/marker line).
    StatusPublish,
    /// Parity-arena publish (`parity.store_lanes`, or a store whose
    /// target is a parity arena).
    ParityPublish,
    /// Flush of one target (`clflushopt`, `flush_range`, `flush_rows`),
    /// or of everything when the target could not be resolved.
    Flush(Option<String>),
    /// Store fence.
    Fence,
    /// Flush-everything-and-fence (`committer.commit`, `sink.commit`,
    /// `tx.commit`).
    Barrier,
    /// Fold into a running checksum (`ck.update`).
    Fold,
    /// Region open.
    RegionBegin,
    /// Region close (`tp.commit` / `tp.abort`).
    RegionEnd,
    /// Already-durable helper (`persist_store`: store+flush+fence).
    DurableStore,
    /// `persist_range(ctx, arr, ..)`: flush target + fence.
    PersistRange(Option<String>),
    /// Anything else.
    Other,
}

/// Classify a call site using the name-allowlist config.
pub(crate) fn classify(call: &RawCall, cfg: &LintConfig, is_wal_file: bool) -> Kind {
    let recv = call.receiver.as_str();
    let recv_is_ctx = recv.is_empty() || recv.rsplit('.').next() == Some("ctx");
    // Target of a store/flush: explicit argument for ctx methods, the
    // receiver itself for container methods (`m.store(ctx, ..)`).
    let arg_target = |arg: &str| -> String {
        let t = cfg.strip_accessors(arg);
        if t.rsplit('.').next() == Some("ctx") {
            String::new()
        } else {
            t.to_string()
        }
    };
    match call.name.as_str() {
        "store" => {
            if cfg.is_region_receiver(recv) || cfg.is_sink_receiver(recv) {
                return Kind::RegionStore;
            }
            if cfg.is_table(recv) {
                return Kind::TablePublish;
            }
            let target = if recv_is_ctx {
                arg_target(&call.arg0)
            } else {
                arg_target(recv)
            };
            if cfg.is_table(&target) {
                Kind::TablePublish
            } else if cfg.is_parity(&target) {
                Kind::ParityPublish
            } else if cfg.is_marker(&target) {
                Kind::MarkerPublish
            } else if cfg.is_log(&target, is_wal_file) {
                Kind::LogAppend
            } else if cfg.is_log_header(&target, is_wal_file) {
                Kind::StatusPublish
            } else if target.is_empty() {
                Kind::DataStore("<expr>".into())
            } else {
                Kind::DataStore(target)
            }
        }
        "store_addr" => {
            let target = arg_target(&call.arg0);
            if cfg.is_log(&target, is_wal_file) {
                Kind::LogAppend
            } else if target.is_empty() {
                Kind::DataStore("<expr>".into())
            } else {
                Kind::DataStore(target)
            }
        }
        "log_and_stage" => Kind::LogAppend,
        "store_lanes" => Kind::ParityPublish,
        "clflushopt" | "clwb" | "flush_range" => {
            let t = arg_target(&call.arg0);
            Kind::Flush((!t.is_empty()).then_some(t))
        }
        "flush_rows" | "flush_all" => {
            // Container method: the receiver is the flushed array.
            let t = arg_target(recv);
            Kind::Flush((!t.is_empty()).then_some(t))
        }
        "sfence" => Kind::Fence,
        "persist_store" => Kind::DurableStore,
        "persist_range" => {
            let t = arg_target(&call.arg1);
            Kind::PersistRange((!t.is_empty()).then_some(t))
        }
        "persist" if cfg.is_table(recv) => Kind::TablePersist,
        "update" if cfg.is_fold_receiver(recv) => Kind::Fold,
        "begin" if cfg.is_region_receiver(recv) => Kind::RegionBegin,
        "region_begin" => Kind::RegionBegin,
        "commit" | "abort" if cfg.is_region_receiver(recv) => Kind::RegionEnd,
        "region_commit" | "region_end" => Kind::RegionEnd,
        "commit" => Kind::Barrier,
        _ => Kind::Other,
    }
}

/// Whether a flush-family call flushes a whole range (vs one element),
/// and the expression key identifying exactly which line(s) it flushes.
fn flush_key(call: &RawCall) -> (String, bool) {
    match call.name.as_str() {
        "flush_range" => (format!("r:{}", call.args_full), true),
        "flush_rows" | "flush_all" => (format!("r:{}:{}", call.receiver, call.args_full), true),
        "persist_range" => (format!("r:p:{}", call.args_full), true),
        _ => (format!("e:{}", call.args_full), false),
    }
}

/// A must-fact: this flush expression was issued and no store has touched
/// its line(s) since, on any path.
#[derive(Debug, Clone, PartialEq)]
struct FlushFact {
    /// Line of the flush that made the line(s) clean.
    line: u32,
    /// Stripped base path of the flushed array (empty when unresolved).
    base: String,
    /// Whether the flush covered a range rather than one element.
    range: bool,
}

/// Abstract state at one program point.
#[derive(Debug, Clone, Default, PartialEq)]
struct AbsState {
    /// Open region nesting depth with the begin lines.
    begins: Vec<u32>,
    /// May: stored but not yet flushed: target → first store line.
    unflushed: BTreeMap<String, u32>,
    /// May: flushed but not yet fenced: target → first store line.
    unfenced: BTreeMap<String, u32>,
    /// May: stored but not yet folded into a checksum: target → line.
    unfolded: BTreeMap<String, u32>,
    /// Must: flush expression key → clean-line fact (W1/W3).
    flushed: BTreeMap<String, FlushFact>,
    /// Must: line of the last fence, with no store/flush since (W2).
    fence_clean: Option<u32>,
    /// WAL appends seen on this path (capped for convergence).
    appends: u32,
    /// Some append has been covered by a fence on this path.
    log_fenced: bool,
    /// Line of a recovery progress-marker publish on this path (S4:
    /// repairs must precede it, so a later repair store is a violation).
    marker_line: Option<u32>,
    /// Line of a forward-path parity publish on this path (S7: the
    /// parity line summarizes the region's data, so a later protected
    /// store in the same region is a violation).
    parity_line: Option<u32>,
}

impl AbsState {
    fn pending_durability(&self) -> Vec<(&String, &u32, &'static str)> {
        let mut v: Vec<_> = self
            .unflushed
            .iter()
            .map(|(t, l)| (t, l, "unflushed"))
            .collect();
        v.extend(self.unfenced.iter().map(|(t, l)| (t, l, "unfenced")));
        v.sort_by_key(|(_, l, _)| **l);
        v
    }

    /// Drop must-facts that were touched by a store to `target`
    /// (`<expr>`/empty targets conservatively kill everything; facts with
    /// an unresolved base die on any store).
    fn kill_flushed(&mut self, target: &str) {
        if target.is_empty() || target == "<expr>" {
            self.flushed.clear();
            return;
        }
        self.flushed
            .retain(|_, f| !f.base.is_empty() && f.base != target);
    }
}

/// Join two states at a merge point: union for may facts, intersection
/// for must facts. A mismatch in region depth is an S5 violation recorded
/// separately by the emission pass.
fn join(mut a: AbsState, b: &AbsState) -> AbsState {
    for (t, l) in &b.unflushed {
        let e = a.unflushed.entry(t.clone()).or_insert(*l);
        *e = (*e).min(*l);
    }
    for (t, l) in &b.unfenced {
        // A target unflushed on one path and unfenced on the other is
        // kept at the stronger (unflushed) obligation.
        if !a.unflushed.contains_key(t) {
            let e = a.unfenced.entry(t.clone()).or_insert(*l);
            *e = (*e).min(*l);
        }
    }
    for (t, l) in &b.unfolded {
        let e = a.unfolded.entry(t.clone()).or_insert(*l);
        *e = (*e).min(*l);
    }
    let mut flushed = BTreeMap::new();
    for (k, fa) in &a.flushed {
        if let Some(fb) = b.flushed.get(k) {
            let mut f = fa.clone();
            f.line = f.line.min(fb.line);
            flushed.insert(k.clone(), f);
        }
    }
    a.flushed = flushed;
    a.fence_clean = match (a.fence_clean, b.fence_clean) {
        (Some(x), Some(y)) => Some(x.min(y)),
        _ => None,
    };
    a.appends = a.appends.max(b.appends);
    a.log_fenced = a.log_fenced && b.log_fenced;
    a.marker_line = match (a.marker_line, b.marker_line) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    };
    a.parity_line = match (a.parity_line, b.parity_line) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    };
    if b.begins.len() > a.begins.len() {
        a.begins = b.begins.clone();
    }
    a
}

/// Widen a back-edge contribution at a loop head: must facts born inside
/// the loop body are iteration-dependent (the flushed index changes), so
/// they cannot prove the next iteration's flush redundant.
fn widen(st: &mut AbsState, span: (u32, u32)) {
    st.flushed.retain(|_, f| f.line < span.0 || f.line > span.1);
    if st.fence_clean.is_some_and(|l| l >= span.0 && l <= span.1) {
        st.fence_clean = None;
    }
}

/// Per-function facts gathered in a syntactic prepass.
#[derive(Debug, Default, Clone, Copy)]
struct FnFacts {
    has_append: bool,
    has_begin: bool,
    has_fold: bool,
}

fn gather_facts(nodes: &[Node], cfg: &LintConfig, is_wal_file: bool, facts: &mut FnFacts) {
    for n in nodes {
        match n {
            Node::Call(c) => match classify(c, cfg, is_wal_file) {
                Kind::LogAppend => facts.has_append = true,
                Kind::RegionBegin => facts.has_begin = true,
                Kind::Fold => facts.has_fold = true,
                _ => {}
            },
            Node::Branch(arms) => {
                for a in arms {
                    gather_facts(&a.body, cfg, is_wal_file, facts);
                }
            }
            Node::Loop { body, .. } => gather_facts(body, cfg, is_wal_file, facts),
            Node::Diverge => {}
        }
    }
}

/// What one function does to persistent state, for interprocedural use.
#[derive(Debug, Clone, Default)]
pub(crate) struct FnSummary {
    /// The function performs some persistent store.
    pub(crate) does_store: bool,
    /// The function publishes (table/marker/status store or region end).
    pub(crate) publishes: bool,
    /// Obligations left unflushed at the function's normal exit.
    pub(crate) residual_unflushed: Vec<(String, u32)>,
    /// Obligations flushed but not fenced at the function's normal exit.
    pub(crate) residual_unfenced: Vec<(String, u32)>,
}

/// Function summaries keyed by qualified name (`EagerOnlySink::commit`)
/// or bare name for free functions.
pub(crate) type Summaries = BTreeMap<String, FnSummary>;

fn summary_flags(nodes: &[Node], cfg: &LintConfig, is_wal: bool, s: &mut FnSummary) {
    for n in nodes {
        match n {
            Node::Call(c) => match classify(c, cfg, is_wal) {
                Kind::DataStore(_) | Kind::RegionStore | Kind::LogAppend | Kind::DurableStore => {
                    s.does_store = true;
                }
                Kind::TablePublish
                | Kind::TablePersist
                | Kind::MarkerPublish
                | Kind::StatusPublish
                | Kind::ParityPublish
                | Kind::RegionEnd => {
                    s.does_store = true;
                    s.publishes = true;
                }
                _ => {}
            },
            Node::Branch(arms) => {
                for a in arms {
                    summary_flags(&a.body, cfg, is_wal, s);
                }
            }
            Node::Loop { body, .. } => summary_flags(body, cfg, is_wal, s),
            Node::Diverge => {}
        }
    }
}

/// Compute summaries for every function in a parsed file. Summaries are
/// depth-0: each body is solved with an *empty* summary table, so helper
/// chains degrade to the conservative unknown-call treatment rather than
/// requiring a call-graph SCC pass.
pub(crate) fn summarize_file(parsed: &ParsedFile, cfg: &LintConfig) -> Summaries {
    let empty = Summaries::new();
    let mut out = Summaries::new();
    for f in &parsed.fns {
        if f.context == FnContext::Ignore {
            continue;
        }
        let mut s = FnSummary::default();
        summary_flags(&f.body, cfg, parsed.is_wal, &mut s);
        let mut facts = FnFacts::default();
        gather_facts(&f.body, cfg, parsed.is_wal, &mut facts);
        let mut sink = Vec::new();
        let mut ev = Eval {
            cfg,
            file: "",
            function: &f.name,
            context: f.context,
            is_wal_file: parsed.is_wal,
            facts,
            impl_ty: f.name.split_once("::").map(|(t, _)| t.to_string()),
            bindings: &f.bindings,
            summaries: &empty,
            emit_on: false,
            findings: &mut sink,
        };
        let graph = Cfg::build(&f.body);
        let (_, outs) = ev.solve(&graph);
        if let Some(exit) = &outs[graph.exit] {
            s.residual_unflushed = exit
                .unflushed
                .iter()
                .map(|(t, l)| (t.clone(), *l))
                .collect();
            s.residual_unfenced = exit.unfenced.iter().map(|(t, l)| (t.clone(), *l)).collect();
        }
        out.insert(f.name.clone(), s);
    }
    out
}

/// Evaluation harness for one function.
struct Eval<'a> {
    cfg: &'a LintConfig,
    file: &'a str,
    function: &'a str,
    context: FnContext,
    is_wal_file: bool,
    facts: FnFacts,
    /// Impl type of the current function (`Tmm` for `Tmm::run`).
    impl_ty: Option<String>,
    /// `let var = Type…` bindings from the function body.
    bindings: &'a [(String, String)],
    summaries: &'a Summaries,
    /// Findings are recorded only during the emission phase.
    emit_on: bool,
    findings: &'a mut Vec<LintFinding>,
}

impl<'a> Eval<'a> {
    fn emit(&mut self, rule: SRule, line: u32, detail: String) {
        if !self.emit_on {
            return;
        }
        self.findings.push(LintFinding {
            rule,
            file: self.file.to_string(),
            line,
            function: self.function.to_string(),
            detail,
        });
    }

    /// Resolve a call to a summarized function: free calls by bare name,
    /// `self.m(..)` through the impl type, `var.m(..)` through a
    /// `let var = Type…` binding.
    fn resolve(&self, call: &RawCall) -> Option<&'a FnSummary> {
        let recv = call.receiver.as_str();
        let key = if recv.is_empty() {
            call.name.clone()
        } else if recv == "self" {
            format!("{}::{}", self.impl_ty.as_deref()?, call.name)
        } else if !recv.contains('.') {
            let ty = &self.bindings.iter().rev().find(|(v, _)| v == recv)?.1;
            format!("{ty}::{}", call.name)
        } else {
            return None;
        };
        self.summaries.get(&key)
    }

    /// Report pending durability obligations at a publish point.
    fn check_publish(&mut self, rule: SRule, what: &str, line: u32, st: &AbsState) {
        let pending = st.pending_durability();
        if pending.is_empty() {
            return;
        }
        let list: Vec<String> = pending
            .iter()
            .take(3)
            .map(|(t, l, how)| format!("`{t}` stored at line {l} still {how}"))
            .collect();
        self.emit(
            rule,
            line,
            format!(
                "{what} while {} store(s) lack flush+sfence: {}",
                pending.len(),
                list.join("; ")
            ),
        );
    }

    /// Transfer function: one call against the abstract state.
    fn apply(&mut self, call: &RawCall, st: &mut AbsState) {
        if self.cfg.accessor_suffixes.iter().any(|a| a == &call.name) {
            return; // pure accessor (`arr.addr(i)`) nested in another call
        }
        let kind = classify(call, self.cfg, self.is_wal_file);
        let line = call.line;
        match kind {
            Kind::DataStore(target) => {
                if self.facts.has_append && !st.log_fenced {
                    self.emit(
                        SRule::S3OverwriteBeforeLogFence,
                        line,
                        format!(
                            "in-place store to `{target}` before the undo log is appended and fenced"
                        ),
                    );
                }
                if self.facts.has_begin && st.begins.is_empty() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        format!(
                            "store to `{target}` outside any open region (no checksum covers it)"
                        ),
                    );
                }
                if self.context == FnContext::Recovery {
                    if let Some(ml) = st.marker_line {
                        self.emit(
                            SRule::S4MarkerBeforeRepairFence,
                            ml,
                            format!(
                                "recovery marker published before the repair store to `{target}` at line {line}"
                            ),
                        );
                    }
                }
                if let Some(pl) = st.parity_line {
                    self.emit(
                        SRule::S7ParityBeforeData,
                        pl,
                        format!(
                            "parity line published before the protected store to `{target}` at line {line} it summarizes"
                        ),
                    );
                }
                st.unfenced.remove(&target);
                st.unflushed.entry(target.clone()).or_insert(line);
                st.unfolded.entry(target.clone()).or_insert(line);
                st.kill_flushed(&target);
                st.fence_clean = None;
            }
            Kind::RegionStore => {
                if self.facts.has_begin && st.begins.is_empty() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        "scheme store outside any open region (begin/commit do not cover it)"
                            .to_string(),
                    );
                }
                if let Some(pl) = st.parity_line {
                    self.emit(
                        SRule::S7ParityBeforeData,
                        pl,
                        format!("parity line published before the scheme store at line {line}"),
                    );
                }
                // Scheme-managed store to an array we cannot name.
                st.flushed.clear();
                st.fence_clean = None;
            }
            Kind::TablePublish | Kind::TablePersist => {
                match self.context {
                    FnContext::Recovery => {
                        self.check_publish(
                            SRule::S4MarkerBeforeRepairFence,
                            "recovery progress published to checksum table",
                            line,
                            st,
                        );
                    }
                    _ => {
                        if let Some((t, l)) = st.unfolded.iter().next() {
                            let n = st.unfolded.len();
                            self.emit(
                                SRule::S2PublishBeforeCover,
                                line,
                                format!(
                                    "checksum published while {n} store(s) were never folded into it (first: `{t}` at line {l})"
                                ),
                            );
                        }
                    }
                }
                st.fence_clean = None;
            }
            Kind::MarkerPublish => {
                match self.context {
                    FnContext::Recovery => {
                        self.check_publish(
                            SRule::S4MarkerBeforeRepairFence,
                            "recovery marker stored",
                            line,
                            st,
                        );
                        if st.marker_line.is_none() {
                            st.marker_line = Some(line);
                        }
                    }
                    _ => {
                        self.check_publish(
                            SRule::S1StoreNotCovered,
                            "progress marker stored",
                            line,
                            st,
                        );
                    }
                }
                st.flushed.retain(|_, f| !self.cfg.is_marker(&f.base));
                st.fence_clean = None;
            }
            Kind::StatusPublish => {
                if self.context == FnContext::Recovery {
                    self.check_publish(
                        SRule::S4MarkerBeforeRepairFence,
                        "WAL status/marker line stored in recovery",
                        line,
                        st,
                    );
                }
                st.flushed
                    .retain(|_, f| !self.cfg.is_log_header(&f.base, self.is_wal_file));
                st.fence_clean = None;
            }
            Kind::LogAppend => {
                st.appends = st.appends.saturating_add(1).min(8);
                st.flushed
                    .retain(|_, f| !self.cfg.is_log(&f.base, self.is_wal_file));
                st.fence_clean = None;
            }
            Kind::ParityPublish => {
                if self.context == FnContext::Recovery {
                    // Recovery re-publish: the parity vouches for the
                    // repaired lines, so they must be flushed and fenced
                    // first (the recovery half of dynamic R8).
                    self.check_publish(
                        SRule::S7ParityBeforeData,
                        "parity line published in recovery",
                        line,
                        st,
                    );
                } else if st.parity_line.is_none() {
                    st.parity_line = Some(line);
                }
                st.flushed.retain(|_, f| !self.cfg.is_parity(&f.base));
                st.fence_clean = None;
            }
            Kind::Flush(target) => {
                let (key, range) = flush_key(call);
                let base = target.clone().unwrap_or_default();
                if !range && !base.is_empty() {
                    if let Some(prev) = st.flushed.values().find(|f| f.range && f.base == base) {
                        self.emit(
                            SRule::W3ShadowedFlush,
                            line,
                            format!(
                                "element flush of `{base}` already covered by the range flush at line {}",
                                prev.line
                            ),
                        );
                    }
                }
                if let Some(prev) = st.flushed.get(&key) {
                    let what = if base.is_empty() {
                        "this line"
                    } else {
                        base.as_str()
                    };
                    self.emit(
                        SRule::W1RedundantFlush,
                        line,
                        format!(
                            "`{what}` flushed again with no intervening store on any path (already clean since the flush at line {})",
                            prev.line
                        ),
                    );
                } else {
                    st.flushed.insert(key, FlushFact { line, base, range });
                }
                match target {
                    Some(t) => {
                        if let Some(l) = st.unflushed.remove(&t) {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                    None => {
                        let moved: Vec<(String, u32)> =
                            std::mem::take(&mut st.unflushed).into_iter().collect();
                        for (t, l) in moved {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                }
                st.fence_clean = None;
            }
            Kind::Fence => {
                if let Some(prev) = st.fence_clean {
                    self.emit(
                        SRule::W2RedundantFence,
                        line,
                        format!(
                            "no store or flush can reach this fence on any path since the fence at line {prev}"
                        ),
                    );
                }
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
                st.fence_clean = Some(line);
            }
            Kind::Barrier => {
                st.unflushed.clear();
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
                st.fence_clean = Some(line);
            }
            Kind::Fold => st.unfolded.clear(),
            Kind::RegionBegin => {
                st.begins.push(line);
                st.unfolded.clear();
                st.parity_line = None;
                st.fence_clean = None;
            }
            Kind::RegionEnd => {
                if st.begins.pop().is_none() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        "region commit/abort without a matching begin on this path".to_string(),
                    );
                }
                if self.context == FnContext::Forward && self.facts.has_fold {
                    if let Some((t, l)) = st.unfolded.iter().next() {
                        let n = st.unfolded.len();
                        self.emit(
                            SRule::S6UncoveredData,
                            line,
                            format!(
                                "region committed while {n} persisted store(s) were never folded into a checksum (first: `{t}` at line {l})"
                            ),
                        );
                    }
                }
                st.unfolded.clear();
                st.parity_line = None;
                st.fence_clean = None;
            }
            Kind::DurableStore => {
                let a0 = self.cfg.strip_accessors(&call.arg0).to_string();
                let a1 = self.cfg.strip_accessors(&call.arg1).to_string();
                st.flushed
                    .retain(|_, f| !f.base.is_empty() && f.base != a0 && f.base != a1);
                st.fence_clean = Some(line);
            }
            Kind::PersistRange(target) => {
                let (key, range) = flush_key(call);
                let base = target.clone().unwrap_or_default();
                if let Some(prev) = st.flushed.get(&key) {
                    let what = if base.is_empty() {
                        "this range"
                    } else {
                        base.as_str()
                    };
                    self.emit(
                        SRule::W1RedundantFlush,
                        line,
                        format!(
                            "`{what}` flushed again with no intervening store on any path (already clean since the flush at line {})",
                            prev.line
                        ),
                    );
                } else {
                    st.flushed.insert(key, FlushFact { line, base, range });
                }
                match target {
                    Some(t) => {
                        if let Some(l) = st.unflushed.remove(&t) {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                    None => {
                        let moved: Vec<(String, u32)> =
                            std::mem::take(&mut st.unflushed).into_iter().collect();
                        for (t, l) in moved {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                }
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
                st.fence_clean = Some(line);
            }
            Kind::Other => {
                if let Some(s) = self.resolve(call) {
                    if s.does_store {
                        st.flushed.clear();
                        st.fence_clean = None;
                    }
                    for (t, _) in &s.residual_unflushed {
                        st.unfenced.remove(t);
                        st.unflushed.entry(t.clone()).or_insert(line);
                    }
                    for (t, _) in &s.residual_unfenced {
                        if !st.unflushed.contains_key(t) {
                            st.unfenced.entry(t.clone()).or_insert(line);
                        }
                    }
                } else {
                    // Unknown call: it may store through any argument.
                    let a0 = self.cfg.strip_accessors(&call.arg0).to_string();
                    let a1 = self.cfg.strip_accessors(&call.arg1).to_string();
                    st.flushed
                        .retain(|_, f| !f.base.is_empty() && f.base != a0 && f.base != a1);
                    st.fence_clean = None;
                }
            }
        }
    }

    /// Phase 1: worklist fixpoint over the CFG. Returns converged
    /// block-entry and block-exit states (`None` = unreachable).
    #[allow(clippy::type_complexity)]
    fn solve(&mut self, g: &Cfg) -> (Vec<Option<AbsState>>, Vec<Option<AbsState>>) {
        let n = g.blocks.len();
        let mut ins: Vec<Option<AbsState>> = vec![None; n];
        let mut outs: Vec<Option<AbsState>> = vec![None; n];
        let mut queued = vec![false; n];
        let mut work: VecDeque<usize> = VecDeque::new();
        work.push_back(g.entry);
        queued[g.entry] = true;
        let mut steps = 0usize;
        while let Some(b) = work.pop_front() {
            queued[b] = false;
            steps += 1;
            if steps > 64 * (n + 1) {
                break; // safety valve; the lattice is height-bounded
            }
            let span = g.blocks[b].loop_head.as_ref().map(|h| h.span);
            let mut acc: Option<AbsState> = (b == g.entry).then(AbsState::default);
            for &p in &g.blocks[b].preds {
                let Some(po) = &outs[p] else { continue };
                let mut contrib = po.clone();
                if g.is_back_edge(p, b) {
                    if let Some(span) = span {
                        widen(&mut contrib, span);
                    }
                    // A loop that changes region depth would grow `begins`
                    // forever; pin it to the head's depth and report the
                    // imbalance in the emission pass.
                    if let Some(a) = &acc {
                        if contrib.begins.len() != a.begins.len() {
                            contrib.begins = a.begins.clone();
                        }
                    }
                }
                acc = Some(match acc {
                    None => contrib,
                    Some(a) => join(a, &contrib),
                });
            }
            let Some(inb) = acc else { continue };
            if ins[b].as_ref() == Some(&inb) && outs[b].is_some() {
                continue;
            }
            let mut st = inb.clone();
            for c in &g.blocks[b].stmts {
                self.apply(c, &mut st);
            }
            ins[b] = Some(inb);
            let changed = outs[b].as_ref() != Some(&st);
            outs[b] = Some(st);
            if changed {
                for &s in &g.blocks[b].succs {
                    if !queued[s] {
                        queued[s] = true;
                        work.push_back(s);
                    }
                }
            }
        }
        (ins, outs)
    }

    /// Phase 2: emission over the converged states, plus the structural
    /// S5 checks (branch-join imbalance, loop-head imbalance, open region
    /// at exit).
    fn run(&mut self, f: &FnItem) {
        let g = Cfg::build(&f.body);
        self.emit_on = false;
        let (ins, outs) = self.solve(&g);
        self.emit_on = true;
        for (b, blk) in g.blocks.iter().enumerate() {
            if b == g.dexit {
                continue; // early-exit paths are not checked at their sink
            }
            // Branch-join imbalance: forward preds disagree on depth.
            let fwd: Vec<&AbsState> = blk
                .preds
                .iter()
                .filter(|&&p| !g.is_back_edge(p, b))
                .filter_map(|&p| outs[p].as_ref())
                .collect();
            if fwd.len() >= 2 {
                let d0 = fwd[0].begins.len();
                if fwd.iter().any(|s| s.begins.len() != d0) {
                    let deepest = fwd.iter().max_by_key(|s| s.begins.len()).unwrap();
                    let line = *deepest.begins.last().unwrap_or(&0);
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        "region begin/commit balance differs across branch arms".to_string(),
                    );
                }
            }
            // Loop-head imbalance: the body changes region depth.
            if let Some(h) = &blk.loop_head {
                for &bp in &h.back_preds {
                    if let (Some(ib), Some(ob)) = (&ins[b], &outs[bp]) {
                        if ob.begins.len() != ib.begins.len() {
                            let line = *ob.begins.last().or(ib.begins.last()).unwrap_or(&0);
                            self.emit(
                                SRule::S5UnbalancedRegion,
                                line,
                                "loop body changes region begin/commit balance across iterations"
                                    .to_string(),
                            );
                        }
                    }
                }
            }
            let Some(inb) = &ins[b] else { continue };
            let mut st = inb.clone();
            for c in &g.blocks[b].stmts {
                self.apply(c, &mut st);
            }
        }
        if let Some(out) = &outs[g.exit] {
            if let Some(line) = out.begins.last() {
                self.emit(
                    SRule::S5UnbalancedRegion,
                    *line,
                    "region opened here is not committed/aborted on every path".to_string(),
                );
            }
        }
        self.w4_pass(&f.body);
    }

    // ---- W4: missed coalescing (syntactic loop pass) ----

    fn w4_pass(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Loop { body, .. } => {
                    self.w4_elementwise(body);
                    self.w4_barrier(body);
                    self.w4_pass(body);
                }
                Node::Branch(arms) => {
                    for a in arms {
                        self.w4_pass(&a.body);
                    }
                }
                _ => {}
            }
        }
    }

    /// Form (a): two or more distinct per-element flushes of the same
    /// array inside one loop iteration, with no fence/range reset between
    /// them — a single `flush_range` would cover them.
    fn w4_elementwise(&mut self, body: &[Node]) {
        // base → (distinct flush keys, first flush line)
        let mut seg: BTreeMap<String, (Vec<String>, u32)> = BTreeMap::new();
        let close = |seg: &mut BTreeMap<String, (Vec<String>, u32)>,
                     out: &mut Vec<(String, usize, u32)>| {
            for (base, (keys, line)) in seg.iter() {
                if keys.len() >= 2 {
                    out.push((base.clone(), keys.len(), *line));
                }
            }
            seg.clear();
        };
        let mut hits: Vec<(String, usize, u32)> = Vec::new();
        for n in body {
            match n {
                Node::Call(c) => match classify(c, self.cfg, self.is_wal_file) {
                    Kind::Flush(Some(base)) => {
                        let (key, range) = flush_key(c);
                        if range {
                            close(&mut seg, &mut hits);
                        } else {
                            let e = seg.entry(base).or_insert_with(|| (Vec::new(), c.line));
                            if !e.0.contains(&key) {
                                e.0.push(key);
                            }
                        }
                    }
                    Kind::Fence
                    | Kind::Barrier
                    | Kind::Flush(None)
                    | Kind::PersistRange(_)
                    | Kind::RegionEnd => close(&mut seg, &mut hits),
                    _ => {}
                },
                // Control flow inside the iteration resets the window.
                Node::Branch(_) | Node::Loop { .. } | Node::Diverge => close(&mut seg, &mut hits),
            }
        }
        close(&mut seg, &mut hits);
        for (base, count, line) in hits {
            self.emit(
                SRule::W4MissedCoalescing,
                line,
                format!(
                    "loop body flushes {count} elements of `{base}` individually; a single flush_range would cover them"
                ),
            );
        }
    }

    /// Form (b): a per-iteration commit barrier that publishes nothing —
    /// the flush+fence can be hoisted out of the loop. Only fires when the
    /// barrier resolves to a summarized non-publishing function, so
    /// forward kernel loops (whose commit ends the region) and recovery
    /// sinks (which publish the table) stay exempt.
    fn w4_barrier(&mut self, body: &[Node]) {
        let mut stores = false;
        let mut publishes = false;
        let mut barrier: Option<(u32, String)> = None;
        self.w4_scan(body, &mut stores, &mut publishes, &mut barrier);
        if stores && !publishes {
            if let Some((line, what)) = barrier {
                self.emit(
                    SRule::W4MissedCoalescing,
                    line,
                    format!(
                        "per-iteration `{what}` flushes and fences but publishes nothing; hoist the commit out of the loop"
                    ),
                );
            }
        }
    }

    fn w4_scan(
        &self,
        nodes: &[Node],
        stores: &mut bool,
        publishes: &mut bool,
        barrier: &mut Option<(u32, String)>,
    ) {
        for n in nodes {
            match n {
                Node::Call(c) => match classify(c, self.cfg, self.is_wal_file) {
                    Kind::DataStore(_) | Kind::RegionStore | Kind::DurableStore => *stores = true,
                    Kind::TablePublish
                    | Kind::TablePersist
                    | Kind::MarkerPublish
                    | Kind::StatusPublish
                    | Kind::ParityPublish
                    | Kind::LogAppend
                    | Kind::RegionBegin
                    | Kind::RegionEnd => *publishes = true,
                    Kind::Barrier => match self.resolve(c) {
                        Some(s) if !s.publishes => {
                            let what = if c.receiver.is_empty() {
                                format!("{}()", c.name)
                            } else {
                                format!("{}.{}()", c.receiver, c.name)
                            };
                            barrier.get_or_insert((c.line, what));
                        }
                        Some(_) => *publishes = true,
                        None => {}
                    },
                    Kind::Other => {
                        if let Some(s) = self.resolve(c) {
                            if s.does_store {
                                *stores = true;
                            }
                            if s.publishes {
                                *publishes = true;
                            }
                        }
                    }
                    _ => {}
                },
                Node::Branch(arms) => {
                    for a in arms {
                        self.w4_scan(&a.body, stores, publishes, barrier);
                    }
                }
                // Nested loops get their own w4_barrier check.
                Node::Loop { .. } | Node::Diverge => {}
            }
        }
    }
}

/// Analyze a parsed file against a (possibly cross-file) summary table.
/// `file_label` is the path used in findings.
pub(crate) fn analyze_parsed(
    parsed: &ParsedFile,
    file_label: &str,
    cfg: &LintConfig,
    summaries: &Summaries,
) -> LintReport {
    let mut findings = Vec::new();
    for f in &parsed.fns {
        if f.context == FnContext::Ignore {
            continue;
        }
        let mut facts = FnFacts::default();
        gather_facts(&f.body, cfg, parsed.is_wal, &mut facts);
        let mut ev = Eval {
            cfg,
            file: file_label,
            function: &f.name,
            context: f.context,
            is_wal_file: parsed.is_wal,
            facts,
            impl_ty: f.name.split_once("::").map(|(t, _)| t.to_string()),
            bindings: &f.bindings,
            summaries,
            emit_on: false,
            findings: &mut findings,
        };
        ev.run(f);
    }
    // `lp-lint: allow(Sx)` on the finding's line or the line above
    // suppresses it.
    findings.retain(|f| {
        !parsed.directives.iter().any(|(line, d)| {
            matches!(d, Directive::Allow(rules)
                if (*line == f.line || line + 1 == f.line)
                    && rules.iter().any(|r| SRule::from_id(r) == Some(f.rule)))
        })
    });
    let mut report = LintReport {
        files: vec![file_label.to_string()],
        functions: parsed.fns.len(),
        findings,
    };
    report.sort();
    report
}

/// Analyze one source file. `file_label` is the path used in findings;
/// `file_stem` drives WAL-context inference. Summaries are built from the
/// file itself; for cross-file summaries use [`crate::lint_paths`].
pub fn analyze_source(
    src: &str,
    file_label: &str,
    file_stem: &str,
    cfg: &LintConfig,
) -> LintReport {
    let parsed = parse_file(src, file_stem, cfg);
    let summaries = summarize_file(&parsed, cfg);
    analyze_parsed(&parsed, file_label, cfg, &summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> LintReport {
        analyze_source(src, "mem.rs", "mem", &LintConfig::default())
    }

    fn lint_wal(src: &str) -> LintReport {
        analyze_source(src, "wal.rs", "wal", &LintConfig::default())
    }

    #[test]
    fn clean_eager_pattern_has_no_findings() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for i in 0..n {\n\
                 ctx.store(self.buf, i, v);\n\
                 ctx.clflushopt(self.buf.addr(i));\n\
               }\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn marker_before_fence_is_s1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.store(self.markers, tid, 1);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn marker_with_unflushed_store_is_s1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
    }

    #[test]
    fn lazy_region_without_flushes_is_clean() {
        // The LP idiom: plain stores, fold into ck, publish the table.
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.ck.update(v.to_bits64());\n\
               self.table.store(ctx, key, self.ck.value());\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unfolded_store_before_table_publish_is_s2() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.table.store(ctx, key, self.ck.value());\n\
             }",
        );
        assert!(r.flags(SRule::S2PublishBeforeCover), "{r}");
    }

    #[test]
    fn wal_store_before_log_fence_is_s3() {
        let r = lint_wal(
            "fn commit(ctx: &mut C) {\n\
               ctx.store(self.data, 0, v);\n\
               ctx.store(arena.entries, 0, old);\n\
               ctx.clflushopt(arena.entries.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S3OverwriteBeforeLogFence), "{r}");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn wal_figure2_order_is_clean() {
        let r = lint_wal(
            "fn commit(ctx: &mut C) {\n\
               ctx.store(arena.entries, 0, old);\n\
               ctx.clflushopt(arena.entries.addr(0));\n\
               ctx.store(arena.header, 1, n);\n\
               ctx.clflushopt(arena.header.addr(1));\n\
               ctx.sfence();\n\
               ctx.store(arena.header, 0, 1);\n\
               ctx.clflushopt(arena.header.addr(0));\n\
               ctx.sfence();\n\
               ctx.store_addr(addr, bits);\n\
               ctx.clflushopt(addr);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_marker_before_repair_fence_is_s4() {
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.store(self.markers, tid, 1);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
    }

    #[test]
    fn recovery_fenced_repairs_then_marker_is_clean() {
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn store_outside_region_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               tp.store(ctx, &mut rs, arr, 0, v);\n\
               let mut rs = tp.begin(ctx, 0);\n\
               tp.store(ctx, &mut rs, arr, 1, v);\n\
               tp.commit(ctx, rs);\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn uncommitted_region_on_some_path_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               let mut rs = tp.begin(ctx, 0);\n\
               if cond {\n\
                 tp.commit(ctx, rs);\n\
               }\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
    }

    #[test]
    fn balanced_region_loop_is_clean() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for k in 0..n {\n\
                 let mut rs = tp.begin(ctx, k);\n\
                 tp.store(ctx, &mut rs, arr, k, v);\n\
                 tp.commit(ctx, rs);\n\
               }\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn branch_with_pending_store_on_one_arm_flags_at_publish() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               if cond {\n\
                 ctx.store(self.buf, 0, v);\n\
               } else {\n\
                 ctx.store(self.buf, 1, v);\n\
                 ctx.clflushopt(self.buf.addr(1));\n\
                 ctx.sfence();\n\
               }\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
        assert_eq!(r.findings[0].line, 9);
    }

    #[test]
    fn barrier_discharges_obligations() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               committer.commit(ctx);\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn persist_helpers_discharge() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               persist_store(ctx, self.markers, tid, 1);\n\
               ctx.store(self.buf, 0, v);\n\
               persist_range(ctx, self.buf, 0, n);\n\
               ctx.store(self.markers, tid, 2);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               // lp-lint: allow(S1) intentional: covered by caller\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn diverged_arm_does_not_pollute_merge() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               if cond {\n\
                 ctx.store(self.buf, 0, v);\n\
                 return;\n\
               }\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_repair_after_marker_is_s4() {
        // Static twin of fmut:marker_first_recovery: the marker is durably
        // published first, then the data it vouches for is repaired.
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.markers, 0, key + 1);\n\
               ctx.clflushopt(self.markers.addr(0));\n\
               ctx.sfence();\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
        assert_eq!(r.findings[0].line, 2, "{r}");
    }

    #[test]
    fn raw_store_outside_region_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(arr, 0, v);\n\
               ctx.region_begin(key);\n\
               ctx.store(arr, 8, v);\n\
               self.ck.update(v);\n\
               self.table.store(ctx, key, self.ck.value());\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
        assert_eq!(r.findings[0].line, 2, "{r}");
    }

    #[test]
    fn restore_fn_context_is_recovery_by_name() {
        let r = lint(
            "fn restore_block(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.table.store(ctx, key, ck);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
    }

    #[test]
    fn parity_published_before_data_is_s7() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.region_begin(key);\n\
               ctx.store(a, 0, v);\n\
               self.ck.update(v);\n\
               self.parity.store_lanes(ctx, key, &lanes);\n\
               ctx.store(a, 8, w);\n\
               self.ck.update(w);\n\
               self.table.store(ctx, key, self.ck.value());\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.flags(SRule::S7ParityBeforeData), "{r}");
        assert_eq!(r.of_rule(SRule::S7ParityBeforeData)[0].line, 5, "{r}");
    }

    #[test]
    fn parity_published_last_is_clean() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.region_begin(key);\n\
               ctx.store(a, 0, v);\n\
               self.ck.update(v);\n\
               self.table.store(ctx, key, self.ck.value());\n\
               self.parity.store_lanes(ctx, key, &lanes);\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_parity_with_unfenced_repair_is_s7() {
        let r = lint(
            "fn repair_region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.parity.store_lanes(ctx, key, &lanes);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S7ParityBeforeData), "{r}");
        assert_eq!(r.of_rule(SRule::S7ParityBeforeData)[0].line, 3, "{r}");
    }

    #[test]
    fn recovery_parity_after_fenced_repair_is_clean() {
        let r = lint(
            "fn repair_region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               self.parity.store_lanes(ctx, key, &lanes);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    // ---- W1–W4 / S6: write-efficiency and coverage rules ----

    #[test]
    fn same_line_flushed_twice_is_w1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::W1RedundantFlush), "{r}");
        assert_eq!(r.of_rule(SRule::W1RedundantFlush)[0].line, 4);
    }

    #[test]
    fn intervening_store_kills_w1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.store(self.buf, 0, w);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn flush_on_one_branch_arm_only_is_not_w1() {
        // Must-analysis: the re-flush is only redundant on one path.
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               if cond {\n\
                 ctx.clflushopt(self.buf.addr(0));\n\
               }\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn widening_drops_loop_born_flush_facts() {
        // The loop flushes `a.addr(i)` each iteration with a fresh `i`;
        // neither the next iteration nor the post-loop flush of the same
        // *text* is provably redundant.
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for i in 0..n {\n\
                 ctx.store(a, i, v);\n\
                 ctx.clflushopt(a.addr(i));\n\
               }\n\
               ctx.clflushopt(a.addr(i));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(!r.flags(SRule::W1RedundantFlush), "{r}");
    }

    #[test]
    fn back_to_back_fences_is_w2() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::W2RedundantFence), "{r}");
        assert_eq!(r.of_rule(SRule::W2RedundantFence)[0].line, 5);
    }

    #[test]
    fn fence_after_flush_is_not_w2() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.sfence();\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(!r.flags(SRule::W2RedundantFence), "{r}");
    }

    #[test]
    fn element_flush_under_range_flush_is_w3() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.flush_range(self.buf, 0, n);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::W3ShadowedFlush), "{r}");
        assert_eq!(r.of_rule(SRule::W3ShadowedFlush)[0].line, 4);
    }

    #[test]
    fn unrolled_element_flushes_in_loop_is_w4() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for i in 0..n {\n\
                 ctx.store(a, i, v);\n\
                 ctx.store(a, i + 1, v);\n\
                 ctx.clflushopt(a.addr(i));\n\
                 ctx.clflushopt(a.addr(i + 1));\n\
               }\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::W4MissedCoalescing), "{r}");
    }

    #[test]
    fn single_flush_per_iteration_is_not_w4() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for i in 0..n {\n\
                 ctx.store(a, i, v);\n\
                 ctx.clflushopt(a.addr(i));\n\
               }\n\
               ctx.sfence();\n\
             }",
        );
        assert!(!r.flags(SRule::W4MissedCoalescing), "{r}");
    }

    #[test]
    fn per_iteration_barrier_without_publish_is_w4() {
        let r = lint(
            "impl Sink2 {\n\
               fn commit(&mut self, ctx: &mut C) {\n\
                 committer.commit(ctx);\n\
               }\n\
             }\n\
             fn replay_strips(ctx: &mut C) {\n\
               for kb in 0..n {\n\
                 let mut s2 = Sink2::default();\n\
                 ctx.store(a, kb, v);\n\
                 s2.commit(ctx);\n\
               }\n\
             }",
        );
        assert!(r.flags(SRule::W4MissedCoalescing), "{r}");
    }

    #[test]
    fn per_iteration_region_commit_is_not_w4() {
        // Forward kernel loops end each iteration's *region*; that commit
        // publishes (tp.commit → RegionEnd) and must not be hoisted.
        let r = lint(
            "impl Sink3 {\n\
               fn commit(&mut self, ctx: &mut C) {\n\
                 self.tp.commit(ctx, rs);\n\
               }\n\
             }\n\
             fn run(ctx: &mut C) {\n\
               for k in 0..n {\n\
                 let mut s3 = Sink3::default();\n\
                 ctx.store(a, k, v);\n\
                 s3.commit(ctx);\n\
               }\n\
             }",
        );
        assert!(!r.flags(SRule::W4MissedCoalescing), "{r}");
    }

    #[test]
    fn unfolded_store_at_region_end_is_s6() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.region_begin(key);\n\
               ctx.store(a, 0, v);\n\
               self.ck.update(v);\n\
               ctx.store(a, 8, w);\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.flags(SRule::S6UncoveredData), "{r}");
        assert_eq!(r.of_rule(SRule::S6UncoveredData)[0].line, 6);
    }

    #[test]
    fn fully_folded_region_is_not_s6() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.region_begin(key);\n\
               ctx.store(a, 0, v);\n\
               self.ck.update(v);\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    // ---- interprocedural summaries ----

    #[test]
    fn summary_carries_unflushed_store_through_helper() {
        let r = lint(
            "fn fill(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
             }\n\
             fn run(ctx: &mut C) {\n\
               fill(ctx);\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
        assert_eq!(r.of_rule(SRule::S1StoreNotCovered)[0].line, 6, "{r}");
    }

    #[test]
    fn pure_helper_preserves_must_facts() {
        // A summarized helper that touches nothing must not break the
        // fence-cleanliness chain the way an unknown call does.
        let r = lint(
            "fn noop(ctx: &mut C) {\n\
             }\n\
             fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               noop(ctx);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::W2RedundantFence), "{r}");
    }

    #[test]
    fn unknown_call_breaks_must_facts() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               mystery(ctx);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(!r.flags(SRule::W2RedundantFence), "{r}");
    }

    #[test]
    fn storing_helper_kills_flush_facts() {
        let r = lint(
            "fn scribble(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }\n\
             fn run(ctx: &mut C) {\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               scribble(ctx);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(!r.flags(SRule::W1RedundantFlush), "{r}");
    }
}

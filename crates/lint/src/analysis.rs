//! The persist-order abstract interpreter.
//!
//! Each function body is evaluated over an abstract state tracking
//! pending durability obligations: stores not yet flushed, flushed but
//! not yet fenced, and not yet folded into a running checksum, plus WAL
//! append/fence ordering and region begin/commit balance. Branches are
//! evaluated per-arm and joined by *union* of pending obligations (a
//! store pending on any path is pending at the merge), which is the
//! dominator/post-dominator approximation of rules S1–S4 (see DESIGN.md
//! §5e). Rules fire at publish points (checksum-table stores, marker
//! stores, WAL overwrites) — not at every store — so Lazy Persistency
//! regions, whose stores are *intentionally* never flushed, lint clean.

use std::collections::BTreeMap;

use crate::config::{FnContext, LintConfig};
use crate::lexer::Directive;
use crate::parser::{parse_file, FnItem, Node, RawCall};
use crate::report::{LintFinding, LintReport, SRule};

/// Classified persistency-API call.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    /// Raw persistent data store: creates flush/fence/fold obligations.
    DataStore(String),
    /// Scheme-managed store (`tp.store`, `sink.store`): durability is the
    /// scheme's job, but the call must sit inside a region (S5).
    RegionStore,
    /// Lazy checksum-table publish (`table.store`).
    TablePublish,
    /// Eager checksum-table publish (`table.persist`).
    TablePersist,
    /// Durable progress-marker store.
    MarkerPublish,
    /// WAL undo-log append (`entries` store, `log_and_stage`).
    LogAppend,
    /// WAL arena header store (status/count/marker line).
    StatusPublish,
    /// Flush of one target (`clflushopt`, `flush_range`, `flush_rows`),
    /// or of everything when the target could not be resolved.
    Flush(Option<String>),
    /// Store fence.
    Fence,
    /// Flush-everything-and-fence (`committer.commit`, `sink.commit`,
    /// `tx.commit`).
    Barrier,
    /// Fold into a running checksum (`ck.update`).
    Fold,
    /// Region open.
    RegionBegin,
    /// Region close (`tp.commit` / `tp.abort`).
    RegionEnd,
    /// Already-durable helper (`persist_store`: store+flush+fence).
    DurableStore,
    /// `persist_range(ctx, arr, ..)`: flush target + fence.
    PersistRange(Option<String>),
    /// Anything else.
    Other,
}

/// Classify a call site using the name-allowlist config.
fn classify(call: &RawCall, cfg: &LintConfig, is_wal_file: bool) -> Kind {
    let recv = call.receiver.as_str();
    let recv_is_ctx = recv.is_empty() || recv.rsplit('.').next() == Some("ctx");
    // Target of a store/flush: explicit argument for ctx methods, the
    // receiver itself for container methods (`m.store(ctx, ..)`).
    let arg_target = |arg: &str| -> String {
        let t = cfg.strip_accessors(arg);
        if t.rsplit('.').next() == Some("ctx") {
            String::new()
        } else {
            t.to_string()
        }
    };
    match call.name.as_str() {
        "store" => {
            if cfg.is_region_receiver(recv) || cfg.is_sink_receiver(recv) {
                return Kind::RegionStore;
            }
            if cfg.is_table(recv) {
                return Kind::TablePublish;
            }
            let target = if recv_is_ctx {
                arg_target(&call.arg0)
            } else {
                arg_target(recv)
            };
            if cfg.is_table(&target) {
                Kind::TablePublish
            } else if cfg.is_marker(&target) {
                Kind::MarkerPublish
            } else if cfg.is_log(&target, is_wal_file) {
                Kind::LogAppend
            } else if cfg.is_log_header(&target, is_wal_file) {
                Kind::StatusPublish
            } else if target.is_empty() {
                Kind::DataStore("<expr>".into())
            } else {
                Kind::DataStore(target)
            }
        }
        "store_addr" => {
            let target = arg_target(&call.arg0);
            if cfg.is_log(&target, is_wal_file) {
                Kind::LogAppend
            } else if target.is_empty() {
                Kind::DataStore("<expr>".into())
            } else {
                Kind::DataStore(target)
            }
        }
        "log_and_stage" => Kind::LogAppend,
        "clflushopt" | "clwb" | "flush_range" => {
            let t = arg_target(&call.arg0);
            Kind::Flush((!t.is_empty()).then_some(t))
        }
        "flush_rows" | "flush_all" => {
            // Container method: the receiver is the flushed array.
            let t = arg_target(recv);
            Kind::Flush((!t.is_empty()).then_some(t))
        }
        "sfence" => Kind::Fence,
        "persist_store" => Kind::DurableStore,
        "persist_range" => {
            let t = arg_target(&call.arg1);
            Kind::PersistRange((!t.is_empty()).then_some(t))
        }
        "persist" if cfg.is_table(recv) => Kind::TablePersist,
        "update" if cfg.is_fold_receiver(recv) => Kind::Fold,
        "begin" if cfg.is_region_receiver(recv) => Kind::RegionBegin,
        "region_begin" => Kind::RegionBegin,
        "commit" | "abort" if cfg.is_region_receiver(recv) => Kind::RegionEnd,
        "region_commit" | "region_end" => Kind::RegionEnd,
        "commit" => Kind::Barrier,
        _ => Kind::Other,
    }
}

/// Pending-obligation state at one program point.
#[derive(Debug, Clone, Default)]
struct AbsState {
    /// Open region nesting depth with the begin lines.
    begins: Vec<u32>,
    /// Stored but not yet flushed: target → first store line.
    unflushed: BTreeMap<String, u32>,
    /// Flushed but not yet fenced: target → first store line.
    unfenced: BTreeMap<String, u32>,
    /// Stored but not yet folded into a checksum: target → line.
    unfolded: BTreeMap<String, u32>,
    /// WAL appends seen on this path.
    appends: u32,
    /// Some append has been covered by a fence on this path.
    log_fenced: bool,
    /// Line of a recovery progress-marker publish on this path (S4:
    /// repairs must precede it, so a later repair store is a violation).
    marker_line: Option<u32>,
    /// The path ended (`return`/`break`/`continue`/`panic!`).
    diverged: bool,
}

impl AbsState {
    fn pending_durability(&self) -> Vec<(&String, &u32, &'static str)> {
        let mut v: Vec<_> = self
            .unflushed
            .iter()
            .map(|(t, l)| (t, l, "unflushed"))
            .collect();
        v.extend(self.unfenced.iter().map(|(t, l)| (t, l, "unfenced")));
        v.sort_by_key(|(_, l, _)| **l);
        v
    }
}

/// Union-join two states at a merge point. A mismatch in region depth is
/// an S5 violation recorded by the caller.
fn join(mut a: AbsState, b: &AbsState) -> AbsState {
    for (t, l) in &b.unflushed {
        let e = a.unflushed.entry(t.clone()).or_insert(*l);
        *e = (*e).min(*l);
    }
    for (t, l) in &b.unfenced {
        // A target unflushed on one path and unfenced on the other is
        // kept at the stronger (unflushed) obligation.
        if !a.unflushed.contains_key(t) {
            let e = a.unfenced.entry(t.clone()).or_insert(*l);
            *e = (*e).min(*l);
        }
    }
    for (t, l) in &b.unfolded {
        let e = a.unfolded.entry(t.clone()).or_insert(*l);
        *e = (*e).min(*l);
    }
    a.appends = a.appends.max(b.appends);
    a.log_fenced = a.log_fenced && b.log_fenced;
    a.marker_line = match (a.marker_line, b.marker_line) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    };
    if b.begins.len() > a.begins.len() {
        a.begins = b.begins.clone();
    }
    a
}

/// Per-function facts gathered in a prepass.
#[derive(Debug, Default, Clone, Copy)]
struct FnFacts {
    has_append: bool,
    has_begin: bool,
}

fn gather_facts(nodes: &[Node], cfg: &LintConfig, is_wal_file: bool, facts: &mut FnFacts) {
    for n in nodes {
        match n {
            Node::Call(c) => match classify(c, cfg, is_wal_file) {
                Kind::LogAppend => facts.has_append = true,
                Kind::RegionBegin => facts.has_begin = true,
                _ => {}
            },
            Node::Branch(arms) => {
                for a in arms {
                    gather_facts(a, cfg, is_wal_file, facts);
                }
            }
            Node::Loop(b) => gather_facts(b, cfg, is_wal_file, facts),
            Node::Diverge => {}
        }
    }
}

/// Evaluation harness for one function.
struct Eval<'a> {
    cfg: &'a LintConfig,
    file: &'a str,
    function: &'a str,
    context: FnContext,
    is_wal_file: bool,
    facts: FnFacts,
    findings: &'a mut Vec<LintFinding>,
}

impl Eval<'_> {
    fn emit(&mut self, rule: SRule, line: u32, detail: String) {
        self.findings.push(LintFinding {
            rule,
            file: self.file.to_string(),
            line,
            function: self.function.to_string(),
            detail,
        });
    }

    /// Report pending durability obligations at a publish point.
    fn check_publish(&mut self, rule: SRule, what: &str, line: u32, st: &AbsState) {
        let pending = st.pending_durability();
        if pending.is_empty() {
            return;
        }
        let list: Vec<String> = pending
            .iter()
            .take(3)
            .map(|(t, l, how)| format!("`{t}` stored at line {l} still {how}"))
            .collect();
        self.emit(
            rule,
            line,
            format!(
                "{what} while {} store(s) lack flush+sfence: {}",
                pending.len(),
                list.join("; ")
            ),
        );
    }

    fn apply(&mut self, call: &RawCall, st: &mut AbsState) {
        let kind = classify(call, self.cfg, self.is_wal_file);
        let line = call.line;
        match kind {
            Kind::DataStore(target) => {
                if self.facts.has_append && !st.log_fenced {
                    self.emit(
                        SRule::S3OverwriteBeforeLogFence,
                        line,
                        format!(
                            "in-place store to `{target}` before the undo log is appended and fenced"
                        ),
                    );
                }
                if self.facts.has_begin && st.begins.is_empty() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        format!(
                            "store to `{target}` outside any open region (no checksum covers it)"
                        ),
                    );
                }
                if self.context == FnContext::Recovery {
                    if let Some(ml) = st.marker_line {
                        self.emit(
                            SRule::S4MarkerBeforeRepairFence,
                            ml,
                            format!(
                                "recovery marker published before the repair store to `{target}` at line {line}"
                            ),
                        );
                    }
                }
                st.unfenced.remove(&target);
                st.unflushed.entry(target.clone()).or_insert(line);
                st.unfolded.entry(target).or_insert(line);
            }
            Kind::RegionStore => {
                if self.facts.has_begin && st.begins.is_empty() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        "scheme store outside any open region (begin/commit do not cover it)"
                            .to_string(),
                    );
                }
            }
            Kind::TablePublish | Kind::TablePersist => match self.context {
                FnContext::Recovery => {
                    self.check_publish(
                        SRule::S4MarkerBeforeRepairFence,
                        "recovery progress published to checksum table",
                        line,
                        st,
                    );
                }
                _ => {
                    if let Some((t, l)) = st.unfolded.iter().next() {
                        let n = st.unfolded.len();
                        self.emit(
                            SRule::S2PublishBeforeCover,
                            line,
                            format!(
                                "checksum published while {n} store(s) were never folded into it (first: `{t}` at line {l})"
                            ),
                        );
                    }
                }
            },
            Kind::MarkerPublish => match self.context {
                FnContext::Recovery => {
                    self.check_publish(
                        SRule::S4MarkerBeforeRepairFence,
                        "recovery marker stored",
                        line,
                        st,
                    );
                    if st.marker_line.is_none() {
                        st.marker_line = Some(line);
                    }
                }
                _ => {
                    self.check_publish(
                        SRule::S1StoreNotCovered,
                        "progress marker stored",
                        line,
                        st,
                    );
                }
            },
            Kind::StatusPublish => {
                if self.context == FnContext::Recovery {
                    self.check_publish(
                        SRule::S4MarkerBeforeRepairFence,
                        "WAL status/marker line stored in recovery",
                        line,
                        st,
                    );
                }
            }
            Kind::LogAppend => {
                st.appends += 1;
            }
            Kind::Flush(Some(target)) => {
                if let Some(l) = st.unflushed.remove(&target) {
                    st.unfenced.entry(target).or_insert(l);
                }
            }
            Kind::Flush(None) => {
                let moved: Vec<(String, u32)> =
                    std::mem::take(&mut st.unflushed).into_iter().collect();
                for (t, l) in moved {
                    st.unfenced.entry(t).or_insert(l);
                }
            }
            Kind::Fence => {
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
            }
            Kind::Barrier => {
                st.unflushed.clear();
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
            }
            Kind::Fold => st.unfolded.clear(),
            Kind::RegionBegin => st.begins.push(line),
            Kind::RegionEnd => {
                if st.begins.pop().is_none() {
                    self.emit(
                        SRule::S5UnbalancedRegion,
                        line,
                        "region commit/abort without a matching begin on this path".to_string(),
                    );
                }
            }
            Kind::DurableStore => {}
            Kind::PersistRange(target) => {
                match target {
                    Some(t) => {
                        if let Some(l) = st.unflushed.remove(&t) {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                    None => {
                        let moved: Vec<(String, u32)> =
                            std::mem::take(&mut st.unflushed).into_iter().collect();
                        for (t, l) in moved {
                            st.unfenced.entry(t).or_insert(l);
                        }
                    }
                }
                st.unfenced.clear();
                if st.appends > 0 {
                    st.log_fenced = true;
                }
            }
            Kind::Other => {}
        }
    }

    fn eval(&mut self, nodes: &[Node], mut st: AbsState) -> AbsState {
        for node in nodes {
            if st.diverged {
                break;
            }
            match node {
                Node::Call(c) => self.apply(c, &mut st),
                Node::Branch(arms) => {
                    let mut outs: Vec<AbsState> = Vec::new();
                    for arm in arms {
                        let out = self.eval(arm, st.clone());
                        if !out.diverged {
                            outs.push(out);
                        }
                    }
                    match outs.split_first() {
                        None => st.diverged = true,
                        Some((first, rest)) => {
                            let depth0 = first.begins.len();
                            let mut merged = first.clone();
                            for o in rest {
                                if o.begins.len() != depth0 {
                                    let line =
                                        *o.begins.last().or(merged.begins.last()).unwrap_or(&0);
                                    self.emit(
                                        SRule::S5UnbalancedRegion,
                                        line,
                                        "region begin/commit balance differs across branch arms"
                                            .to_string(),
                                    );
                                }
                                merged = join(merged, o);
                            }
                            st = merged;
                        }
                    }
                }
                Node::Loop(body) => {
                    let entry_depth = st.begins.len();
                    let out = self.eval(body, st.clone());
                    if !out.diverged {
                        if out.begins.len() != entry_depth {
                            let line = *out.begins.last().or(st.begins.last()).unwrap_or(&0);
                            self.emit(
                                SRule::S5UnbalancedRegion,
                                line,
                                "loop body changes region begin/commit balance across iterations"
                                    .to_string(),
                            );
                        }
                        st = join(st, &out);
                    }
                }
                Node::Diverge => st.diverged = true,
            }
        }
        st
    }

    fn run(&mut self, f: &FnItem) {
        let st = self.eval(&f.body, AbsState::default());
        if !st.diverged {
            if let Some(line) = st.begins.last() {
                self.emit(
                    SRule::S5UnbalancedRegion,
                    *line,
                    "region opened here is not committed/aborted on every path".to_string(),
                );
            }
        }
    }
}

/// Analyze one source file. `file_label` is the path used in findings;
/// `file_stem` drives WAL-context inference.
pub fn analyze_source(
    src: &str,
    file_label: &str,
    file_stem: &str,
    cfg: &LintConfig,
) -> LintReport {
    let parsed = parse_file(src, file_stem, cfg);
    let mut findings = Vec::new();
    for f in &parsed.fns {
        if f.context == FnContext::Ignore {
            continue;
        }
        let mut facts = FnFacts::default();
        gather_facts(&f.body, cfg, parsed.is_wal, &mut facts);
        let mut ev = Eval {
            cfg,
            file: file_label,
            function: &f.name,
            context: f.context,
            is_wal_file: parsed.is_wal,
            facts,
            findings: &mut findings,
        };
        ev.run(f);
    }
    // `lp-lint: allow(Sx)` on the finding's line or the line above
    // suppresses it.
    findings.retain(|f| {
        !parsed.directives.iter().any(|(line, d)| {
            matches!(d, Directive::Allow(rules)
                if (*line == f.line || line + 1 == f.line)
                    && rules.iter().any(|r| SRule::from_id(r) == Some(f.rule)))
        })
    });
    let mut report = LintReport {
        files: vec![file_label.to_string()],
        functions: parsed.fns.len(),
        findings,
    };
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> LintReport {
        analyze_source(src, "mem.rs", "mem", &LintConfig::default())
    }

    fn lint_wal(src: &str) -> LintReport {
        analyze_source(src, "wal.rs", "wal", &LintConfig::default())
    }

    #[test]
    fn clean_eager_pattern_has_no_findings() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for i in 0..n {\n\
                 ctx.store(self.buf, i, v);\n\
                 ctx.clflushopt(self.buf.addr(i));\n\
               }\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn marker_before_fence_is_s1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.store(self.markers, tid, 1);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn marker_with_unflushed_store_is_s1() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
    }

    #[test]
    fn lazy_region_without_flushes_is_clean() {
        // The LP idiom: plain stores, fold into ck, publish the table.
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.ck.update(v.to_bits64());\n\
               self.table.store(ctx, key, self.ck.value());\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unfolded_store_before_table_publish_is_s2() {
        let r = lint(
            "fn region(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.table.store(ctx, key, self.ck.value());\n\
             }",
        );
        assert!(r.flags(SRule::S2PublishBeforeCover), "{r}");
    }

    #[test]
    fn wal_store_before_log_fence_is_s3() {
        let r = lint_wal(
            "fn commit(ctx: &mut C) {\n\
               ctx.store(self.data, 0, v);\n\
               ctx.store(arena.entries, 0, old);\n\
               ctx.clflushopt(arena.entries.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S3OverwriteBeforeLogFence), "{r}");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn wal_figure2_order_is_clean() {
        let r = lint_wal(
            "fn commit(ctx: &mut C) {\n\
               ctx.store(arena.entries, 0, old);\n\
               ctx.clflushopt(arena.entries.addr(0));\n\
               ctx.store(arena.header, 1, n);\n\
               ctx.clflushopt(arena.header.addr(1));\n\
               ctx.sfence();\n\
               ctx.store(arena.header, 0, 1);\n\
               ctx.clflushopt(arena.header.addr(0));\n\
               ctx.sfence();\n\
               ctx.store_addr(addr, bits);\n\
               ctx.clflushopt(addr);\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_marker_before_repair_fence_is_s4() {
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.store(self.markers, tid, 1);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
    }

    #[test]
    fn recovery_fenced_repairs_then_marker_is_clean() {
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn store_outside_region_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               tp.store(ctx, &mut rs, arr, 0, v);\n\
               let mut rs = tp.begin(ctx, 0);\n\
               tp.store(ctx, &mut rs, arr, 1, v);\n\
               tp.commit(ctx, rs);\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn uncommitted_region_on_some_path_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               let mut rs = tp.begin(ctx, 0);\n\
               if cond {\n\
                 tp.commit(ctx, rs);\n\
               }\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
    }

    #[test]
    fn balanced_region_loop_is_clean() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               for k in 0..n {\n\
                 let mut rs = tp.begin(ctx, k);\n\
                 tp.store(ctx, &mut rs, arr, k, v);\n\
                 tp.commit(ctx, rs);\n\
               }\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn branch_with_pending_store_on_one_arm_flags_at_publish() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               if cond {\n\
                 ctx.store(self.buf, 0, v);\n\
               } else {\n\
                 ctx.store(self.buf, 1, v);\n\
                 ctx.clflushopt(self.buf.addr(1));\n\
                 ctx.sfence();\n\
               }\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.flags(SRule::S1StoreNotCovered), "{r}");
        assert_eq!(r.findings[0].line, 9);
    }

    #[test]
    fn barrier_discharges_obligations() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               committer.commit(ctx);\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn persist_helpers_discharge() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               persist_store(ctx, self.markers, tid, 1);\n\
               ctx.store(self.buf, 0, v);\n\
               persist_range(ctx, self.buf, 0, n);\n\
               ctx.store(self.markers, tid, 2);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               // lp-lint: allow(S1) intentional: covered by caller\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn diverged_arm_does_not_pollute_merge() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               if cond {\n\
                 ctx.store(self.buf, 0, v);\n\
                 return;\n\
               }\n\
               ctx.store(self.markers, tid, 1);\n\
             }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_repair_after_marker_is_s4() {
        // Static twin of fmut:marker_first_recovery: the marker is durably
        // published first, then the data it vouches for is repaired.
        let r = lint(
            "fn recover(ctx: &mut C) {\n\
               ctx.store(self.markers, 0, key + 1);\n\
               ctx.clflushopt(self.markers.addr(0));\n\
               ctx.sfence();\n\
               ctx.store(self.buf, 0, v);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
        assert_eq!(r.findings[0].line, 2, "{r}");
    }

    #[test]
    fn raw_store_outside_region_is_s5() {
        let r = lint(
            "fn run(ctx: &mut C) {\n\
               ctx.store(arr, 0, v);\n\
               ctx.region_begin(key);\n\
               ctx.store(arr, 8, v);\n\
               self.ck.update(v);\n\
               self.table.store(ctx, key, self.ck.value());\n\
               ctx.region_end();\n\
             }",
        );
        assert!(r.flags(SRule::S5UnbalancedRegion), "{r}");
        assert_eq!(r.findings[0].line, 2, "{r}");
    }

    #[test]
    fn restore_fn_context_is_recovery_by_name() {
        let r = lint(
            "fn restore_block(ctx: &mut C) {\n\
               ctx.store(self.buf, 0, v);\n\
               self.table.store(ctx, key, ck);\n\
               ctx.clflushopt(self.buf.addr(0));\n\
               ctx.sfence();\n\
             }",
        );
        assert!(r.flags(SRule::S4MarkerBeforeRepairFence), "{r}");
    }
}

//! Control-flow graphs over the parser's function trees.
//!
//! The parser produces a structured tree (`Node::Branch`/`Node::Loop`);
//! the dataflow engine wants an explicit graph: basic blocks of straight-
//! line calls, fork/join edges for branches, a dedicated *loop head* block
//! carrying its back edge (so the solver can widen there), and a separate
//! early-exit sink so `return`/`panic!` paths never pollute the normal
//! exit state. `break`/`continue` are approximated as early exits, same
//! as the previous tree walker.

use crate::parser::{Node, RawCall};

/// Extra structure attached to a loop-head block.
#[derive(Debug, Clone)]
pub struct LoopHead {
    /// Predecessor blocks that reach the head via the loop's back edge.
    pub back_preds: Vec<usize>,
    /// Min/max source line of calls inside the loop body, used to widen
    /// away must-facts born inside the loop (their expressions are
    /// iteration-dependent).
    pub span: (u32, u32),
    /// Iterable path from a `for x in path` header, empty otherwise.
    pub hint: String,
}

/// One basic block: straight-line calls plus graph edges.
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Call statements in program order.
    pub stmts: Vec<RawCall>,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
    /// Present when this block is a loop head.
    pub loop_head: Option<LoopHead>,
}

/// A function body as a control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; ids index into this vector, in creation (≈ source)
    /// order.
    pub blocks: Vec<Block>,
    /// Function entry block.
    pub entry: usize,
    /// Normal fall-off-the-end exit block (may be unreachable when every
    /// path diverges).
    pub exit: usize,
    /// Early-exit sink for `return`/`break`/`continue`/`panic!` paths.
    pub dexit: usize,
}

impl Cfg {
    /// Build the CFG for one function body.
    pub fn build(body: &[Node]) -> Cfg {
        let mut b = Builder { blocks: Vec::new() };
        let entry = b.new_block();
        let dexit = b.new_block();
        let exit = match b.seq(body, entry, dexit) {
            Some(out) => out,
            None => b.new_block(), // unreachable: every path diverged
        };
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
            dexit,
        }
    }

    /// Whether the `from → to` edge is a loop back edge.
    pub fn is_back_edge(&self, from: usize, to: usize) -> bool {
        self.blocks[to]
            .loop_head
            .as_ref()
            .is_some_and(|h| h.back_preds.contains(&from))
    }
}

struct Builder {
    blocks: Vec<Block>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
        self.blocks[to].preds.push(from);
    }

    /// Lay `nodes` down starting in block `cur`; returns the open block
    /// after the sequence, or `None` when every path diverged.
    fn seq(&mut self, nodes: &[Node], mut cur: usize, dexit: usize) -> Option<usize> {
        for n in nodes {
            match n {
                Node::Call(c) => self.blocks[cur].stmts.push(c.clone()),
                Node::Diverge => {
                    self.edge(cur, dexit);
                    return None;
                }
                Node::Branch(arms) => {
                    let join = self.new_block();
                    let mut any = false;
                    for arm in arms {
                        let a = self.new_block();
                        self.edge(cur, a);
                        if let Some(out) = self.seq(&arm.body, a, dexit) {
                            self.edge(out, join);
                            any = true;
                        }
                    }
                    if !any {
                        return None;
                    }
                    cur = join;
                }
                Node::Loop { hint, body } => {
                    let head = self.new_block();
                    self.edge(cur, head);
                    let bentry = self.new_block();
                    self.edge(head, bentry);
                    let mut back_preds = Vec::new();
                    if let Some(bout) = self.seq(body, bentry, dexit) {
                        self.edge(bout, head);
                        back_preds.push(bout);
                    }
                    self.blocks[head].loop_head = Some(LoopHead {
                        back_preds,
                        span: span_of(body),
                        hint: hint.clone(),
                    });
                    let after = self.new_block();
                    self.edge(head, after);
                    cur = after;
                }
            }
        }
        Some(cur)
    }
}

/// Min/max source line over all calls in a subtree (0,0 when empty).
fn span_of(nodes: &[Node]) -> (u32, u32) {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    let mut stack: Vec<&Node> = nodes.iter().collect();
    while let Some(n) = stack.pop() {
        match n {
            Node::Call(c) => {
                lo = lo.min(c.line);
                hi = hi.max(c.line);
            }
            Node::Branch(arms) => stack.extend(arms.iter().flat_map(|a| a.body.iter())),
            Node::Loop { body, .. } => stack.extend(body.iter()),
            Node::Diverge => {}
        }
    }
    if lo == u32::MAX {
        (0, 0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::parser::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let f = parse_file(src, "test", &LintConfig::default());
        Cfg::build(&f.fns[0].body)
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("fn f() { a(); b(); }");
        assert_eq!(c.blocks[c.entry].stmts.len(), 2);
        assert_eq!(c.entry, c.exit);
    }

    #[test]
    fn branch_forks_and_joins() {
        let c = cfg_of("fn f() { if x { a(); } else { b(); } tail(); }");
        // Entry forks to two arms which join at the exit-bearing block.
        assert_eq!(c.blocks[c.entry].succs.len(), 2);
        let join = c.blocks[c.blocks[c.entry].succs[0]].succs[0];
        assert_eq!(c.blocks[c.blocks[c.entry].succs[1]].succs[0], join);
        assert_eq!(c.blocks[join].preds.len(), 2);
        assert_eq!(c.blocks[join].stmts[0].name, "tail");
    }

    #[test]
    fn loop_has_back_edge_and_span() {
        let c = cfg_of("fn f() {\n for i in xs.iter() {\n a();\n b();\n }\n}");
        let head = (0..c.blocks.len())
            .find(|&i| c.blocks[i].loop_head.is_some())
            .expect("loop head");
        let h = c.blocks[head].loop_head.as_ref().unwrap();
        assert_eq!(h.back_preds.len(), 1);
        assert!(c.is_back_edge(h.back_preds[0], head));
        assert_eq!(h.span, (3, 4));
        // Head has two successors: body entry and loop exit.
        assert_eq!(c.blocks[head].succs.len(), 2);
    }

    #[test]
    fn diverge_routes_to_early_exit_sink() {
        let c = cfg_of("fn f() { a(); if x { return; } b(); }");
        assert!(c.blocks[c.dexit].preds.len() == 1);
        // The non-diverging arm still reaches a reachable exit with b().
        assert_eq!(c.blocks[c.exit].stmts[0].name, "b");
    }

    #[test]
    fn all_arms_diverging_leaves_exit_unreachable() {
        let c = cfg_of("fn f() { if x { return; } else { return; } b(); }");
        assert!(c.blocks[c.exit].preds.is_empty());
        assert!(c.blocks[c.exit].stmts.is_empty());
        assert_eq!(c.blocks[c.dexit].preds.len(), 2);
    }

    #[test]
    fn loop_whose_body_diverges_has_no_back_edge() {
        let c = cfg_of("fn f() { loop { a(); break; } }");
        let head = (0..c.blocks.len())
            .find(|&i| c.blocks[i].loop_head.is_some())
            .expect("loop head");
        assert!(c.blocks[head]
            .loop_head
            .as_ref()
            .unwrap()
            .back_preds
            .is_empty());
    }
}

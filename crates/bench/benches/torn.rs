//! Micro-benchmarks of word-granular (torn) NVMM writes — the operation
//! `CrashCensus::materialize_subset_torn` performs once per selected
//! census entry when the fault campaign runs with `--faults torn`.
//!
//! `write_words` merges at write time (read line, splice words, store
//! line) precisely so `read_line` needs no per-word bookkeeping. This
//! bench guards that contract twice over:
//!
//! - functionally: torn writes on a uniquely-owned image must never
//!   populate the overlay, so the empty-overlay `read_line` fast path
//!   survives a torn campaign (hard assert, not a timing);
//! - economically: the masked merge and the read hot path are timed
//!   against their full-line baselines so a regression shows up as a
//!   ratio, stored alongside the other bench baselines.
//!
//! Run: `cargo bench -p lp-bench --bench torn`.

use lp_sim::addr::{LineAddr, LINE_BYTES};
use lp_sim::mem::Nvmm;
use std::hint::black_box;
use std::time::Instant;

/// Time `body` for about half a second and report ns per call.
fn bench(name: &str, mut body: impl FnMut()) -> f64 {
    for _ in 0..10 {
        body(); // warm
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 500 {
        body();
        iters += 1;
    }
    let per_call = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("  {:28} {:10.1} ns/call", name, per_call);
    per_call
}

fn main() {
    let lines = 1024u64;
    let mut img = Nvmm::new(lines as usize * LINE_BYTES);
    let buf = [0xA5u8; LINE_BYTES];

    println!("torn write path (64 KiB image, unique base)");
    let mut l = 0u64;
    let full = bench("write_line", || {
        img.write_line(LineAddr(l % lines), &buf);
        l += 1;
    });
    let mut l = 0u64;
    bench("write_words mask=0xFF", || {
        img.write_words(LineAddr(l % lines), &buf, 0xFF);
        l += 1;
    });
    let mut l = 0u64;
    let torn = bench("write_words mask=0x5A", || {
        img.write_words(LineAddr(l % lines), &buf, 0x5A);
        l += 1;
    });
    println!(
        "  masked merge costs {:.1}x a full-line write",
        torn / full.max(1.0)
    );

    // The contract the fault campaign leans on: torn writes on a
    // uniquely-owned image go straight to the base, so the overlay stays
    // empty and every subsequent line fill keeps the fast path.
    assert_eq!(
        img.overlay_lines(),
        0,
        "write_words populated the overlay on a unique base — \
         the empty-overlay read_line fast path has regressed"
    );

    println!("\nread_line after a torn campaign");
    let mut out = [0u8; LINE_BYTES];
    let mut l = 0u64;
    let fast = bench("read_line empty overlay", || {
        img.read_line(LineAddr(l % lines), &mut out);
        black_box(&out);
        l += 1;
    });

    // A forked image pays the overlay probe on reads and buffers torn
    // writes in the overlay; keep the delta visible.
    let mut forked = img.fork();
    let _keep = img.fork();
    for i in 0..64u64 {
        forked.write_words(LineAddr(i * 7 % lines), &buf, 0x33);
    }
    assert!(
        forked.overlay_lines() > 0,
        "torn writes on a shared base must land in the overlay"
    );
    let mut l = 1u64;
    let probed = bench("read_line overlay probe", || {
        forked.read_line(LineAddr(l % lines), &mut out);
        black_box(&out);
        l += 1;
    });
    println!(
        "  overlay probe costs {:.1}x the fast path",
        probed / fast.max(1.0)
    );
}

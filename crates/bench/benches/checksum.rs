//! Micro-benchmark of the checksum engines: throughput of `update` over a
//! region's worth of doubles, per kind. This is the hot path LP adds to
//! every kernel inner loop, so its relative cost explains Figure 15(b)'s
//! ordering (parity ≈ modular < modular∥parity ≪ Adler-32).
//!
//! Run: `cargo bench -p lp-bench --bench checksum`.

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let values: Vec<u64> = (0..4096u64).map(|i| (i as f64 * 1.618).to_bits()).collect();
    println!("checksum_update: {} values per iteration", values.len());
    for kind in ChecksumKind::ALL {
        // Warm up, then time.
        let mut iters = 0u64;
        let mut sink = 0u64;
        for _ in 0..20 {
            let mut ck = RunningChecksum::new(kind);
            for &v in &values {
                ck.update(black_box(v));
            }
            sink ^= black_box(ck.value());
        }
        let start = Instant::now();
        while start.elapsed().as_millis() < 500 {
            let mut ck = RunningChecksum::new(kind);
            for &v in &values {
                ck.update(black_box(v));
            }
            sink ^= black_box(ck.value());
            iters += 1;
        }
        let elapsed = start.elapsed();
        let per_elem = elapsed.as_nanos() as f64 / (iters * values.len() as u64) as f64;
        println!(
            "  {:16} {:8.2} ns/elem  ({:.1} Melem/s)  [{iters} iters, sink {sink:#x}]",
            kind.name(),
            per_elem,
            1e3 / per_elem,
        );
    }

    println!("checksum_update_slice (u64-lane bulk): same stream per iteration");
    for kind in ChecksumKind::ALL {
        let mut iters = 0u64;
        let mut sink = 0u64;
        for _ in 0..20 {
            let mut ck = RunningChecksum::new(kind);
            ck.update_slice(black_box(&values));
            sink ^= black_box(ck.value());
        }
        // Sanity: the lane path must agree with per-word updates before we
        // bother timing it.
        {
            let mut scalar = RunningChecksum::new(kind);
            for &v in &values {
                scalar.update(v);
            }
            let mut lane = RunningChecksum::new(kind);
            lane.update_slice(&values);
            assert_eq!(scalar.value(), lane.value(), "{kind} lane/scalar mismatch");
        }
        let start = Instant::now();
        while start.elapsed().as_millis() < 500 {
            let mut ck = RunningChecksum::new(kind);
            ck.update_slice(black_box(&values));
            sink ^= black_box(ck.value());
            iters += 1;
        }
        let elapsed = start.elapsed();
        let per_elem = elapsed.as_nanos() as f64 / (iters * values.len() as u64) as f64;
        println!(
            "  {:16} {:8.2} ns/elem  ({:.1} Melem/s)  [{iters} iters, sink {sink:#x}]",
            kind.name(),
            per_elem,
            1e3 / per_elem,
        );
    }
}

//! Criterion micro-benchmarks of the checksum engines: throughput of
//! `update` over a region's worth of doubles, per kind. This is the hot
//! path LP adds to every kernel inner loop, so its relative cost explains
//! Figure 15(b)'s ordering (parity ≈ modular < modular∥parity ≪ Adler-32).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lp_core::checksum::{ChecksumKind, RunningChecksum};

fn bench_checksums(c: &mut Criterion) {
    let values: Vec<u64> = (0..4096u64)
        .map(|i| (i as f64 * 1.618).to_bits())
        .collect();
    let mut group = c.benchmark_group("checksum_update");
    group.throughput(Throughput::Elements(values.len() as u64));
    for kind in ChecksumKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut ck = RunningChecksum::new(kind);
                for &v in &values {
                    ck.update(black_box(v));
                }
                black_box(ck.value())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checksums);
criterion_main!(benches);

//! Micro-benchmarks of the simulator's memory system: simulated operations
//! per second for L1-hit loads/stores, streaming misses, and flush+fence
//! pairs. These bound how large a workload the experiment binaries can
//! simulate per wall-clock second.
//!
//! Run: `cargo bench -p lp-bench --bench cache`.

use lp_sim::config::MachineConfig;
use lp_sim::machine::Machine;
use std::hint::black_box;
use std::time::Instant;

const OPS_PER_ITER: u64 = 1024;

fn machine() -> Machine {
    Machine::new(
        MachineConfig::default()
            .with_cores(1)
            .with_nvmm_bytes(64 << 20),
    )
}

/// Time `body` (issuing [`OPS_PER_ITER`] simulated ops per call) for about
/// half a second and report ns per simulated op.
fn bench(name: &str, mut body: impl FnMut()) {
    for _ in 0..10 {
        body(); // warm
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 500 {
        body();
        iters += 1;
    }
    let per_op = start.elapsed().as_nanos() as f64 / (iters * OPS_PER_ITER) as f64;
    println!(
        "  {:20} {:8.1} ns/op  ({:.2} Mops/s)",
        name,
        per_op,
        1e3 / per_op
    );
}

fn main() {
    println!("sim_ops: {OPS_PER_ITER} simulated ops per iteration");

    {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        let mut ctx = m.ctx(0);
        let _: f64 = ctx.load(arr, 0); // warm the line
        bench("l1_hit_load", || {
            for _ in 0..OPS_PER_ITER {
                let v: f64 = ctx.load(arr, 0);
                black_box(v);
            }
        });
    }

    {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        let mut ctx = m.ctx(0);
        ctx.store(arr, 0, 0.0); // warm the line
        bench("l1_hit_store", || {
            for i in 0..OPS_PER_ITER {
                ctx.store(arr, 0, i as f64);
            }
        });
    }

    {
        // Each iteration streams over 1024 distinct lines (mostly L2/NVMM
        // traffic after the working set exceeds the caches).
        let mut m = machine();
        let arr = m.alloc::<f64>(1024 * 8 * 64).unwrap();
        let mut ctx = m.ctx(0);
        let mut pos = 0usize;
        bench("streaming_miss_load", || {
            for _ in 0..OPS_PER_ITER {
                let v: f64 = ctx.load(arr, pos);
                black_box(v);
                pos = (pos + 8) % arr.len();
            }
        });
    }

    {
        let mut m = machine();
        let arr = m.alloc::<f64>(1024 * 8).unwrap();
        let mut ctx = m.ctx(0);
        let mut i = 0usize;
        bench("flush_fence_pair", || {
            for _ in 0..OPS_PER_ITER {
                ctx.store(arr, i, 1.0);
                ctx.clflushopt(arr.addr(i));
                ctx.sfence();
                i = (i + 8) % arr.len();
            }
        });
    }
}

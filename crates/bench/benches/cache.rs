//! Criterion micro-benchmarks of the simulator's memory system: simulated
//! operations per second for L1-hit loads/stores, L2 hits, NVMM misses,
//! and flush+fence pairs. These bound how large a workload the experiment
//! binaries can simulate per wall-clock second.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lp_sim::config::MachineConfig;
use lp_sim::machine::Machine;

fn machine() -> Machine {
    Machine::new(
        MachineConfig::default()
            .with_cores(1)
            .with_nvmm_bytes(64 << 20),
    )
}

fn bench_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ops");
    group.throughput(Throughput::Elements(1024));

    group.bench_function("l1_hit_load", |b| {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        let mut ctx = m.ctx(0);
        let _: f64 = ctx.load(arr, 0); // warm
        b.iter(|| {
            for _ in 0..1024 {
                let v: f64 = ctx.load(arr, 0);
                black_box(v);
            }
        })
    });

    group.bench_function("l1_hit_store", |b| {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        let mut ctx = m.ctx(0);
        ctx.store(arr, 0, 0.0); // warm
        b.iter(|| {
            for i in 0..1024 {
                ctx.store(arr, 0, i as f64);
            }
        })
    });

    group.bench_function("streaming_miss_load", |b| {
        // Each iteration streams over 1024 distinct lines (mostly L2/NVMM
        // traffic after the working set exceeds the caches).
        let mut m = machine();
        let arr = m.alloc::<f64>(1024 * 8 * 64).unwrap();
        let mut ctx = m.ctx(0);
        let mut pos = 0usize;
        b.iter(|| {
            for _ in 0..1024 {
                let v: f64 = ctx.load(arr, pos);
                black_box(v);
                pos = (pos + 8) % arr.len();
            }
        })
    });

    group.bench_function("flush_fence_pair", |b| {
        let mut m = machine();
        let arr = m.alloc::<f64>(1024 * 8).unwrap();
        let mut ctx = m.ctx(0);
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..1024 {
                ctx.store(arr, i, 1.0);
                ctx.clflushopt(arr.addr(i));
                ctx.sfence();
                i = (i + 8) % arr.len();
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache_ops);
criterion_main!(benches);

//! Criterion end-to-end benchmarks: one small tmm window under each
//! persistency scheme. Wall-clock here tracks simulated work (ops), so
//! the relative host times mirror the schemes' instruction-count
//! overheads (WAL ≫ EP > LP ≈ base).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};
use lp_sim::config::MachineConfig;

fn bench_schemes(c: &mut Criterion) {
    let params = TmmParams {
        n: 64,
        bsize: 8,
        threads: 2,
        kk_window: 2,
        seed: 42,
    };
    let cfg = MachineConfig::default().with_nvmm_bytes(16 << 20);
    let mut group = c.benchmark_group("tmm_end_to_end");
    group.sample_size(10);
    for scheme in [
        Scheme::Base,
        Scheme::lazy_default(),
        Scheme::Eager,
        Scheme::Wal,
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || (cfg.clone(), params),
                |(cfg, params)| tmm::run(&cfg, params, scheme),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);

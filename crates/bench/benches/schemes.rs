//! End-to-end benchmark: one small tmm window under each persistency
//! scheme. Wall-clock here tracks simulated work (ops), so the relative
//! host times mirror the schemes' instruction-count overheads
//! (WAL ≫ EP > LP ≈ base).
//!
//! Run: `cargo bench -p lp-bench --bench schemes`.

use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};
use lp_sim::config::MachineConfig;
use std::time::Instant;

fn main() {
    let params = TmmParams {
        n: 64,
        bsize: 8,
        threads: 2,
        kk_window: 2,
        seed: 42,
    };
    let cfg = MachineConfig::default().with_nvmm_bytes(16 << 20);
    println!(
        "tmm_end_to_end: n={} bsize={} threads={} kk_window={}",
        params.n, params.bsize, params.threads, params.kk_window
    );
    for scheme in [
        Scheme::Base,
        Scheme::lazy_default(),
        Scheme::Eager,
        Scheme::Wal,
    ] {
        let samples = 10;
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut verified = true;
        for _ in 0..samples {
            let start = Instant::now();
            let run = tmm::run(&cfg, params, scheme);
            let secs = start.elapsed().as_secs_f64();
            verified &= run.verified;
            best = best.min(secs);
            total += secs;
        }
        println!(
            "  {:12} best {:8.1} ms   mean {:8.1} ms   [{} samples, verified={verified}]",
            scheme.name(),
            best * 1e3,
            total / samples as f64 * 1e3,
            samples,
        );
    }
}

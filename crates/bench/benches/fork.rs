//! Micro-benchmarks of copy-on-write NVMM forking — the operation the
//! `lp-crashmc` model checker performs once per explored crash state.
//! Reports fork cost against a deep copy of the same image, plus the
//! overlay-write penalty a forked (shared-base) image pays, so the
//! checker's per-state overhead stays accountable.
//!
//! Also measures (a) the `Arc` refcount cost of the real fork against a
//! local `Rc`-based replica of the pre-parallel-engine representation,
//! and (b) the memop hot path: `read_line` on an unforked image, where
//! the empty-overlay fast path skips the `HashMap` probe entirely.
//!
//! Run: `cargo bench -p lp-bench --bench fork`.

use lp_sim::addr::{LineAddr, LINE_BYTES};
use lp_sim::mem::Nvmm;
use std::hint::black_box;
use std::time::Instant;

/// Time `body` for about half a second and report ns per call.
fn bench(name: &str, mut body: impl FnMut()) -> f64 {
    for _ in 0..10 {
        body(); // warm
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 500 {
        body();
        iters += 1;
    }
    let per_call = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("  {:24} {:10.1} ns/call", name, per_call);
    per_call
}

fn image(bytes: usize) -> Nvmm {
    let mut img = Nvmm::new(bytes);
    // Touch a spread of lines so the image is not trivially zero.
    let buf = [0xA5u8; LINE_BYTES];
    for i in (0..bytes / LINE_BYTES).step_by(64) {
        img.write_line(LineAddr(i as u64), &buf);
    }
    img
}

fn deep_copy(src: &Nvmm) -> Nvmm {
    let mut out = Nvmm::new(src.capacity());
    let mut buf = [0u8; LINE_BYTES];
    for i in 0..src.capacity() / LINE_BYTES {
        src.read_line(LineAddr(i as u64), &mut buf);
        out.write_line(LineAddr(i as u64), &buf);
    }
    out
}

/// The old (pre-`Send`) base representation: a non-atomic refcount. Kept
/// here as a benchmark-local replica so the Rc-vs-Arc fork delta stays
/// measurable after the switch.
struct RcImage {
    base: std::rc::Rc<Vec<u8>>,
}

impl RcImage {
    fn new(bytes: usize) -> Self {
        RcImage {
            base: std::rc::Rc::new(vec![0u8; bytes]),
        }
    }
    fn fork(&self) -> RcImage {
        RcImage {
            base: std::rc::Rc::clone(&self.base),
        }
    }
}

fn main() {
    // Rc-vs-Arc: the whole cost of making `Nvmm` `Send` is one atomic
    // refcount bump per fork/drop.
    println!("fork refcount (1 MiB base, no overlay)");
    let rc = RcImage::new(1 << 20);
    bench("rc_fork (old repr)", || {
        black_box(rc.fork());
    });
    let arc = Nvmm::new(1 << 20);
    bench("arc_fork (current)", || {
        black_box(arc.fork());
    });

    // Memop hot path: every simulated line fill calls read_line. On an
    // unforked image the overlay is empty and the fast path skips the
    // HashMap probe; a forked image with a populated overlay pays the
    // probe even when it misses.
    println!("\nread_line hot path (64 KiB image)");
    let flat = image(64 << 10);
    let mut buf = [0u8; LINE_BYTES];
    let mut l = 0u64;
    bench("read_line empty overlay", || {
        flat.read_line(LineAddr(l % 1024), &mut buf);
        black_box(&buf);
        l += 1;
    });
    let mut overlaid = flat.fork();
    let _keep = flat.fork();
    let patch = [0x3Cu8; LINE_BYTES];
    for i in 0..64u64 {
        overlaid.write_line(LineAddr(i * 7), &patch);
    }
    let mut l = 1u64;
    bench("read_line overlay probe", || {
        overlaid.read_line(LineAddr(l % 1024), &mut buf);
        black_box(&buf);
        l += 1;
    });
    println!();

    for mib in [1usize, 16, 64] {
        let bytes = mib << 20;
        println!("nvmm image: {mib} MiB");
        let src = image(bytes);

        let cow = bench("cow_fork", || {
            black_box(src.fork());
        });

        // One fork per crash state plus a census-sized set of line
        // patches — what `CrashCensus::materialize` actually does.
        let patch = [0x5Au8; LINE_BYTES];
        bench("fork_plus_8_patches", || {
            let mut img = src.fork();
            for l in 0..8u64 {
                img.write_line(LineAddr(l * 97), &patch);
            }
            black_box(&img);
        });

        // Writes against a shared base land in the overlay map instead of
        // the flat image: the price recovery pays on a forked machine.
        let mut forked = src.fork();
        let _keep_shared = src.fork();
        let mut l = 0u64;
        bench("overlay_write", || {
            forked.write_line(LineAddr(l % 1024), &patch);
            l += 1;
        });

        let deep = bench("deep_copy", || {
            black_box(deep_copy(&src));
        });
        println!(
            "  cow fork is {:.0}x cheaper than a deep copy at {mib} MiB\n",
            deep / cow.max(1.0)
        );
    }
}

//! The bench harness's parallel matrix runner must be invisible in the
//! results: any job count yields the same per-cell statistics, in the
//! same order, as a serial walk.

use lp_bench::run_cells;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{run_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;
use lp_sim::stats::MemStats;

#[test]
fn representative_cell_stats_are_identical_across_jobs() {
    let cfg = MachineConfig::default().with_nvmm_bytes(16 << 20);
    let cells: Vec<(KernelId, Scheme)> = [KernelId::Tmm, KernelId::Gauss]
        .into_iter()
        .flat_map(|k| {
            [Scheme::Base, Scheme::lazy_default(), Scheme::Eager]
                .into_iter()
                .map(move |s| (k, s))
        })
        .collect();
    let run = |&(kernel, scheme): &(KernelId, Scheme)| -> (bool, u64, MemStats) {
        let r = run_kernel(kernel, Scale::Test, &cfg, scheme);
        (r.verified, r.cycles(), r.stats.mem)
    };
    let serial = run_cells(1, &cells, run);
    let parallel = run_cells(8, &cells, run);
    assert_eq!(serial.len(), parallel.len());
    for (cell, (s, p)) in cells.iter().zip(serial.iter().zip(&parallel)) {
        assert!(s.0, "{cell:?} must verify");
        assert_eq!(s, p, "{cell:?}: stats must not depend on the job count");
    }
}

#[test]
fn run_cells_preserves_cell_order() {
    let cells: Vec<usize> = (0..50).collect();
    let out = run_cells(4, &cells, |&c| c * 3);
    assert_eq!(out, (0..50).map(|c| c * 3).collect::<Vec<_>>());
}

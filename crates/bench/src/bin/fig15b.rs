//! Figure 15(b): LP execution-time overhead by error-detection code
//! (modular, parity, Adler-32, modular∥parity), vs base tmm.
//!
//! Paper reference: modular 0.2%, parity 0.1%, Adler-32 ~1%,
//! modular∥parity 3.4% — all below EP's 12%.
//!
//! Run: `cargo run --release -p lp-bench --bin fig15b [--quick]`.

use lp_bench::{overhead_pct, print_table, run_cells, BenchArgs};
use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();

    let mut cells = vec![Scheme::Base];
    cells.extend(ChecksumKind::ALL.into_iter().map(Scheme::Lazy));
    cells.push(Scheme::Eager);
    let runs = run_cells(args.host_jobs(), &cells, |&scheme| {
        eprintln!("fig15b: {scheme}...");
        let run = tmm::run(&cfg, params, scheme);
        if scheme != Scheme::Eager {
            assert!(run.verified, "{scheme}");
        }
        run
    });
    let base = &runs[0];
    let mut rows = Vec::new();
    for (kind, lp) in ChecksumKind::ALL.iter().zip(&runs[1..]) {
        rows.push(vec![
            kind.name().to_string(),
            overhead_pct(lp.cycles(), base.cycles()),
        ]);
    }
    let ep = runs.last().expect("EP run");
    rows.push(vec![
        "EP (reference)".into(),
        overhead_pct(ep.cycles(), base.cycles()),
    ]);
    print_table(
        "Figure 15(b) — LP execution-time overhead by checksum kind",
        &["Checksum", "overhead vs base"],
        &rows,
    );
    println!("\npaper: modular 0.2% | parity 0.1% | adler32 ~1% | modular+parity 3.4% | EP 12%");
}

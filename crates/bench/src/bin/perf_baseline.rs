//! `perf_baseline` — machine-readable performance baseline for the repo's
//! heavy consumers: the simulator (memops/sec), the crash-state model
//! checker (states/sec) with thread-scaling of the snapshot-resume
//! exploration engine at 1/2/4/8 host threads plus a full exhaustive
//! kernel-matrix cell, the fault campaign's states/sec (torn + media +
//! nested enabled, with its own thread scaling), and the `lp-lint`
//! dataflow engine's whole-tree throughput (lines/sec — the CI gate
//! budgets its wall time).
//!
//! Measurement protocol (fixed, not adaptive, so runs are comparable
//! across commits): every cell uses a fixed workload size, runs one
//! untimed warmup pass, then three timed repetitions, and reports the
//! median wall time (min/max recorded as spread). Emits
//! `results/BENCH_10.json` (hand-rolled JSON; the workspace carries no
//! serde) with the host's logical CPU count, and refreshes the perf
//! section of `results/bench_summary.txt`. Run with `--quick` for the
//! CI-sized workload.
//!
//! Regression gate: `--check PATH` compares the fresh measurements
//! against an older baseline JSON (BENCH_7/8/9/10 format) and exits
//! nonzero when a matched entry rots past tolerance. Documented
//! tolerances (generous, because CI runners are shared and the host may
//! have a single core): a best-of-reps rate (units / `wall_min`, the
//! noise-robust statistic for millisecond-scale cells) must stay above
//! `0.5×` its baseline (`0.6×` for the `sim/` cells, which are
//! single-threaded and steadier), and `speedup_vs_1` must not drop more
//! than `0.5` absolute below its baseline. Thread-scaling rows carry the
//! measuring host's `host_cpus`; when the baseline was taken on a host
//! with a different CPU count, the speedup comparison is annotated and
//! skipped rather than failed (not like-for-like). Entries present on
//! only one side are reported but never fail the gate (BENCH_7 lacked
//! `speedup_vs_1` on fault-campaign rows and had no exhaustive cell).
//!
//! Cycle-invariance gate: the `sim/` cells record `sim_cycles` and
//! `memops`; when fresh and baseline runs used the same workload size
//! (same `quick` flag), both must match the baseline *exactly* — the
//! simulator's timing model is pinned, so any drift is a semantic
//! regression, not noise. The `sim/` cells are also held to a wall-time
//! budget per rep so a pathological slowdown fails fast even while the
//! rate ratio is still within tolerance.
//!
//! Run: `cargo run --release -p lp-bench --bin perf_baseline
//!       [--quick] [--check results/BENCH_9.json]`.

#![forbid(unsafe_code)]

use lp_core::scheme::Scheme;
use lp_crashmc::cases::all_kernel_cases;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_kernels::driver::{run_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;
use lp_sim::fault::FaultConfig;

/// Untimed passes before measurement (warms caches and allocators).
const WARMUP_REPS: usize = 1;
/// Timed repetitions per cell; the median is reported.
const TIMED_REPS: usize = 3;

/// A fresh rate must stay above this fraction of its baseline rate.
const RATE_TOLERANCE: f64 = 0.5;
/// The `sim/` cells run single-threaded with no exploration randomness,
/// so they are steadier than the crashmc cells; hold them tighter.
const SIM_RATE_TOLERANCE: f64 = 0.6;
/// `speedup_vs_1` may drop at most this much (absolute) below baseline.
const SPEEDUP_TOLERANCE: f64 = 0.5;
/// Per-rep wall-time budget for one `sim/` cell (seconds): quick cells
/// finish in ~1 ms and full cells well under this; blowing the budget
/// means the hot path degenerated, regardless of the rate ratio.
fn sim_wall_budget(quick: bool) -> f64 {
    if quick {
        0.25
    } else {
        60.0
    }
}

/// Logical CPUs on the measuring host — recorded so `--check` can tell
/// whether thread-scaling rows are like-for-like comparable.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// One emitted measurement.
struct Entry {
    name: String,
    wall_secs: f64,
    rate: f64,
    rate_unit: &'static str,
    detail: Vec<(String, f64)>,
}

impl Entry {
    fn detail_value(&self, key: &str) -> Option<f64> {
        self.detail.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Run `f` under the fixed protocol: `WARMUP_REPS` untimed passes, then
/// `TIMED_REPS` timed ones. Returns `(median, min, max, last result)`.
fn measure<T>(mut f: impl FnMut() -> T) -> (f64, f64, f64, T) {
    for _ in 0..WARMUP_REPS {
        f();
    }
    let mut walls = Vec::with_capacity(TIMED_REPS);
    let mut last = None;
    for _ in 0..TIMED_REPS {
        let t0 = std::time::Instant::now();
        last = Some(f());
        walls.push(t0.elapsed().as_secs_f64());
    }
    walls.sort_by(f64::total_cmp);
    (
        walls[TIMED_REPS / 2],
        walls[0],
        walls[TIMED_REPS - 1],
        last.expect("TIMED_REPS > 0"),
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(quick: bool, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_10\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    out.push_str(&format!(
        "  \"protocol\": {{\"warmup_reps\": {WARMUP_REPS}, \"timed_reps\": {TIMED_REPS}, \"statistic\": \"median\"}},\n"
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&e.name)));
        out.push_str(&format!("      \"wall_secs\": {:.6},\n", e.wall_secs));
        out.push_str(&format!("      \"rate\": {:.3},\n", e.rate));
        out.push_str(&format!("      \"rate_unit\": \"{}\"", e.rate_unit));
        if !e.detail.is_empty() {
            out.push_str(",\n");
            let fields: Vec<String> = e
                .detail
                .iter()
                .map(|(k, v)| format!("      \"{}\": {:.6}", json_escape(k), v))
                .collect();
            out.push_str(&fields.join(",\n"));
        }
        out.push('\n');
        out.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ----------------------------------------------------------------------
// Baseline comparison (--check)
// ----------------------------------------------------------------------

/// One entry parsed back out of a baseline JSON (BENCH_7/8/9 format).
struct BaselineEntry {
    name: String,
    best_rate: f64,
    speedup_vs_1: Option<f64>,
    sim_cycles: Option<f64>,
    memops: Option<f64>,
    host_cpus: Option<f64>,
}

/// Extract the numeric value following `"key":` in `chunk`, if present.
fn json_number(chunk: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = chunk.find(&tag)? + tag.len();
    let rest = chunk[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best-of-reps rate: the reported rate rescaled from the median wall to
/// the minimum wall. The gate compares best-case rates because the
/// quick sim cells finish in ~1 ms, where the median soaks up scheduler
/// noise that the minimum shrugs off.
fn best_rate(rate: f64, wall_secs: Option<f64>, wall_min: Option<f64>) -> f64 {
    match (wall_secs, wall_min) {
        (Some(w), Some(m)) if m > 0.0 => rate * (w / m),
        _ => rate,
    }
}

/// Parse the baseline's entry list. Hand-rolled to match the hand-rolled
/// writer: entries are `{...}` objects inside the `"entries"` array, one
/// `"name"` each; unknown fields are ignored.
fn parse_baseline(json: &str) -> Vec<BaselineEntry> {
    let mut out = Vec::new();
    for chunk in json.split("\"name\":").skip(1) {
        let name = match chunk.split('"').nth(1) {
            Some(n) => n.to_string(),
            None => continue,
        };
        // Stop at the entry's closing brace so a field from the next
        // entry is never attributed to this one.
        let scope = chunk.split('}').next().unwrap_or(chunk);
        let Some(rate) = json_number(scope, "rate") else {
            continue;
        };
        out.push(BaselineEntry {
            name,
            best_rate: best_rate(
                rate,
                json_number(scope, "wall_secs"),
                json_number(scope, "wall_min"),
            ),
            speedup_vs_1: json_number(scope, "speedup_vs_1"),
            sim_cycles: json_number(scope, "sim_cycles"),
            memops: json_number(scope, "memops"),
            host_cpus: json_number(scope, "host_cpus"),
        });
    }
    out
}

/// The baseline's top-level `quick` flag (absent in BENCH_7 ⇒ `None`).
fn parse_baseline_quick(json: &str) -> Option<bool> {
    let head = json.split("\"entries\"").next().unwrap_or(json);
    if head.contains("\"quick\": true") {
        Some(true)
    } else if head.contains("\"quick\": false") {
        Some(false)
    } else {
        None
    }
}

/// Compare fresh entries against a stored baseline. Returns the number of
/// regressions past tolerance (0 ⇒ gate passes).
fn check_against(baseline_path: &str, quick: bool, entries: &[Entry]) -> usize {
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("--check: cannot read {baseline_path}: {e}"));
    let baseline = parse_baseline(&json);
    assert!(
        !baseline.is_empty(),
        "--check: no entries found in {baseline_path}"
    );
    // The cycle gate only makes sense when both runs simulated the same
    // workload; a BENCH_7-era baseline without the flag is treated as
    // incomparable rather than guessed at.
    let cycles_comparable = parse_baseline_quick(&json) == Some(quick);
    let mut regressions = 0usize;
    eprintln!("\n== regression check vs {baseline_path} ==");
    for e in entries {
        let Some(b) = baseline.iter().find(|b| b.name == e.name) else {
            eprintln!("  {:<44} new entry (no baseline) — informational", e.name);
            continue;
        };
        let is_sim = e.name.starts_with("sim/");
        let fresh = best_rate(e.rate, Some(e.wall_secs), e.detail_value("wall_min"));
        let ratio = fresh / b.best_rate.max(1e-9);
        let tolerance = if is_sim {
            SIM_RATE_TOLERANCE
        } else {
            RATE_TOLERANCE
        };
        let rate_ok = ratio >= tolerance;
        let mut line = format!(
            "  {:<44} best rate {:>12.1} vs {:>12.1}  ({:.2}x{})",
            e.name,
            fresh,
            b.best_rate,
            ratio,
            if rate_ok { "" } else { " REGRESSION" },
        );
        if !rate_ok {
            regressions += 1;
        }
        if is_sim {
            // Cycle invariance: the simulated timing model is pinned, so
            // the cell's cycle and memop counts must match the baseline
            // exactly (same workload size only).
            if cycles_comparable {
                for (key, then) in [("sim_cycles", b.sim_cycles), ("memops", b.memops)] {
                    if let (Some(now), Some(then)) = (e.detail_value(key), then) {
                        if now == then {
                            continue;
                        }
                        line.push_str(&format!("  {key} {now} vs {then} CYCLE-DRIFT"));
                        regressions += 1;
                    }
                }
            } else {
                line.push_str("  (cycle gate skipped: baseline workload size differs)");
            }
            let budget = sim_wall_budget(quick);
            let wall = e.detail_value("wall_min").unwrap_or(e.wall_secs);
            if wall > budget {
                line.push_str(&format!(
                    "  wall_min {wall:.3}s exceeds {budget:.2}s budget REGRESSION"
                ));
                regressions += 1;
            }
        }
        if let (Some(now), Some(then)) = (e.detail_value("speedup_vs_1"), b.speedup_vs_1) {
            let like_for_like = match (e.detail_value("host_cpus"), b.host_cpus) {
                (Some(a), Some(c)) => a == c,
                _ => true, // older baselines carry no host_cpus; keep the gate
            };
            if like_for_like {
                let speedup_ok = now >= then - SPEEDUP_TOLERANCE;
                line.push_str(&format!(
                    "  speedup {now:.2} vs {then:.2}{}",
                    if speedup_ok { "" } else { " REGRESSION" }
                ));
                if !speedup_ok {
                    regressions += 1;
                }
            } else {
                line.push_str(&format!(
                    "  speedup {now:.2} vs {then:.2} (host_cpus differ; informational)"
                ));
            }
        }
        eprintln!("{line}");
    }
    for b in &baseline {
        if !entries.iter().any(|e| e.name == b.name) {
            eprintln!("  {:<44} dropped (was in baseline) — informational", b.name);
        }
    }
    eprintln!(
        "tolerances: best rate >= {RATE_TOLERANCE}x baseline ({SIM_RATE_TOLERANCE}x for sim/ cells), \
         speedup_vs_1 >= baseline - {SPEEDUP_TOLERANCE}, sim cycles/memops exact, \
         sim wall_min <= {:.2}s; {regressions} regression(s)",
        sim_wall_budget(quick)
    );
    regressions
}

// ----------------------------------------------------------------------
// bench_summary.txt refresh
// ----------------------------------------------------------------------

const SUMMARY_BEGIN: &str = "== perf_baseline (generated; do not hand-edit this section) ==";

/// Rewrite the perf section of `results/bench_summary.txt`: everything up
/// to the marker is preserved (hand-collected `cargo bench` output), the
/// marker and everything after it is regenerated from this run — so the
/// summary always carries the current rates *including* the
/// fault-campaign `speedup_vs_1` rows the stale file lacked.
fn refresh_summary(path: &std::path::Path, quick: bool, entries: &[Entry]) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let head = existing
        .split(SUMMARY_BEGIN)
        .next()
        .unwrap_or("")
        .trim_end();
    let mut out = String::new();
    if !head.is_empty() {
        out.push_str(head);
        out.push_str("\n\n");
    }
    out.push_str(SUMMARY_BEGIN);
    out.push('\n');
    out.push_str(&format!(
        "source: perf_baseline (BENCH_10.json), quick={quick}, median of {TIMED_REPS} reps, host_cpus={}\n\n",
        host_cpus()
    ));
    out.push_str(&format!(
        "{:<44} {:>14} {:>18} {:>12} {:>12}\n",
        "entry", "wall_secs", "rate", "speedup_vs_1", "dedup_rate"
    ));
    for e in entries {
        let speedup = e
            .detail_value("speedup_vs_1")
            .map_or_else(|| "-".into(), |v| format!("{v:.2}x"));
        let dedup = e
            .detail_value("dedup_rate")
            .map_or_else(|| "-".into(), |v| format!("{:.1}%", v * 100.0));
        out.push_str(&format!(
            "{:<44} {:>14.3} {:>12.1} {:>5} {:>12} {:>12}\n",
            e.name, e.wall_secs, e.rate, e.rate_unit, speedup, dedup
        ));
    }
    std::fs::write(path, out).expect("write bench_summary.txt");
}

fn parse_args() -> (bool, Option<String>) {
    let (mut quick, mut check) = (false, None);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check = Some(args.next().expect("--check needs a baseline JSON path"));
            }
            "--help" | "-h" => {
                println!("usage: perf_baseline [--quick] [--check BASELINE.json]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    (quick, check)
}

/// Push one crashmc measurement (shared by the clean, faulted, and
/// exhaustive cells).
fn crashmc_entry(
    entries: &mut Vec<Entry>,
    name: String,
    cases: &[lp_crashmc::mc::CheckCase],
    budget: &Budget,
    threads: usize,
    wall_at_1: f64,
) -> f64 {
    let (wall, wall_min, wall_max, reports) = measure(|| check_cases(cases, budget, 42, threads));
    let states: u64 = reports.iter().map(|r| r.states_checked).sum();
    let dedup_hits: u64 = reports.iter().map(|r| r.dedup_hits).sum();
    let replay_saved: u64 = reports.iter().map(|r| r.replay_saved_ops).sum();
    assert!(
        reports.iter().all(lp_crashmc::mc::McReport::clean),
        "clean kernel matrix must stay clean"
    );
    let base = if wall_at_1 > 0.0 { wall_at_1 } else { wall };
    let mut detail = vec![
        ("states".into(), states as f64),
        ("speedup_vs_1".into(), base / wall.max(1e-9)),
        ("host_cpus".into(), host_cpus() as f64),
        ("dedup_hits".into(), dedup_hits as f64),
        (
            "dedup_rate".into(),
            dedup_hits as f64 / (states.max(1)) as f64,
        ),
        ("replay_saved_ops".into(), replay_saved as f64),
        ("wall_min".into(), wall_min),
        ("wall_max".into(), wall_max),
    ];
    if budget.faults.any() {
        let torn: u64 = reports.iter().map(|r| r.tally.torn_states).sum();
        let poisons: u64 = reports.iter().map(|r| r.tally.poisons).sum();
        let nested: u64 = reports.iter().map(|r| r.tally.nested_crashes).sum();
        detail.push(("torn_states".into(), torn as f64));
        detail.push(("poisons".into(), poisons as f64));
        detail.push(("nested_crashes".into(), nested as f64));
    }
    entries.push(Entry {
        name,
        wall_secs: wall,
        rate: states as f64 / wall.max(1e-9),
        rate_unit: "states_per_sec",
        detail,
    });
    wall
}

fn main() {
    let (quick, check) = parse_args();
    let mut entries = Vec::new();

    // --- Simulator throughput: one representative bench cell per scheme.
    let scale = if quick { Scale::Test } else { Scale::Bench };
    let cfg = MachineConfig::default().with_nvmm_bytes(512 << 20);
    for scheme in [
        Scheme::Base,
        Scheme::lazy_default(),
        Scheme::lazy_parity_default(),
        Scheme::Eager,
    ] {
        eprintln!("perf_baseline: sim {scheme}...");
        let (wall, wall_min, wall_max, run) =
            measure(|| run_kernel(KernelId::Tmm, scale, &cfg, scheme));
        assert!(run.verified, "tmm {scheme}");
        let t = run.stats.core_totals();
        let memops = t.loads + t.stores + t.flushes + t.fences;
        entries.push(Entry {
            name: format!("sim/tmm/{scheme}"),
            wall_secs: wall,
            rate: memops as f64 / wall.max(1e-9),
            rate_unit: "memops_per_sec",
            detail: vec![
                ("memops".into(), memops as f64),
                ("sim_cycles".into(), run.stats.exec_cycles() as f64),
                ("wall_min".into(), wall_min),
                ("wall_max".into(), wall_max),
            ],
        });
    }

    // --- Crashmc throughput and thread scaling over the kernel matrix.
    let budget = if quick {
        Budget {
            mode: BudgetMode::Smoke,
            k: 3,
            faults: FaultConfig::none(),
            dedup: true,
        }
    } else {
        Budget {
            mode: BudgetMode::Sampled(24),
            k: 4,
            faults: FaultConfig::none(),
            dedup: true,
        }
    };
    let cases = all_kernel_cases(Scale::Micro);
    // Recovery legitimately panics on some corrupt images; keep the
    // default hook from spamming the run.
    std::panic::set_hook(Box::new(|_| {}));
    let mut wall_at_1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        eprintln!("perf_baseline: crashmc @ {threads} thread(s)...");
        let wall = crashmc_entry(
            &mut entries,
            format!("crashmc/kernel-matrix/threads-{threads}"),
            &cases,
            &budget,
            threads,
            wall_at_1,
        );
        if threads == 1 {
            wall_at_1 = wall;
        }
    }

    // --- Full exhaustive budget over the same matrix: every crash point,
    // the snapshot-resume + dedup engine's headline cell (the sampled
    // cells above keep it comparable with the BENCH_7 lineage).
    let exhaustive = Budget {
        mode: BudgetMode::Exhaustive,
        ..budget
    };
    eprintln!("perf_baseline: crashmc exhaustive...");
    crashmc_entry(
        &mut entries,
        "crashmc/kernel-matrix-exhaustive/threads-8".into(),
        &cases,
        &exhaustive,
        8,
        0.0,
    );

    // --- Fault-campaign throughput: the same matrix with every fault
    // class armed, so the injection layer's overhead is a measured ratio
    // (faulted states/sec vs the clean matrix above), not a guess.
    let faulted = Budget {
        faults: FaultConfig::parse("torn,media,nested").expect("fault list"),
        ..budget
    };
    let mut fault_wall_at_1 = 0.0f64;
    for threads in [1usize, 4] {
        eprintln!("perf_baseline: fault campaign @ {threads} thread(s)...");
        let wall = crashmc_entry(
            &mut entries,
            format!("crashmc/fault-campaign/threads-{threads}"),
            &cases,
            &faulted,
            threads,
            fault_wall_at_1,
        );
        if threads == 1 {
            fault_wall_at_1 = wall;
        }
    }
    let _ = std::panic::take_hook();

    // --- Lint throughput over the real tree. The CI gate budgets the
    // fixpoint engine's wall time; this records the matching lines/sec
    // so a slow regression shows up as a rate drop, not a flaky timeout.
    eprintln!("perf_baseline: lp-lint tree...");
    let root = std::path::Path::new(".");
    let targets = lp_lint::default_targets(root).expect("enumerate lint surface");
    let lines: usize = targets
        .iter()
        .map(|p| std::fs::read_to_string(p).map_or(0, |s| s.lines().count()))
        .sum();
    let (wall, wall_min, wall_max, report) =
        measure(|| lp_lint::lint_paths(&targets, root, &lp_lint::LintConfig::default()));
    assert!(
        report.expect("lint tree").is_clean(),
        "clean tree must lint clean"
    );
    entries.push(Entry {
        name: "lint/tree".into(),
        wall_secs: wall,
        rate: lines as f64 / wall.max(1e-9),
        rate_unit: "lines_per_sec",
        detail: vec![
            ("lines".into(), lines as f64),
            ("files".into(), targets.len() as f64),
            ("wall_min".into(), wall_min),
            ("wall_max".into(), wall_max),
        ],
    });

    let json = render_json(quick, &entries);
    let path = std::path::Path::new("results").join("BENCH_10.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(&path, &json).expect("write BENCH_10.json");
    println!("{json}");
    eprintln!("perf_baseline: wrote {}", path.display());
    refresh_summary(
        &std::path::Path::new("results").join("bench_summary.txt"),
        quick,
        &entries,
    );
    eprintln!("perf_baseline: refreshed results/bench_summary.txt");

    if let Some(baseline) = check {
        if check_against(&baseline, quick, &entries) > 0 {
            std::process::exit(1);
        }
    }
}

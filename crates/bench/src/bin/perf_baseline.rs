//! `perf_baseline` — machine-readable performance baseline for the repo's
//! heavy consumers: the simulator (memops/sec), the crash-state model
//! checker (states/sec) with thread-scaling of the parallel exploration
//! engine at 1/2/4/8 host threads, the fault campaign's states/sec
//! (torn + media + nested enabled), and the `lp-lint` dataflow engine's
//! whole-tree throughput (lines/sec — the CI gate budgets its wall time).
//!
//! Measurement protocol (fixed, not adaptive, so runs are comparable
//! across commits): every cell uses a fixed workload size, runs one
//! untimed warmup pass, then three timed repetitions, and reports the
//! median wall time (min/max recorded as spread). Emits
//! `results/BENCH_7.json` (hand-rolled JSON; the workspace carries no
//! serde) so the perf trajectory is measured, not anecdotal. Run with
//! `--quick` for the CI-sized workload.
//!
//! Run: `cargo run --release -p lp-bench --bin perf_baseline [--quick]`.

#![forbid(unsafe_code)]

use lp_bench::BenchArgs;
use lp_core::scheme::Scheme;
use lp_crashmc::cases::all_kernel_cases;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_kernels::driver::{run_kernel, KernelId, Scale};
use lp_sim::fault::FaultConfig;

/// Untimed passes before measurement (warms caches and allocators).
const WARMUP_REPS: usize = 1;
/// Timed repetitions per cell; the median is reported.
const TIMED_REPS: usize = 3;

/// One emitted measurement.
struct Entry {
    name: String,
    wall_secs: f64,
    rate: f64,
    rate_unit: &'static str,
    detail: Vec<(String, f64)>,
}

/// Run `f` under the fixed protocol: `WARMUP_REPS` untimed passes, then
/// `TIMED_REPS` timed ones. Returns `(median, min, max, last result)`.
fn measure<T>(mut f: impl FnMut() -> T) -> (f64, f64, f64, T) {
    for _ in 0..WARMUP_REPS {
        f();
    }
    let mut walls = Vec::with_capacity(TIMED_REPS);
    let mut last = None;
    for _ in 0..TIMED_REPS {
        let t0 = std::time::Instant::now();
        last = Some(f());
        walls.push(t0.elapsed().as_secs_f64());
    }
    walls.sort_by(f64::total_cmp);
    (
        walls[TIMED_REPS / 2],
        walls[0],
        walls[TIMED_REPS - 1],
        last.expect("TIMED_REPS > 0"),
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(quick: bool, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_7\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"protocol\": {{\"warmup_reps\": {WARMUP_REPS}, \"timed_reps\": {TIMED_REPS}, \"statistic\": \"median\"}},\n"
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&e.name)));
        out.push_str(&format!("      \"wall_secs\": {:.6},\n", e.wall_secs));
        out.push_str(&format!("      \"rate\": {:.3},\n", e.rate));
        out.push_str(&format!("      \"rate_unit\": \"{}\"", e.rate_unit));
        if !e.detail.is_empty() {
            out.push_str(",\n");
            let fields: Vec<String> = e
                .detail
                .iter()
                .map(|(k, v)| format!("      \"{}\": {:.6}", json_escape(k), v))
                .collect();
            out.push_str(&fields.join(",\n"));
        }
        out.push('\n');
        out.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = BenchArgs::parse();
    let mut entries = Vec::new();

    // --- Simulator throughput: one representative bench cell per scheme.
    let scale = if args.quick {
        Scale::Test
    } else {
        Scale::Bench
    };
    let cfg = args.base_config();
    for scheme in [Scheme::Base, Scheme::lazy_default(), Scheme::Eager] {
        eprintln!("perf_baseline: sim {scheme}...");
        let (wall, wall_min, wall_max, run) =
            measure(|| run_kernel(KernelId::Tmm, scale, &cfg, scheme));
        assert!(run.verified, "tmm {scheme}");
        let t = run.stats.core_totals();
        let memops = t.loads + t.stores + t.flushes + t.fences;
        entries.push(Entry {
            name: format!("sim/tmm/{scheme}"),
            wall_secs: wall,
            rate: memops as f64 / wall.max(1e-9),
            rate_unit: "memops_per_sec",
            detail: vec![
                ("memops".into(), memops as f64),
                ("sim_cycles".into(), run.stats.exec_cycles() as f64),
                ("wall_min".into(), wall_min),
                ("wall_max".into(), wall_max),
            ],
        });
    }

    // --- Crashmc throughput and thread scaling over the kernel matrix.
    let budget = if args.quick {
        Budget {
            mode: BudgetMode::Smoke,
            k: 3,
            faults: FaultConfig::none(),
        }
    } else {
        Budget {
            mode: BudgetMode::Sampled(24),
            k: 4,
            faults: FaultConfig::none(),
        }
    };
    let cases = all_kernel_cases(Scale::Micro);
    // Recovery legitimately panics on some corrupt images; keep the
    // default hook from spamming the run.
    std::panic::set_hook(Box::new(|_| {}));
    let mut wall_at_1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        eprintln!("perf_baseline: crashmc @ {threads} thread(s)...");
        let (wall, wall_min, wall_max, reports) =
            measure(|| check_cases(&cases, &budget, 42, threads));
        let states: u64 = reports.iter().map(|r| r.states_checked).sum();
        assert!(
            reports.iter().all(lp_crashmc::mc::McReport::clean),
            "clean kernel matrix must stay clean"
        );
        if threads == 1 {
            wall_at_1 = wall;
        }
        entries.push(Entry {
            name: format!("crashmc/kernel-matrix/threads-{threads}"),
            wall_secs: wall,
            rate: states as f64 / wall.max(1e-9),
            rate_unit: "states_per_sec",
            detail: vec![
                ("states".into(), states as f64),
                ("speedup_vs_1".into(), wall_at_1 / wall.max(1e-9)),
                ("wall_min".into(), wall_min),
                ("wall_max".into(), wall_max),
            ],
        });
    }
    // --- Fault-campaign throughput: the same matrix with every fault
    // class armed, so the injection layer's overhead is a measured ratio
    // (faulted states/sec vs the clean matrix above), not a guess.
    let faulted = Budget {
        faults: FaultConfig::parse("torn,media,nested").expect("fault list"),
        ..budget
    };
    for threads in [1usize, 4] {
        eprintln!("perf_baseline: fault campaign @ {threads} thread(s)...");
        let (wall, wall_min, wall_max, reports) =
            measure(|| check_cases(&cases, &faulted, 42, threads));
        let states: u64 = reports.iter().map(|r| r.states_checked).sum();
        let torn: u64 = reports.iter().map(|r| r.tally.torn_states).sum();
        let poisons: u64 = reports.iter().map(|r| r.tally.poisons).sum();
        let nested: u64 = reports.iter().map(|r| r.tally.nested_crashes).sum();
        assert!(
            reports.iter().all(lp_crashmc::mc::McReport::clean),
            "hardened kernel matrix must survive the fault campaign"
        );
        entries.push(Entry {
            name: format!("crashmc/fault-campaign/threads-{threads}"),
            wall_secs: wall,
            rate: states as f64 / wall.max(1e-9),
            rate_unit: "states_per_sec",
            detail: vec![
                ("states".into(), states as f64),
                ("torn_states".into(), torn as f64),
                ("poisons".into(), poisons as f64),
                ("nested_crashes".into(), nested as f64),
                ("wall_min".into(), wall_min),
                ("wall_max".into(), wall_max),
            ],
        });
    }
    let _ = std::panic::take_hook();

    // --- Lint throughput over the real tree. The CI gate budgets the
    // fixpoint engine's wall time; this records the matching lines/sec
    // so a slow regression shows up as a rate drop, not a flaky timeout.
    eprintln!("perf_baseline: lp-lint tree...");
    let root = std::path::Path::new(".");
    let targets = lp_lint::default_targets(root).expect("enumerate lint surface");
    let lines: usize = targets
        .iter()
        .map(|p| std::fs::read_to_string(p).map_or(0, |s| s.lines().count()))
        .sum();
    let (wall, wall_min, wall_max, report) =
        measure(|| lp_lint::lint_paths(&targets, root, &lp_lint::LintConfig::default()));
    assert!(
        report.expect("lint tree").is_clean(),
        "clean tree must lint clean"
    );
    entries.push(Entry {
        name: "lint/tree".into(),
        wall_secs: wall,
        rate: lines as f64 / wall.max(1e-9),
        rate_unit: "lines_per_sec",
        detail: vec![
            ("lines".into(), lines as f64),
            ("files".into(), targets.len() as f64),
            ("wall_min".into(), wall_min),
            ("wall_max".into(), wall_max),
        ],
    });

    let json = render_json(args.quick, &entries);
    let path = std::path::Path::new("results").join("BENCH_7.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(&path, &json).expect("write BENCH_7.json");
    println!("{json}");
    eprintln!("perf_baseline: wrote {}", path.display());
}

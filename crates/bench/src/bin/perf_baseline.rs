//! `perf_baseline` — machine-readable performance baseline for the repo's
//! two heavy consumers: the simulator (memops/sec) and the crash-state
//! model checker (states/sec), plus thread-scaling of the parallel
//! exploration engine at 1/2/4/8 host threads.
//!
//! Emits `results/BENCH_4.json` (hand-rolled JSON; the workspace carries
//! no serde) so the perf trajectory is measured, not anecdotal. Run with
//! `--quick` for the CI-sized workload.
//!
//! Run: `cargo run --release -p lp-bench --bin perf_baseline [--quick]`.

use lp_bench::BenchArgs;
use lp_core::scheme::Scheme;
use lp_crashmc::cases::all_kernel_cases;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_kernels::driver::{run_kernel, KernelId, Scale};

/// One emitted measurement.
struct Entry {
    name: String,
    wall_secs: f64,
    rate: f64,
    rate_unit: &'static str,
    detail: Vec<(String, f64)>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(quick: bool, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_4\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&e.name)));
        out.push_str(&format!("      \"wall_secs\": {:.6},\n", e.wall_secs));
        out.push_str(&format!("      \"rate\": {:.3},\n", e.rate));
        out.push_str(&format!("      \"rate_unit\": \"{}\"", e.rate_unit));
        if !e.detail.is_empty() {
            out.push_str(",\n");
            let fields: Vec<String> = e
                .detail
                .iter()
                .map(|(k, v)| format!("      \"{}\": {:.6}", json_escape(k), v))
                .collect();
            out.push_str(&fields.join(",\n"));
        }
        out.push('\n');
        out.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = BenchArgs::parse();
    let mut entries = Vec::new();

    // --- Simulator throughput: one representative bench cell per scheme.
    let scale = if args.quick {
        Scale::Test
    } else {
        Scale::Bench
    };
    let cfg = args.base_config();
    for scheme in [Scheme::Base, Scheme::lazy_default(), Scheme::Eager] {
        eprintln!("perf_baseline: sim {scheme}...");
        let t0 = std::time::Instant::now();
        let run = run_kernel(KernelId::Tmm, scale, &cfg, scheme);
        let wall = t0.elapsed().as_secs_f64();
        assert!(run.verified, "tmm {scheme}");
        let t = run.stats.core_totals();
        let memops = t.loads + t.stores + t.flushes + t.fences;
        entries.push(Entry {
            name: format!("sim/tmm/{scheme}"),
            wall_secs: wall,
            rate: memops as f64 / wall.max(1e-9),
            rate_unit: "memops_per_sec",
            detail: vec![
                ("memops".into(), memops as f64),
                ("sim_cycles".into(), run.stats.exec_cycles() as f64),
            ],
        });
    }

    // --- Crashmc throughput and thread scaling over the kernel matrix.
    let budget = if args.quick {
        Budget {
            mode: BudgetMode::Smoke,
            k: 3,
        }
    } else {
        Budget {
            mode: BudgetMode::Sampled(24),
            k: 4,
        }
    };
    let cases = all_kernel_cases(Scale::Micro);
    // Recovery legitimately panics on some corrupt images; keep the
    // default hook from spamming the run.
    std::panic::set_hook(Box::new(|_| {}));
    let mut wall_at_1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        eprintln!("perf_baseline: crashmc @ {threads} thread(s)...");
        let t0 = std::time::Instant::now();
        let reports = check_cases(&cases, &budget, 42, threads);
        let wall = t0.elapsed().as_secs_f64();
        let states: u64 = reports.iter().map(|r| r.states_checked).sum();
        assert!(
            reports.iter().all(lp_crashmc::mc::McReport::clean),
            "clean kernel matrix must stay clean"
        );
        if threads == 1 {
            wall_at_1 = wall;
        }
        entries.push(Entry {
            name: format!("crashmc/kernel-matrix/threads-{threads}"),
            wall_secs: wall,
            rate: states as f64 / wall.max(1e-9),
            rate_unit: "states_per_sec",
            detail: vec![
                ("states".into(), states as f64),
                ("speedup_vs_1".into(), wall_at_1 / wall.max(1e-9)),
            ],
        });
    }
    let _ = std::panic::take_hook();

    let json = render_json(args.quick, &entries);
    let path = std::path::Path::new("results").join("BENCH_4.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(&path, &json).expect("write BENCH_4.json");
    println!("{json}");
    eprintln!("perf_baseline: wrote {}", path.display());
}

//! Section III-D's error-detection accuracy study: inject persistency
//! errors into region data and measure how often each checksum code fails
//! to detect them.
//!
//! Paper reference: Modular and Adler-32 miss fewer than one error in two
//! billion injections (< 2×10⁻⁹); Parity is cheapest but weakest.
//!
//! Run: `cargo run --release -p lp-bench --bin cksum_accuracy [--quick]`.

use lp_bench::print_table;
use lp_core::checksum::accuracy::{run_injection_campaign, ErrorModel};
use lp_core::checksum::ChecksumKind;
use lp_sim::rng::Rng64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 100_000 } else { 2_000_000 };
    let region_len = 256; // one tmm ii-strip row's worth of doubles

    let models = [
        ("stale-zero", ErrorModel::StaleZero),
        ("stale-random", ErrorModel::StaleRandom),
        ("bit-flip", ErrorModel::BitFlip),
    ];
    let mut rows = Vec::new();
    for kind in ChecksumKind::ALL {
        for (mname, model) in models {
            let mut rng = Rng64::new(0xacc + kind.cost_ops());
            let r = run_injection_campaign(kind, region_len, trials, model, &mut rng);
            rows.push(vec![
                kind.name().to_string(),
                mname.to_string(),
                r.injections.to_string(),
                r.undetected.to_string(),
                if r.undetected == 0 {
                    format!("< {:.1e}", 1.0 / r.injections as f64)
                } else {
                    format!("{:.2e}", r.miss_rate())
                },
            ]);
            eprintln!("  {kind} / {mname}: done");
        }
    }
    print_table(
        "Section III-D — checksum false-negative rates under injected persistency errors",
        &[
            "Checksum",
            "Error model",
            "Injections",
            "Undetected",
            "Miss rate",
        ],
        &rows,
    );
    println!("\npaper: modular & adler32 < 2e-9 misses; parity cheapest/weakest");
}

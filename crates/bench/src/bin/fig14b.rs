//! Figure 14(b): scalability — tmm execution time for base and LP as the
//! thread count varies from 1 to 16, normalized to base with 1 thread.
//!
//! Paper reference: LP scales like base (the checksum adds no
//! synchronization — the collision-free table needs no locks).
//!
//! Run: `cargo run --release -p lp-bench --bin fig14b [--quick]`.

use lp_bench::{print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let params0 = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    let cfg = args.base_config();

    let counts = [1usize, 2, 4, 8, 16];
    let cells: Vec<(usize, Scheme)> = counts
        .iter()
        .flat_map(|&t| {
            [Scheme::Base, Scheme::lazy_default()]
                .into_iter()
                .map(move |s| (t, s))
        })
        .collect();
    let runs = run_cells(args.host_jobs(), &cells, |&(threads, scheme)| {
        eprintln!("fig14b: {threads} thread(s) {scheme}...");
        let mut params = params0;
        params.threads = threads;
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "{threads} threads {scheme}");
        run
    });
    let base1 = runs[0].cycles().max(1);
    let mut rows = Vec::new();
    for (i, threads) in counts.into_iter().enumerate() {
        let [base, lp] = &runs[2 * i..2 * i + 2] else {
            unreachable!()
        };
        rows.push(vec![
            threads.to_string(),
            format!("{:.3}", base.cycles() as f64 / base1 as f64),
            format!("{:.3}", lp.cycles() as f64 / base1 as f64),
            format!("{:.2}x", base1 as f64 / base.cycles().max(1) as f64),
            format!("{:.2}x", base1 as f64 / lp.cycles().max(1) as f64),
        ]);
    }
    print_table(
        "Figure 14(b) — execution time vs threads (normalized to base @ 1 thread)",
        &["Threads", "base", "LP", "base speedup", "LP speedup"],
        &rows,
    );
    println!("\npaper: LP matches base scalability from 1 to 16 threads");
}

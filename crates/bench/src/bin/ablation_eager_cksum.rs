//! Ablation (Section III-D): should the *checksum itself* be persisted
//! lazily or eagerly?
//!
//! The paper chooses lazy (accepting the false-negative case R3 of
//! Figure 6 — a fully-persisted region whose checksum was lost gets
//! recomputed unnecessarily) because eager-persisting the checksum pays
//! flush + fence per region in the failure-free common case. This binary
//! measures that price and the benefit (fewer unnecessary recomputations
//! after a crash).
//!
//! Run: `cargo run --release -p lp-bench --bin ablation_eager_cksum [--quick]`.

use lp_bench::{overhead_pct, print_table, BenchArgs};
use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, Tmm, TmmParams};
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();

    // Normal-execution price.
    eprintln!("ablation: measuring normal-execution cost...");
    let base = tmm::run(&cfg, params, Scheme::Base);
    let lazy = tmm::run(&cfg, params, Scheme::Lazy(ChecksumKind::Modular));
    let eager_ck = tmm::run(&cfg, params, Scheme::LazyEagerCk(ChecksumKind::Modular));
    assert!(base.verified && lazy.verified && eager_ck.verified);

    let rows = vec![
        vec![
            "LP (lazy checksum, paper's choice)".to_string(),
            overhead_pct(lazy.cycles(), base.cycles()),
            overhead_pct(lazy.writes(), base.writes()),
            lazy.stats.core_totals().fences.to_string(),
        ],
        vec![
            "LP (eager checksum)".to_string(),
            overhead_pct(eager_ck.cycles(), base.cycles()),
            overhead_pct(eager_ck.writes(), base.writes()),
            eager_ck.stats.core_totals().fences.to_string(),
        ],
    ];
    print_table(
        "Ablation §III-D — checksum persistence policy: normal-execution cost",
        &["Variant", "exe overhead", "write overhead", "fences"],
        &rows,
    );

    // Recovery benefit: crash late with a small L2 so region *data* has
    // been naturally evicted (durable) while lazily-persisted checksums
    // may still be cached — the false-negative case R3 of Figure 6 that
    // the eager-checksum variant eliminates.
    eprintln!("ablation: measuring recovery behaviour after a crash...");
    let mut rows = Vec::new();
    for (label, scheme) in [
        ("LP (lazy checksum)", Scheme::Lazy(ChecksumKind::Modular)),
        (
            "LP (eager checksum)",
            Scheme::LazyEagerCk(ChecksumKind::Modular),
        ),
    ] {
        let quick_params = TmmParams::bench_default();
        let mut machine = Machine::new(
            cfg.clone()
                .with_cores(quick_params.threads)
                .with_l2_bytes(128 * 1024),
        );
        let tmm = Tmm::setup(&mut machine, quick_params, scheme).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(2_000_000));
        assert_eq!(machine.run(tmm.plans()), Outcome::Crashed);
        machine.clear_crash_trigger();
        machine.take_stats();
        let r = tmm.recover(&mut machine);
        machine.drain_caches();
        assert!(tmm.verify(&machine), "{label}");
        rows.push(vec![
            label.to_string(),
            r.regions_checked.to_string(),
            r.regions_inconsistent.to_string(),
            r.recomputed_regions.to_string(),
            r.cycles.to_string(),
        ]);
    }
    print_table(
        "Ablation §III-D — recovery after an identical mid-run crash",
        &[
            "Variant",
            "checked",
            "inconsistent",
            "recomputed",
            "recovery cycles",
        ],
        &rows,
    );
    println!("\npaper: chooses the lazy checksum — failures are rare, so paying\nflush+fence per region in the common case is the wrong trade.");
}

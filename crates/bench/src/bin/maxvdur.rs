//! Maximum volatility duration (Section VI, unfigured measurement): how
//! long blocks stay dirty in the hierarchy before reaching NVMM, for tmm
//! under base / EP / LP, normalized to base.
//!
//! Paper reference: EagerRecompute's maxvdur is 20% of base (eager
//! flushing shortens volatility); Lazy Persistency's is 101% of base.
//!
//! Run: `cargo run --release -p lp-bench --bin maxvdur [--quick]`.

use lp_bench::{print_table, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();

    let schemes = [
        ("base (tmm)", Scheme::Base),
        ("tmm+EP", Scheme::Eager),
        ("tmm+LP", Scheme::lazy_default()),
    ];
    let mut rows = Vec::new();
    let mut base_vdur = 0u64;
    for (label, scheme) in schemes {
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "{label}");
        let vdur = run.stats.mem.max_volatility;
        if base_vdur == 0 {
            base_vdur = vdur.max(1);
        }
        let hist = &run.stats.mem.volatility_hist;
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", vdur as f64 / base_vdur as f64 * 100.0),
            vdur.to_string(),
            format!("{:.0}", run.stats.mem.mean_volatility()),
            hist.percentile(50.0).map_or("-".into(), |v| v.to_string()),
            hist.percentile(99.0).map_or("-".into(), |v| v.to_string()),
        ]);
        eprintln!("  {label}: done");
    }
    print_table(
        "Max volatility duration (cycles dirty before reaching NVMM), vs base",
        &[
            "Scheme",
            "maxvdur vs base",
            "maxvdur (cycles)",
            "mean vdur",
            "p50 bucket",
            "p99 bucket",
        ],
        &rows,
    );
    println!("\npaper: EP 20% of base; LP 101% of base");
}

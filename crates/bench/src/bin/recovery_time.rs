//! Recovery-time study (the *point* of Section VI-A's periodic cleaner):
//! how much recomputation a crash costs under Lazy Persistency, with and
//! without the periodic hardware cleaner, across cleaning intervals.
//!
//! The cleaner bounds how long results stay volatile, so after a crash
//! fewer regions mismatch their checksums and recovery recomputes less.
//! This binary crashes an identical tmm run at the same operation count
//! under each configuration and reports the recovery work.
//!
//! Run: `cargo run --release -p lp-bench --bin recovery_time [--quick]`.

use lp_bench::{print_table, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::cleaner::CleanerConfig;
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn run_case(cfg: &MachineConfig, params: TmmParams, crash_ops: u64) -> (u64, u64, u64, u64, u64) {
    let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
    let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
    machine.set_crash_trigger(CrashTrigger::AfterMemOps(crash_ops));
    assert_eq!(machine.run(tmm.plans()), Outcome::Crashed);
    let run_stats = machine.take_stats();
    machine.clear_crash_trigger();
    let r = tmm.recover(&mut machine);
    machine.drain_caches();
    assert!(tmm.verify(&machine), "recovery failed");
    (
        r.regions_inconsistent,
        r.recomputed_regions,
        r.cycles,
        run_stats.nvmm_writes(),
        run_stats.mem.nvmm_writes_cleaner,
    )
}

fn main() {
    let args = BenchArgs::parse();
    let params = if args.quick {
        TmmParams {
            n: 128,
            bsize: 16,
            threads: 4,
            kk_window: 4,
            seed: 42,
        }
    } else {
        TmmParams::bench_default()
    };
    let cfg = args.base_config();

    // Crash roughly three-quarters of the way through the run.
    eprintln!("recovery_time: sizing the run...");
    let probe = lp_kernels::tmm::run(&cfg, params, Scheme::lazy_default());
    let total_ops = probe.stats.instructions(); // proxy; mem ops scale with it
    let crash_ops = (total_ops / 8).max(10_000); // instructions >> mem ops
    let probe_cycles = probe.cycles().max(1);

    let mut rows = Vec::new();
    eprintln!("recovery_time: no cleaner...");
    let (inc, rep, cyc, writes, _) = run_case(&cfg, params, crash_ops);
    rows.push(vec![
        "no cleaner".to_string(),
        inc.to_string(),
        rep.to_string(),
        cyc.to_string(),
        writes.to_string(),
        "0".into(),
    ]);
    for frac in [0.01f64, 0.05, 0.20] {
        let interval = ((probe_cycles as f64 * frac) as u64).max(1);
        eprintln!(
            "recovery_time: cleaner @ {:.0}% of exec ({interval} cycles)...",
            frac * 100.0
        );
        let cfg_clean = cfg
            .clone()
            .with_cleaner(CleanerConfig::every_cycles(interval));
        let (inc, rep, cyc, writes, cleaner_writes) = run_case(&cfg_clean, params, crash_ops);
        rows.push(vec![
            format!("cleaner @ {:.0}% of exec", frac * 100.0),
            inc.to_string(),
            rep.to_string(),
            cyc.to_string(),
            writes.to_string(),
            cleaner_writes.to_string(),
        ]);
    }
    print_table(
        "Recovery work after an identical crash, vs cleaning interval (§VI-A)",
        &[
            "Config",
            "inconsistent",
            "recomputed",
            "recovery cycles",
            "run writes",
            "cleaner writes",
        ],
        &rows,
    );
    println!("\npaper: the cleaner bounds recovery time at a modest write cost");
}

//! Figure 11: additional NVMM writes (vs. base tmm) as a function of the
//! periodic hardware cleaner's interval, expressed as a fraction of total
//! execution time, for Lazy Persistency — with EagerRecompute's write
//! overhead as the reference line.
//!
//! Paper reference: even a 0.08%-of-runtime cleaning interval costs +32%
//! writes, still below EagerRecompute's +36%; a 33% interval costs < +2%.
//!
//! Run: `cargo run --release -p lp-bench --bin fig11 [--quick]`.

use lp_bench::{print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};
use lp_sim::cleaner::CleanerConfig;

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();

    // Reference points: base and EP write counts (plus the no-cleaner LP
    // run), and base runtime to express cleaner intervals as fractions of
    // execution time. The cleaner sweep depends on the base cycle count,
    // so it fans out in a second wave.
    eprintln!("fig11: measuring base, EP & LP references...");
    let jobs = args.host_jobs();
    let ref_schemes = [Scheme::Base, Scheme::Eager, Scheme::lazy_default()];
    let mut refs = run_cells(jobs, &ref_schemes, |&scheme| {
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "{scheme}");
        run
    });
    let lp_plain = refs.pop().expect("LP reference");
    let ep = refs.pop().expect("EP reference");
    let base = refs.pop().expect("base reference");
    let base_cycles = base.cycles();
    let base_writes = base.writes().max(1);

    // Sweep the interval as a fraction of base execution time, smallest
    // (most aggressive cleaning) first, mirroring the figure's x-axis.
    let fractions = [0.0008f64, 0.0033, 0.01, 0.033, 0.10, 0.33];
    let sweep = run_cells(jobs, &fractions, |&frac| {
        let interval = ((base_cycles as f64 * frac) as u64).max(1);
        let cfg_clean = cfg
            .clone()
            .with_cleaner(CleanerConfig::every_cycles(interval));
        let run = tmm::run(&cfg_clean, params, Scheme::lazy_default());
        assert!(run.verified, "fraction {frac}");
        eprintln!("  fraction {frac}: done");
        (interval, run)
    });
    let mut rows = vec![vec![
        "LP, no cleaner".to_string(),
        "-".into(),
        lp_bench::overhead_pct(lp_plain.writes(), base_writes),
        "-".into(),
    ]];
    for (frac, (interval, run)) in fractions.iter().zip(&sweep) {
        rows.push(vec![
            format!("LP + cleaner @ {:.2}%", frac * 100.0),
            interval.to_string(),
            lp_bench::overhead_pct(run.writes(), base_writes),
            run.stats.mem.nvmm_writes_cleaner.to_string(),
        ]);
    }
    rows.push(vec![
        "EP (reference)".to_string(),
        "-".into(),
        lp_bench::overhead_pct(ep.writes(), base_writes),
        "-".into(),
    ]);
    print_table(
        "Figure 11 — extra NVMM writes vs time-between-cleanings (fraction of exec time)",
        &[
            "Config",
            "interval (cycles)",
            "write overhead vs base",
            "cleaner writes",
        ],
        &rows,
    );
    println!("\npaper: 0.08% interval -> +32% (below EP's +36%); 33% interval -> < +2%");
}

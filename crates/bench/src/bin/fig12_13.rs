//! Figures 12 and 13: normalized execution time and write amplification
//! for all five benchmarks (TMM, Cholesky, 2D-conv, Gauss, FFT) under
//! Lazy Persistency vs. EagerRecompute, normalized to the non-persistent
//! base versions.
//!
//! Paper reference: LP execution-time overhead 0.1%–3.5% (avg 1.1%) vs.
//! EP 4.4%–17.9% (avg 9%); LP write amplification 0.1%–4.4% (avg 3%) vs.
//! EP 0.2%–55% (avg 20.6%).
//!
//! Run: `cargo run --release -p lp-bench --bin fig12_13 [--quick]`.

use lp_bench::{gmean, overhead_pct, print_bars, print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::driver::{run_kernel, KernelId, Scale};

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.quick {
        Scale::Bench
    } else {
        Scale::Paper
    };
    let cfg = args.base_config();

    // The full kernel x scheme matrix, fanned across host threads; the
    // per-kernel rows are then assembled from the ordered results.
    let cells: Vec<(KernelId, Scheme)> = KernelId::ALL
        .iter()
        .flat_map(|&k| {
            [Scheme::Base, Scheme::lazy_default(), Scheme::Eager]
                .into_iter()
                .map(move |s| (k, s))
        })
        .collect();
    let runs = run_cells(args.host_jobs(), &cells, |&(kernel, scheme)| {
        eprintln!("fig12/13: {kernel} {scheme}...");
        let r = run_kernel(kernel, scale, &cfg, scheme);
        assert!(r.verified, "{kernel} {scheme}");
        r
    });

    let mut time_rows = Vec::new();
    let mut amp_rows = Vec::new();
    let mut lp_time_factors = Vec::new();
    let mut ep_time_factors = Vec::new();
    let mut lp_amp_factors = Vec::new();
    let mut ep_amp_factors = Vec::new();

    for (i, kernel) in KernelId::ALL.into_iter().enumerate() {
        let [base, lp, ep] = &runs[3 * i..3 * i + 3] else {
            unreachable!()
        };

        let bc = base.cycles().max(1);
        let bw = base.writes().max(1);
        time_rows.push(vec![
            kernel.name().to_string(),
            overhead_pct(lp.cycles(), bc),
            overhead_pct(ep.cycles(), bc),
        ]);
        amp_rows.push(vec![
            kernel.name().to_string(),
            overhead_pct(lp.writes(), bw),
            overhead_pct(ep.writes(), bw),
        ]);
        lp_time_factors.push(lp.cycles() as f64 / bc as f64);
        ep_time_factors.push(ep.cycles() as f64 / bc as f64);
        lp_amp_factors.push(lp.writes() as f64 / bw as f64);
        ep_amp_factors.push(ep.writes() as f64 / bw as f64);
    }
    time_rows.push(vec![
        "gmean".into(),
        format!("{:+.1}%", (gmean(&lp_time_factors) - 1.0) * 100.0),
        format!("{:+.1}%", (gmean(&ep_time_factors) - 1.0) * 100.0),
    ]);
    amp_rows.push(vec![
        "gmean".into(),
        format!("{:+.1}%", (gmean(&lp_amp_factors) - 1.0) * 100.0),
        format!("{:+.1}%", (gmean(&ep_amp_factors) - 1.0) * 100.0),
    ]);

    print_table(
        "Figure 12 — normalized execution time overhead vs base",
        &["Benchmark", "LP", "EP"],
        &time_rows,
    );
    let bars: Vec<(String, f64)> = KernelId::ALL
        .iter()
        .zip(&lp_time_factors)
        .map(|(k, f)| (format!("{k} LP"), (f - 1.0) * 100.0))
        .chain(
            KernelId::ALL
                .iter()
                .zip(&ep_time_factors)
                .map(|(k, f)| (format!("{k} EP"), (f - 1.0) * 100.0)),
        )
        .collect();
    print_bars("Execution-time overhead (%)", &bars, |v| {
        format!("{v:+.1}%")
    });
    println!("paper: LP 0.1%..3.5% (avg 1.1%) | EP 4.4%..17.9% (avg 9%)");

    print_table(
        "Figure 13 — normalized write amplification overhead vs base",
        &["Benchmark", "LP", "EP"],
        &amp_rows,
    );
    println!("paper: LP 0.1%..4.4% (avg 3%) | EP 0.2%..55% (avg 20.6%)");
}

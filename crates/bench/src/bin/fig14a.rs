//! Figure 14(a): sensitivity of LP and EP execution-time overhead to the
//! NVMM read/write latency, for tmm. Each latency pair is normalized to
//! the *base* run at the same latencies.
//!
//! Paper reference: as latencies grow from (60, 150) ns to (150, 300) ns,
//! EagerRecompute's overhead trends *up* (flushes, misses and barriers
//! all get slower) while Lazy Persistency's overhead shrinks.
//!
//! Run: `cargo run --release -p lp-bench --bin fig14a [--quick]`.

use lp_bench::{overhead_pct, print_table, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }

    let latencies = [(60u64, 150u64), (100, 200), (150, 300)];
    let mut rows = Vec::new();
    for (read_ns, write_ns) in latencies {
        eprintln!("fig14a: ({read_ns}, {write_ns}) ns...");
        let cfg = args.base_config().with_nvmm_latency_ns(read_ns, write_ns);
        let base = tmm::run(&cfg, params, Scheme::Base);
        assert!(base.verified);
        let lp = tmm::run(&cfg, params, Scheme::lazy_default());
        assert!(lp.verified);
        let ep = tmm::run(&cfg, params, Scheme::Eager);
        assert!(ep.verified);
        rows.push(vec![
            format!("({read_ns}, {write_ns}) ns"),
            overhead_pct(lp.cycles(), base.cycles()),
            overhead_pct(ep.cycles(), base.cycles()),
        ]);
    }
    print_table(
        "Figure 14(a) — execution-time overhead vs NVMM (read, write) latency",
        &["NVMM latency", "LP", "EP"],
        &rows,
    );
    println!("\npaper: EP overhead grows with latency; LP overhead shrinks");
}

//! Figure 14(a): sensitivity of LP and EP execution-time overhead to the
//! NVMM read/write latency, for tmm. Each latency pair is normalized to
//! the *base* run at the same latencies.
//!
//! Paper reference: as latencies grow from (60, 150) ns to (150, 300) ns,
//! EagerRecompute's overhead trends *up* (flushes, misses and barriers
//! all get slower) while Lazy Persistency's overhead shrinks.
//!
//! Run: `cargo run --release -p lp-bench --bin fig14a [--quick]`.

use lp_bench::{overhead_pct, print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }

    let latencies = [(60u64, 150u64), (100, 200), (150, 300)];
    let cells: Vec<(u64, u64, Scheme)> = latencies
        .iter()
        .flat_map(|&(r, w)| {
            [Scheme::Base, Scheme::lazy_default(), Scheme::Eager]
                .into_iter()
                .map(move |s| (r, w, s))
        })
        .collect();
    let runs = run_cells(args.host_jobs(), &cells, |&(read_ns, write_ns, scheme)| {
        eprintln!("fig14a: ({read_ns}, {write_ns}) ns {scheme}...");
        let cfg = args.base_config().with_nvmm_latency_ns(read_ns, write_ns);
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "({read_ns}, {write_ns}) {scheme}");
        run
    });
    let mut rows = Vec::new();
    for (i, (read_ns, write_ns)) in latencies.into_iter().enumerate() {
        let [base, lp, ep] = &runs[3 * i..3 * i + 3] else {
            unreachable!()
        };
        rows.push(vec![
            format!("({read_ns}, {write_ns}) ns"),
            overhead_pct(lp.cycles(), base.cycles()),
            overhead_pct(ep.cycles(), base.cycles()),
        ]);
    }
    print_table(
        "Figure 14(a) — execution-time overhead vs NVMM (read, write) latency",
        &["NVMM latency", "LP", "EP"],
        &rows,
    );
    println!("\npaper: EP overhead grows with latency; LP overhead shrinks");
}

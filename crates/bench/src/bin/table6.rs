//! Table VI: structural-hazard events (MSHR full, FUI, FUR, FUW) and L2
//! miss rate for tmm under base / EP / LP.
//!
//! Paper reference (normalized to base): EP MSHR 1.84, FUI 21.57,
//! FUR 22.4, FUW 31109 (absolute), L2MR 0.05; LP MSHR 0.95, FUI 1.11,
//! FUR 1.2, FUW 2 (absolute), L2MR 0.02; base L2MR 0.01.
//!
//! Run: `cargo run --release -p lp-bench --bin table6 [--quick]`.

use lp_bench::{print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();

    let schemes = [
        ("base (tmm)", Scheme::Base),
        ("tmm+EP", Scheme::Eager),
        ("tmm+LP", Scheme::lazy_default()),
    ];
    let runs = run_cells(args.host_jobs(), &schemes, |&(label, scheme)| {
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "{label}");
        eprintln!("  {label}: done");
        run
    });
    let mut rows = Vec::new();
    for ((label, _), run) in schemes.iter().zip(&runs) {
        let t = run.stats.core_totals();
        // L2MR reported as L2 misses per memory access (the per-access
        // definition under which the paper's base tmm shows 0.01).
        let l2mr = run.stats.mem.l2_misses as f64 / t.l1_accesses().max(1) as f64;
        rows.push(vec![
            label.to_string(),
            t.mshr_full_events.to_string(),
            t.fui_events.to_string(),
            t.fur_events.to_string(),
            t.fuw_events.to_string(),
            format!("{:.3}", l2mr),
        ]);
    }
    print_table(
        "Table VI — structural-hazard event counts (absolute; the paper reports \
MSHR/FUI/FUR normalized to base) & L2 misses per memory access",
        &["Scheme", "MSHR", "FUI", "FUR", "FUW", "L2MR"],
        &rows,
    );
    println!("\npaper: base 1.00/1.00/1.00/1/0.01 | EP 1.84/21.57/22.4/31109/0.05 | LP 0.95/1.11/1.2/2/0.02");
}

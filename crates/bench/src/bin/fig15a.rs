//! Figure 15(a): sensitivity of LP's execution-time overhead to the L2
//! cache size (256 KB / 512 KB / 1 MB), with the L2 miss rate.
//!
//! Paper reference: 256 KB → 6.5% overhead (L2MR > 4%); 512 KB → 0.2%
//! (L2MR 2%); 1 MB → 0.1% (L2MR 1.5%). Small caches evict the working
//! set + checksums early, hurting LP.
//!
//! Run: `cargo run --release -p lp-bench --bin fig15a [--quick]`.

use lp_bench::{overhead_pct, print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }

    let sizes = [256usize, 512, 1024];
    let cells: Vec<(usize, Scheme)> = sizes
        .iter()
        .flat_map(|&kb| {
            [Scheme::Base, Scheme::lazy_default()]
                .into_iter()
                .map(move |s| (kb, s))
        })
        .collect();
    let runs = run_cells(args.host_jobs(), &cells, |&(l2_kb, scheme)| {
        eprintln!("fig15a: L2 {l2_kb} KB {scheme}...");
        let cfg = args.base_config().with_l2_bytes(l2_kb * 1024);
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "L2 {l2_kb} KB {scheme}");
        run
    });
    let mut rows = Vec::new();
    for (i, l2_kb) in sizes.into_iter().enumerate() {
        let [base, lp] = &runs[2 * i..2 * i + 2] else {
            unreachable!()
        };
        rows.push(vec![
            format!("{l2_kb} KB"),
            overhead_pct(lp.cycles(), base.cycles()),
            format!("{:.3}", lp.stats.mem.l2_miss_rate()),
            format!("{:.3}", base.stats.mem.l2_miss_rate()),
        ]);
    }
    print_table(
        "Figure 15(a) — LP execution-time overhead vs L2 size",
        &["L2 size", "LP overhead", "LP L2MR", "base L2MR"],
        &rows,
    );
    println!("\npaper: 256KB -> 6.5% (L2MR>4%); 512KB -> 0.2% (2%); 1MB -> 0.1% (1.5%)");
}

//! Figure 15(a): sensitivity of LP's execution-time overhead to the L2
//! cache size (256 KB / 512 KB / 1 MB), with the L2 miss rate.
//!
//! Paper reference: 256 KB → 6.5% overhead (L2MR > 4%); 512 KB → 0.2%
//! (L2MR 2%); 1 MB → 0.1% (L2MR 1.5%). Small caches evict the working
//! set + checksums early, hurting LP.
//!
//! Run: `cargo run --release -p lp-bench --bin fig15a [--quick]`.

use lp_bench::{overhead_pct, print_table, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }

    let mut rows = Vec::new();
    for l2_kb in [256usize, 512, 1024] {
        eprintln!("fig15a: L2 {l2_kb} KB...");
        let cfg = args.base_config().with_l2_bytes(l2_kb * 1024);
        let base = tmm::run(&cfg, params, Scheme::Base);
        assert!(base.verified);
        let lp = tmm::run(&cfg, params, Scheme::lazy_default());
        assert!(lp.verified);
        rows.push(vec![
            format!("{l2_kb} KB"),
            overhead_pct(lp.cycles(), base.cycles()),
            format!("{:.3}", lp.stats.mem.l2_miss_rate()),
            format!("{:.3}", base.stats.mem.l2_miss_rate()),
        ]);
    }
    print_table(
        "Figure 15(a) — LP execution-time overhead vs L2 size",
        &["L2 size", "LP overhead", "LP L2MR", "base L2MR"],
        &rows,
    );
    println!("\npaper: 256KB -> 6.5% (L2MR>4%); 512KB -> 0.2% (2%); 1MB -> 0.1% (1.5%)");
}

//! Figure 10: execution time and number of NVMM writes for tiled matrix
//! multiplication under base / LP / EP / WAL, normalized to base.
//!
//! Paper reference values: base 1.00/1.00, tmm+LP 1.002/1.003,
//! tmm+EP 1.12/1.36, tmm+WAL 5.97/3.83.
//!
//! Run: `cargo run --release -p lp-bench --bin fig10` (add `--quick` for
//! a scaled-down smoke run).

use lp_bench::{norm, print_bars, print_table, run_cells, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};

fn main() {
    let args = BenchArgs::parse();
    let mut params = if args.quick {
        TmmParams::bench_default()
    } else {
        TmmParams::paper_default()
    };
    if let Some(t) = args.threads {
        params.threads = t;
    }
    let cfg = args.base_config();
    eprintln!(
        "fig10: tmm n={} bsize={} threads={} kk_window={}",
        params.n, params.bsize, params.threads, params.kk_window
    );

    let schemes = [
        ("base (tmm)", Scheme::Base),
        ("tmm+LP", Scheme::lazy_default()),
        ("tmm+EP", Scheme::Eager),
        ("tmm+WAL", Scheme::Wal),
    ];
    let runs = run_cells(args.host_jobs(), &schemes, |&(label, scheme)| {
        let t0 = std::time::Instant::now();
        let run = tmm::run(&cfg, params, scheme);
        assert!(run.verified, "{label}: output verification failed");
        eprintln!("  {label}: done");
        (run, t0.elapsed())
    });

    let mut rows = Vec::new();
    let mut time_bars = Vec::new();
    let mut write_bars = Vec::new();
    let (bc, bw) = (runs[0].0.cycles(), runs[0].0.writes());
    for ((label, _), (run, host)) in schemes.iter().zip(&runs) {
        let (cycles, writes) = (run.cycles(), run.writes());
        rows.push(vec![
            (*label).to_string(),
            norm(cycles, bc),
            norm(writes, bw),
            cycles.to_string(),
            writes.to_string(),
            format!("{host:.1?}"),
        ]);
        time_bars.push(((*label).to_string(), cycles as f64 / bc as f64));
        write_bars.push(((*label).to_string(), writes as f64 / bw as f64));
    }
    print_table(
        "Figure 10 — tmm execution time & NVMM writes (normalized to base)",
        &[
            "Scheme",
            "Exe Time",
            "Num Writes",
            "cycles",
            "writes",
            "host time",
        ],
        &rows,
    );
    print_bars("Normalized execution time", &time_bars, |v| {
        format!("{v:.3}x")
    });
    print_bars("Normalized NVMM writes", &write_bars, |v| {
        format!("{v:.3}x")
    });
    println!("\npaper: base 1.00/1.00 | LP 1.002/1.003 | EP 1.12/1.36 | WAL 5.97/3.83");
}

//! Table VII: Lazy Persistency execution-time overhead on a *real*
//! machine (the host), normalized to the non-persistent base case.
//!
//! LP needs no hardware support, so it runs on any stock machine; only
//! the checksum-computation overhead is measurable (this host is
//! DRAM-based, like the paper's Opteron testbed).
//!
//! Paper reference: TMM 0.8%, Cholesky 1.1%, 2D-conv 0.9%, Gauss 2.1%,
//! FFT 1.1%, gmean 1.1%.
//!
//! Run: `cargo run --release -p lp-bench --bin table7 [--quick] [--threads N]`.

use lp_bench::{gmean, print_table, BenchArgs};
use lp_kernels::native::{run_native, NativeKernel};

fn main() {
    let args = BenchArgs::parse();
    let threads = args
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get().min(8)));
    let reps = if args.quick { 2 } else { 3 };

    let mut rows = Vec::new();
    let mut factors = Vec::new();
    for kernel in NativeKernel::ALL {
        let n = match (kernel, args.quick) {
            (NativeKernel::Fft, false) => 1 << 20,
            (NativeKernel::Fft, true) => 1 << 16,
            (NativeKernel::Gauss, false) => 1024,
            (NativeKernel::Cholesky, false) => 768,
            (NativeKernel::Conv2d, false) => 2048,
            (NativeKernel::Tmm, false) => 512,
            (_, true) => 192,
        };
        eprintln!(
            "table7: {} (n={n}, {threads} threads, {reps} reps)...",
            kernel.name()
        );
        let r = run_native(kernel, n, threads, reps);
        assert!(r.outputs_match, "{}: variants disagree", kernel.name());
        factors.push(1.0 + r.overhead().max(0.0));
        rows.push(vec![
            kernel.name().to_string(),
            format!("{:+.1}%", r.overhead() * 100.0),
            format!("{:.1?}", r.base),
            format!("{:.1?}", r.lp),
        ]);
    }
    rows.push(vec![
        "gmean".into(),
        format!("{:+.1}%", (gmean(&factors) - 1.0) * 100.0),
        "-".into(),
        "-".into(),
    ]);
    print_table(
        "Table VII — LP execution-time overhead on the real host",
        &["Benchmark", "LP overhead", "base time", "LP time"],
        &rows,
    );
    println!(
        "\npaper: TMM 0.8% | Cholesky 1.1% | 2D-conv 0.9% | Gauss 2.1% | FFT 1.1% | gmean 1.1%"
    );
}

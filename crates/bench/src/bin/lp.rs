//! `lp` — the command-line driver: run any kernel under any persistency
//! scheme at any size, optionally crash it and recover.
//!
//! ```sh
//! cargo run --release -p lp-bench --bin lp -- \
//!     --kernel tmm --scheme lp --n 256 --threads 8
//! cargo run --release -p lp-bench --bin lp -- \
//!     --kernel gauss --scheme wal --crash-ops 50000
//! cargo run --release -p lp-bench --bin lp -- --help
//! ```

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::cholesky::{Cholesky, CholeskyParams};
use lp_kernels::conv2d::{Conv2d, Conv2dParams};
use lp_kernels::fft::{Fft, FftParams};
use lp_kernels::gauss::{Gauss, GaussParams};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

const HELP: &str = "\
lp — run a kernel on the NVMM simulator under a persistency scheme

USAGE:
    lp [--kernel K] [--scheme S] [--n N] [--threads T] [--crash-ops OPS]
       [--l2-kb KB] [--read-ns NS] [--write-ns NS] [--seed SEED]

OPTIONS:
    --kernel K      tmm | cholesky | conv2d | gauss | fft   (default tmm)
    --scheme S      base | lp | lp-parity | lp-adler | lp-crc | lp-combined |
                    lp-eager-ck | ep | wal                  (default lp)
    --n N           problem size (kernel-specific default)
    --threads T     worker threads (default 4)
    --crash-ops OPS inject a crash after OPS memory operations, then recover
    --l2-kb KB      shared L2 size in KiB (default 512)
    --read-ns NS    NVMM read latency (default 150)
    --write-ns NS   NVMM write latency (default 300)
    --seed SEED     input seed (default 42)
";

#[derive(Debug)]
struct Cli {
    kernel: String,
    scheme: Scheme,
    n: Option<usize>,
    threads: usize,
    crash_ops: Option<u64>,
    l2_kb: usize,
    read_ns: u64,
    write_ns: u64,
    seed: u64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        kernel: "tmm".into(),
        scheme: Scheme::lazy_default(),
        n: None,
        threads: 4,
        crash_ops: None,
        l2_kb: 512,
        read_ns: 150,
        write_ns: 300,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            "--kernel" => cli.kernel = next(&mut args, "--kernel"),
            "--scheme" => {
                cli.scheme = match next(&mut args, "--scheme").as_str() {
                    "base" => Scheme::Base,
                    "lp" => Scheme::Lazy(ChecksumKind::Modular),
                    "lp-parity" => Scheme::Lazy(ChecksumKind::Parity),
                    "lp-adler" => Scheme::Lazy(ChecksumKind::Adler32),
                    "lp-crc" => Scheme::Lazy(ChecksumKind::Crc32),
                    "lp-combined" => Scheme::Lazy(ChecksumKind::ModularParity),
                    "lp-eager-ck" => Scheme::LazyEagerCk(ChecksumKind::Modular),
                    "ep" => Scheme::Eager,
                    "wal" => Scheme::Wal,
                    other => panic!("unknown scheme {other}; try --help"),
                }
            }
            "--n" => cli.n = Some(next(&mut args, "--n").parse().expect("--n number")),
            "--threads" => cli.threads = next(&mut args, "--threads").parse().expect("number"),
            "--crash-ops" => {
                cli.crash_ops = Some(next(&mut args, "--crash-ops").parse().expect("number"));
            }
            "--l2-kb" => cli.l2_kb = next(&mut args, "--l2-kb").parse().expect("number"),
            "--read-ns" => cli.read_ns = next(&mut args, "--read-ns").parse().expect("number"),
            "--write-ns" => cli.write_ns = next(&mut args, "--write-ns").parse().expect("number"),
            "--seed" => cli.seed = next(&mut args, "--seed").parse().expect("number"),
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    cli
}

/// Run one kernel generically: setup, (crashed?) run, recovery, verify.
macro_rules! drive {
    ($ty:ident, $params:expr, $cli:expr, $cfg:expr) => {{
        let params = $params;
        let mut machine = Machine::new($cfg.with_cores($cli.threads));
        let work = $ty::setup(&mut machine, params, $cli.scheme).expect("setup");
        if let Some(ops) = $cli.crash_ops {
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
        }
        let t0 = std::time::Instant::now();
        let outcome = machine.run(work.plans());
        let stats = machine.stats();
        println!("outcome: {outcome:?} (host {:?})", t0.elapsed());
        println!("stats:   {}", stats.summary());
        if outcome == Outcome::Crashed {
            machine.clear_crash_trigger();
            machine.take_stats();
            let r = work.recover(&mut machine);
            println!(
                "recover: checked {} regions, {} inconsistent, recomputed {} in {} cycles",
                r.regions_checked, r.regions_inconsistent, r.recomputed_regions, r.cycles
            );
        }
        machine.drain_caches();
        let ok = work.verify(&machine);
        println!("verify:  output matches golden reference: {ok}");
        assert!(ok, "verification failed");
    }};
}

fn main() {
    let cli = parse_cli();
    let cfg = MachineConfig::default()
        .with_nvmm_bytes(512 << 20)
        .with_l2_bytes(cli.l2_kb * 1024)
        .with_nvmm_latency_ns(cli.read_ns, cli.write_ns);
    println!(
        "lp: kernel={} scheme={} threads={} l2={}KB nvmm=({},{})ns",
        cli.kernel, cli.scheme, cli.threads, cli.l2_kb, cli.read_ns, cli.write_ns
    );
    match cli.kernel.as_str() {
        "tmm" => drive!(
            Tmm,
            TmmParams {
                n: cli.n.unwrap_or(256),
                bsize: 16,
                threads: cli.threads,
                kk_window: 2,
                seed: cli.seed,
            },
            cli,
            cfg
        ),
        "cholesky" => drive!(
            Cholesky,
            CholeskyParams {
                n: cli.n.unwrap_or(256),
                bsize: 32,
                threads: cli.threads,
                col_window: 32,
                seed: cli.seed,
            },
            cli,
            cfg
        ),
        "conv2d" => drive!(
            Conv2d,
            Conv2dParams {
                n: cli.n.unwrap_or(256),
                bsize: 16,
                threads: cli.threads,
                block_window: 8,
                seed: cli.seed,
            },
            cli,
            cfg
        ),
        "gauss" => drive!(
            Gauss,
            GaussParams {
                n: cli.n.unwrap_or(512),
                bsize: 16,
                threads: cli.threads,
                pivot_window: 4,
                seed: cli.seed,
            },
            cli,
            cfg
        ),
        "fft" => drive!(
            Fft,
            FftParams {
                n: cli.n.unwrap_or(16 * 1024),
                chunks: 16,
                threads: cli.threads,
                stage_window: 5,
                seed: cli.seed,
            },
            cli,
            cfg
        ),
        other => panic!("unknown kernel {other}; try --help"),
    }
}

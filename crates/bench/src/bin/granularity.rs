//! Region-granularity study (Section III-C): the checksum-overhead /
//! recovery-cost trade-off that drives the paper's choice of the `ii`
//! loop as the LP region.
//!
//! Sweeping the tile size changes the region size (one region is a
//! `bsize × n` strip per `kk`): smaller regions mean more checksums (more
//! overhead, finer recovery); larger regions mean fewer checksums but
//! more lost work to recompute after a crash. This binary measures both
//! sides on tmm.
//!
//! Run: `cargo run --release -p lp-bench --bin granularity [--quick]`.

use lp_bench::{overhead_pct, print_table, BenchArgs};
use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, Tmm, TmmParams};
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn main() {
    let args = BenchArgs::parse();
    let n = if args.quick { 128 } else { 512 };
    let threads = args.threads.unwrap_or(4);
    let cfg = args.base_config();

    let mut rows = Vec::new();
    for bsize in [8usize, 16, 32, 64] {
        let params = TmmParams {
            n,
            bsize,
            threads,
            kk_window: 2,
            seed: 42,
        };
        eprintln!("granularity: bsize={bsize}...");
        // Overhead side: LP vs base at this granularity.
        let base = tmm::run(&cfg, params, Scheme::Base);
        let lp = tmm::run(&cfg, params, Scheme::lazy_default());
        assert!(base.verified && lp.verified);
        let regions = params.window() * params.nb();

        // Recovery side: identical-fraction crash, measure recomputation.
        let mut machine = Machine::new(cfg.clone().with_cores(threads));
        let tmm_work = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(
            (base.stats.instructions() / 16).max(1_000),
        ));
        let (inconsistent, recovery_cycles) = if machine.run(tmm_work.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            machine.take_stats();
            let r = tmm_work.recover(&mut machine);
            machine.drain_caches();
            assert!(tmm_work.verify(&machine), "bsize={bsize}");
            (r.regions_inconsistent, r.cycles)
        } else {
            (0, 0)
        };

        rows.push(vec![
            format!("{bsize} ({} regions)", regions),
            overhead_pct(lp.cycles(), base.cycles()),
            tmm_work.handles.table.bytes().to_string(),
            inconsistent.to_string(),
            recovery_cycles.to_string(),
        ]);
    }
    print_table(
        "Section III-C — LP region granularity trade-off (tmm strip height)",
        &[
            "bsize",
            "LP exe overhead",
            "table bytes",
            "regions recomputed",
            "recovery cycles",
        ],
        &rows,
    );
    println!("\npaper: ii granularity balances checksum overhead against lost work;\nkk would risk recomputing nearly the whole run, j-level multiplies checksums.");
}

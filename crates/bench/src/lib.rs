//! # lp-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (Section
//! V–VI); see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured record. Every binary accepts `--quick` (scaled-down
//! inputs for smoke runs) and prints an aligned table whose rows mirror
//! the paper's artifact.
//!
//! This library holds the shared plumbing: argument parsing, table
//! rendering, and normalization formatting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use lp_sim::config::MachineConfig;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Use scaled-down inputs (`--quick`).
    pub quick: bool,
    /// Override *simulated* worker-thread count (`--threads N`) — the
    /// number of logical cores the kernel itself is scheduled across.
    pub threads: Option<usize>,
    /// Host worker threads for fanning the experiment matrix
    /// (`--jobs N`, make-style). Defaults to the machine's available
    /// parallelism; results are identical at any job count.
    pub jobs: Option<usize>,
}

impl BenchArgs {
    /// Parse from `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--threads" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--threads needs a number");
                    out.threads = Some(v);
                }
                "--jobs" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .expect("--jobs needs a number >= 1");
                    out.jobs = Some(v);
                }
                "--help" | "-h" => {
                    println!("usage: <bin> [--quick] [--threads N] [--jobs N]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        out
    }

    /// The machine configuration experiments start from (Table II plus a
    /// roomy NVMM image).
    pub fn base_config(&self) -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(512 << 20)
    }

    /// Host worker threads to fan the experiment matrix across.
    pub fn host_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(lp_sim::par::available_threads)
    }
}

/// Run every cell of an experiment matrix across `jobs` host threads,
/// returning results in cell order.
///
/// Each cell runs a full, independent simulation (the simulator is
/// deterministic and machines are `Send`), so the output is identical to
/// a serial walk of the matrix — only the wall-clock changes. Binaries
/// collect the cells first, fan out here, then render their tables from
/// the ordered results. Workers accumulate locally and merge once
/// ([`lp_sim::par::par_map_collect`]), so big result structs never
/// contend mid-run.
pub fn run_cells<T, R, F>(jobs: usize, cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    lp_sim::par::par_map_collect(jobs, cells, |_, cell| run(cell))
}

/// Format `x / base` as a normalized factor, e.g. `1.002x`.
pub fn norm(x: u64, base: u64) -> String {
    if base == 0 {
        "n/a".into()
    } else {
        format!("{:.3}x", x as f64 / base as f64)
    }
}

/// Format `x / base - 1` as a percentage overhead, e.g. `+0.2%`.
pub fn overhead_pct(x: u64, base: u64) -> String {
    if base == 0 {
        "n/a".into()
    } else {
        format!("{:+.1}%", (x as f64 / base as f64 - 1.0) * 100.0)
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Render a horizontal ASCII bar chart (the paper's figures are bar
/// charts; this keeps the binaries' output visually comparable).
///
/// Bars scale to the maximum value; each row shows the label, the bar,
/// and the value formatted with `fmt`.
pub fn print_bars(title: &str, rows: &[(String, f64)], fmt: impl Fn(f64) -> String) {
    println!("\n-- {title} --");
    let width = 46usize;
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round().max(0.0) as usize
        } else {
            0
        };
        println!(
            "{:<label_w$}  {}{}  {}",
            label,
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
            fmt(*v),
        );
    }
}

/// Geometric mean of factors.
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_formats() {
        assert_eq!(norm(1002, 1000), "1.002x");
        assert_eq!(norm(5, 0), "n/a");
    }

    #[test]
    fn overhead_formats() {
        assert_eq!(overhead_pct(1120, 1000), "+12.0%");
        assert_eq!(overhead_pct(990, 1000), "-1.0%");
    }

    #[test]
    fn bars_do_not_panic_on_edge_cases() {
        print_bars("empty", &[], |v| format!("{v}"));
        print_bars("zeros", &[("a".into(), 0.0), ("b".into(), 0.0)], |v| {
            format!("{v:.1}")
        });
        print_bars(
            "normal",
            &[("base".into(), 1.0), ("wal".into(), 3.1)],
            |v| format!("{v:.2}x"),
        );
    }

    #[test]
    fn gmean_of_identity() {
        assert!((gmean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 1.0);
    }
}

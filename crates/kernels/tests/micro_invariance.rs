//! Differential invariance suite for the simulator hot path.
//!
//! The timing model is a semantic contract: performance work on the
//! memory system (paged NVMM overlays, flattened cache lookup, batched
//! dispatch) must be *pure wall-clock* optimization. This suite pins, for
//! the full kernel × scheme Micro matrix, everything the timing model and
//! the durable image produce:
//!
//! - `sim_cycles` (max core cycle count at completion),
//! - `mem_ops` (the memory system's global operation counter),
//! - per-class op counts (loads / stores / flushes / fences),
//! - total NVMM line writes, and
//! - an FNV-1a hash of the final durable NVMM image (post-drain).
//!
//! The golden file was captured on the pre-overhaul memory system; any
//! drift in any cell is a timing-model change and fails the suite.
//! Regenerate (only when the timing model changes *on purpose*) with:
//!
//! ```text
//! LP_INVARIANCE_BLESS=1 cargo test -p lp-kernels --test micro_invariance
//! ```

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::addr::Addr;
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};

/// The scheme column of the matrix (kept in sync with the experiment
/// harness's scheme sweep; Adler-32 included so the checksum fold order
/// of a non-commutative code is pinned too).
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Base,
        Scheme::Lazy(ChecksumKind::Modular),
        Scheme::Lazy(ChecksumKind::Adler32),
        Scheme::LazyParity(ChecksumKind::Crc32),
        Scheme::LazyEagerCk(ChecksumKind::Modular),
        Scheme::Eager,
        Scheme::Wal,
    ]
}

/// FNV-1a over the heap-used prefix of the durable NVMM image.
fn image_hash(machine: &Machine) -> u64 {
    let used = machine.heap_used() as usize;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = vec![0u8; 4096];
    let mut off = 0usize;
    while off < used {
        let n = buf.len().min(used - off);
        machine
            .mem()
            .nvmm()
            .peek_bytes(Addr(off as u64), &mut buf[..n]);
        for &b in &buf[..n] {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        off += n;
    }
    h
}

/// One matrix cell, formatted as a golden line.
fn run_cell(kernel: KernelId, scheme: Scheme) -> String {
    let cfg = MachineConfig::default().with_nvmm_bytes(8 << 20);
    let mut prep = prepare_kernel(kernel, Scale::Micro, &cfg, scheme);
    let plans = std::mem::take(&mut prep.plans);
    let outcome = prep.machine.run(plans);
    assert_eq!(outcome, Outcome::Completed, "{kernel}/{scheme}");
    // Stats snapshot *before* the drain, like the experiment harness.
    let stats = prep.machine.stats();
    let mem_ops = prep.machine.mem().mem_ops();
    prep.machine.drain_caches();
    assert!((prep.verify)(&prep.machine), "{kernel}/{scheme} verify");
    let t = stats.core_totals();
    format!(
        "{}/{} cycles={} mem_ops={} loads={} stores={} flushes={} fences={} nvmm_writes={} image={:016x}",
        kernel.name(),
        scheme,
        stats.exec_cycles(),
        mem_ops,
        t.loads,
        t.stores,
        t.flushes,
        t.fences,
        stats.nvmm_writes(),
        image_hash(&prep.machine),
    )
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/micro_invariance.txt")
}

#[test]
fn micro_matrix_timing_and_image_pinned() {
    let mut lines = Vec::new();
    for kernel in KernelId::ALL {
        for scheme in schemes() {
            lines.push(run_cell(kernel, scheme));
        }
    }
    let actual = format!("{}\n", lines.join("\n"));
    let path = golden_path();
    if std::env::var_os("LP_INVARIANCE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir goldens");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with LP_INVARIANCE_BLESS=1",
            path.display()
        )
    });
    if expected != actual {
        let diff: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .filter(|(e, a)| e != a)
            .map(|(e, a)| format!("- {e}\n+ {a}"))
            .collect();
        panic!(
            "timing-model drift in {} cell(s) — the hot-path overhaul must be \
             cycle-invariant (bless only for intentional timing changes):\n{}",
            diff.len(),
            diff.join("\n"),
        );
    }
}

//! Recovery write-efficiency: the quarantine/replay rebuild paths defer
//! durability to one hoisted sink commit instead of flushing and fencing
//! every replay round (`lp-lint` rule W4; dynamic twin: the `flushes` /
//! `fences` counters). These tests crash a real run mid-window, run the
//! real recovery, and check the recovery-side counters; the sink
//! micro-benchmark pins the dedup arithmetic a per-iteration sink (the
//! pre-fix shape) cannot match: re-flushing the same strip lines every
//! round multiplies `flushes` and pays one fence per round instead of
//! one per rebuild.

use lp_core::recovery::RecoveryStats;
use lp_core::scheme::Scheme;
use lp_kernels::common::{EagerOnlySink, StoreSink};
use lp_kernels::gauss::{Gauss, GaussParams};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn cfg(cores: usize) -> MachineConfig {
    MachineConfig::default()
        .with_cores(cores)
        .with_nvmm_bytes(16 << 20)
}

/// Crash a TMM run at ~3/4 of its clean-run cycle count, recover, and
/// return the recovery-only `(flushes, fences)` plus the recovery stats.
fn tmm_recovery(scheme: Scheme) -> (u64, u64, RecoveryStats) {
    let params = TmmParams {
        n: 32,
        bsize: 8,
        threads: 2,
        kk_window: 4,
        seed: 42,
    };
    let mut m = Machine::new(cfg(params.threads));
    let k = Tmm::setup(&mut m, params, scheme).unwrap();
    assert_eq!(m.run(k.plans()), Outcome::Completed);
    let total = m.stats().exec_cycles();

    let mut m = Machine::new(cfg(params.threads));
    let k = Tmm::setup(&mut m, params, scheme).unwrap();
    m.set_crash_trigger(CrashTrigger::AtCycle(total * 3 / 4));
    assert_eq!(m.run(k.plans()), Outcome::Crashed);
    let _ = m.take_stats();
    m.clear_crash_trigger();
    let r = k.recover(&mut m);
    let s = m.take_stats().core_totals();
    m.drain_caches();
    assert!(k.verify(&m), "recovery must repair the crash");
    (s.flushes, s.fences, r)
}

/// Same shape for Gauss.
fn gauss_recovery(scheme: Scheme) -> (u64, u64, RecoveryStats) {
    let params = GaussParams {
        n: 32,
        bsize: 8,
        threads: 2,
        pivot_window: 4,
        seed: 11,
    };
    let mut m = Machine::new(cfg(params.threads));
    let k = Gauss::setup(&mut m, params, scheme).unwrap();
    assert_eq!(m.run(k.plans()), Outcome::Completed);
    let total = m.stats().exec_cycles();

    let mut m = Machine::new(cfg(params.threads));
    let k = Gauss::setup(&mut m, params, scheme).unwrap();
    m.set_crash_trigger(CrashTrigger::AtCycle(total * 3 / 4));
    assert_eq!(m.run(k.plans()), Outcome::Crashed);
    let _ = m.take_stats();
    m.clear_crash_trigger();
    let r = k.recover(&mut m);
    let s = m.take_stats().core_totals();
    m.drain_caches();
    assert!(k.verify(&m), "recovery must repair the crash");
    (s.flushes, s.fences, r)
}

#[test]
fn tmm_eager_recovery_counters() {
    let (flushes, fences, r) = tmm_recovery(Scheme::Eager);
    println!(
        "tmm/eager recovery: flushes={flushes} fences={fences} repaired={}",
        r.recomputed_regions
    );
    assert!(r.recomputed_regions > 0, "crash must leave work to repair");
    // Measured (deterministic): 1417 flushes / 18 fences with the
    // rebuild sink hoisted; 1513 / 21 with the pre-fix per-round sink.
    // The bounds sit between the two so the per-round shape fails.
    assert!(flushes <= 1460, "rebuild re-flushes strip lines: {flushes}");
    assert!(fences <= 19, "rebuild fences once per round: {fences}");
}

#[test]
fn gauss_eager_recovery_counters() {
    let (flushes, fences, r) = gauss_recovery(Scheme::Eager);
    println!(
        "gauss/eager recovery: flushes={flushes} fences={fences} repaired={}",
        r.recomputed_regions
    );
    assert!(r.recomputed_regions > 0, "crash must leave work to repair");
    // Measured (deterministic): 252 flushes / 5 fences with the replay
    // sink hoisted out of the triple loop; 600 / 20 per-block.
    assert!(flushes <= 400, "replay re-flushes block lines: {flushes}");
    assert!(fences <= 10, "replay fences once per block: {fences}");
}

/// The dedup arithmetic with the real sink: replaying N rounds over the
/// same lines through one hoisted [`EagerOnlySink`] flushes each line
/// once and fences once; a per-round sink pays both per round.
#[test]
fn hoisted_sink_coalesces_replay_rounds() {
    let rounds = 4usize;
    let elems = 16usize; // two cache lines of f64
    let run = |hoisted: bool| -> (u64, u64) {
        let mut m = Machine::new(cfg(1));
        let a = m.alloc::<f64>(elems).unwrap();
        let mut ctx = m.ctx(0);
        if hoisted {
            let mut sink = EagerOnlySink::default();
            for _ in 0..rounds {
                for i in 0..elems {
                    sink.store(&mut ctx, a, i, 1.0);
                }
            }
            sink.commit(&mut ctx);
        } else {
            for _ in 0..rounds {
                let mut sink = EagerOnlySink::default();
                for i in 0..elems {
                    sink.store(&mut ctx, a, i, 1.0);
                }
                sink.commit(&mut ctx);
            }
        }
        let t = m.stats().core_totals();
        (t.flushes, t.fences)
    };
    let (f_per, s_per) = run(false);
    let (f_hoist, s_hoist) = run(true);
    // 16 f64 = 2 lines: per-round pays 2 flushes + 1 fence × 4 rounds.
    assert_eq!((f_per, s_per), (8, 4));
    assert_eq!((f_hoist, s_hoist), (2, 1));
}

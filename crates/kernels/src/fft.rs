//! Fast Fourier transform (`FFT` in the paper's Table V; the paper windows
//! it to ~5% of runtime — here, to a configurable number of butterfly
//! stages).
//!
//! Radix-2 decimation-in-time over complex data stored as separate
//! re/im arrays, computed *out-of-place per stage* between two ping-pong
//! buffer pairs so each stage's writes are disjoint from its reads:
//!
//! * stage 0 performs the bit-reversal permutation from the (read-only,
//!   durable) input into buffer 0;
//! * stage `s ≥ 1` computes every output element independently from two
//!   source elements of buffer `(s−1) mod 2` into buffer `s mod 2`
//!   (an element's butterfly partner is found by position within its
//!   group, so no region ever writes outside its own index range).
//!
//! Regions are contiguous index chunks per stage; a barrier separates
//! stages (butterflies cross chunk boundaries).
//!
//! Recovery: a chunk of stage `s` can only be recomputed if stage `s−1`'s
//! buffer survived — which ping-pong reuse may have destroyed. The driver
//! therefore finds the *newest fully consistent stage* and replays from
//! there; if none survived it replays everything from the preserved input
//! (always possible). This is the honest consequence of in-place buffer
//! reuse that Section III-E's associativity discussion anticipates.

use crate::common::{
    random_values, round_robin_blocks, KernelRun, RecoverySink, SchemeSink, StoreSink, IDX_OPS,
    MUL_ADD_OPS,
};
use lp_core::checksum::ChecksumKind;
use lp_core::recovery::{range_poisoned, recompute_checksum, RecoveryStats};
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome, ThreadPlan};
use lp_sim::mem::PArray;

/// Modelled ALU ops for one twiddle-factor evaluation (a libm sin/cos
/// pair plus the angle arithmetic).
const TWIDDLE_OPS: u64 = 40;

/// Problem and windowing parameters for one FFT run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftParams {
    /// Points; must be a power of two.
    pub n: usize,
    /// Chunks per stage (regions); must divide `n`.
    pub chunks: usize,
    /// Worker threads.
    pub threads: usize,
    /// Stages to simulate, *including* the bit-reversal stage 0; capped at
    /// `log2(n) + 1`.
    pub stage_window: usize,
    /// Input seed.
    pub seed: u64,
}

impl FftParams {
    /// Smallest meaningful parameters, sized for exhaustive crash-state
    /// model checking (one full replay per crash point).
    pub fn micro() -> Self {
        FftParams {
            n: 64,
            chunks: 2,
            threads: 2,
            stage_window: 2,
            seed: 31,
        }
    }

    /// Parameters sized for fast unit tests.
    pub fn test_small() -> Self {
        FftParams {
            n: 256,
            chunks: 4,
            threads: 2,
            stage_window: 4,
            seed: 31,
        }
    }

    /// Bench-scale parameters (16Ki points, ~1/3 of the stages).
    pub fn bench_default() -> Self {
        FftParams {
            n: 16 * 1024,
            chunks: 16,
            threads: 8,
            stage_window: 5,
            seed: 31,
        }
    }

    /// Paper-scale parameters: the paper transforms a 100k-node vector
    /// and simulates ~5% of the run; 128Ki points with a 5-stage window
    /// is the nearest power-of-two equivalent.
    pub fn paper_default() -> Self {
        FftParams {
            n: 128 * 1024,
            chunks: 16,
            threads: 8,
            stage_window: 5,
            seed: 31,
        }
    }

    /// log2(n).
    pub fn log2n(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// Effective stage count (capped at the full transform).
    pub fn window(&self) -> usize {
        self.stage_window.min(self.log2n() + 1)
    }

    /// Elements per chunk.
    pub fn chunk_len(&self) -> usize {
        self.n / self.chunks
    }

    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.n.is_power_of_two() || self.n < 4 {
            return Err(format!("n={} must be a power of two >= 4", self.n));
        }
        if self.chunks == 0 || !self.n.is_multiple_of(self.chunks) {
            return Err(format!("chunks={} must divide n={}", self.chunks, self.n));
        }
        if self.threads == 0 || self.stage_window == 0 {
            return Err("threads and stage_window must be >= 1".into());
        }
        Ok(())
    }
}

/// One complex buffer pair in persistent memory.
#[derive(Debug, Clone, Copy)]
struct CBuf {
    re: PArray<f64>,
    im: PArray<f64>,
}

/// A configured FFT workload.
#[derive(Debug, Clone)]
pub struct Fft {
    /// Parameters.
    pub params: FftParams,
    /// The active scheme.
    pub scheme: Scheme,
    input: CBuf,
    bufs: [CBuf; 2],
    /// Scheme support structures.
    pub handles: SchemeHandles,
}

/// Bit-reverse `i` within `bits` bits.
///
/// # Examples
///
/// ```
/// assert_eq!(lp_kernels::fft::bit_reverse(0b0001, 4), 0b1000);
/// ```
pub fn bit_reverse(i: usize, bits: usize) -> usize {
    let mut out = 0usize;
    for b in 0..bits {
        if i & (1 << b) != 0 {
            out |= 1 << (bits - 1 - b);
        }
    }
    out
}

impl Fft {
    /// Allocate and initialize on `machine`.
    ///
    /// # Errors
    ///
    /// Returns allocation or validation failures as strings.
    pub fn setup(machine: &mut Machine, params: FftParams, scheme: Scheme) -> Result<Self, String> {
        params.validate()?;
        let n = params.n;
        let alloc_buf = |machine: &mut Machine| -> Result<CBuf, String> {
            Ok(CBuf {
                re: machine.alloc::<f64>(n).map_err(|e| e.to_string())?,
                im: machine.alloc::<f64>(n).map_err(|e| e.to_string())?,
            })
        };
        let input = alloc_buf(machine)?;
        let bufs = [alloc_buf(machine)?, alloc_buf(machine)?];
        machine.poke_slice(input.re, 0, &random_values(params.seed, n));
        machine.poke_slice(input.im, 0, &random_values(params.seed ^ 0xf457, n));
        for b in &bufs {
            machine.poke_slice(b.re, 0, &vec![0.0; n]);
            machine.poke_slice(b.im, 0, &vec![0.0; n]);
        }
        let handles = SchemeHandles::alloc(
            machine,
            scheme,
            params.window() * params.chunks,
            params.threads,
            2 * params.chunk_len() + 8,
        )
        .map_err(|e| e.to_string())?;
        Ok(Fft {
            params,
            scheme,
            input,
            bufs,
            handles,
        })
    }

    /// Checksum-table key of region `(stage, chunk)`.
    pub fn key(&self, stage: usize, chunk: usize) -> usize {
        stage * self.params.chunks + chunk
    }

    /// The buffer written by `stage`.
    fn dst(&self, stage: usize) -> CBuf {
        self.bufs[stage % 2]
    }

    /// Round-robin chunk ownership.
    pub fn ownership(&self) -> Vec<Vec<usize>> {
        round_robin_blocks(self.params.chunks, self.params.threads)
    }

    /// One region: compute the chunk's output elements for `stage`.
    /// Stores go re-then-im per element, ascending index.
    fn region_body<S: StoreSink>(
        &self,
        ctx: &mut CoreCtx<'_>,
        stage: usize,
        chunk: usize,
        sink: &mut S,
    ) {
        let len = self.params.chunk_len();
        let dst = self.dst(stage);
        let range = chunk * len..(chunk + 1) * len;
        if stage == 0 {
            let bits = self.params.log2n();
            for i in range {
                let src = bit_reverse(i, bits);
                let re = ctx.load(self.input.re, src);
                let im = ctx.load(self.input.im, src);
                ctx.compute(IDX_OPS * 4);
                sink.store(ctx, dst.re, i, re);
                sink.store(ctx, dst.im, i, im);
            }
            return;
        }
        let src = self.bufs[(stage - 1) % 2];
        let half = 1usize << (stage - 1); // butterflies span 2^stage points
        let group = half * 2;
        for i in range {
            let pos = i & (group - 1);
            let base = i - pos;
            let (s1, s2, sign, tpos) = if pos < half {
                (i, i + half, 1.0, pos)
            } else {
                (i - half, i, -1.0, pos - half)
            };
            let angle = -2.0 * std::f64::consts::PI * tpos as f64 / group as f64;
            let (wr, wi) = (angle.cos(), angle.sin());
            ctx.compute(TWIDDLE_OPS);
            let ar = ctx.load(src.re, s1);
            let ai = ctx.load(src.im, s1);
            let br = ctx.load(src.re, s2);
            let bi = ctx.load(src.im, s2);
            // a ± w·b
            let tr = wr * br - wi * bi;
            let ti = wr * bi + wi * br;
            ctx.compute(4 * MUL_ADD_OPS + IDX_OPS);
            sink.store(ctx, dst.re, i, ar + sign * tr);
            sink.store(ctx, dst.im, i, ai + sign * ti);
            let _ = base;
        }
    }

    /// Per-thread schedules: per stage, each thread's chunks, then a
    /// barrier.
    /// Persistent address ranges for the `lp-check` sanitizer. The two
    /// ping-pong buffers are the protected data (regions write into
    /// whichever is the current stage's destination); the input buffer is
    /// read-only.
    pub fn tracked_ranges(&self) -> Vec<lp_core::track::TrackedRange> {
        use lp_core::track::{RangeRole, TrackedRange};
        let mut out = vec![
            TrackedRange::of("fft.buf0.re", self.bufs[0].re, RangeRole::Protected),
            TrackedRange::of("fft.buf0.im", self.bufs[0].im, RangeRole::Protected),
            TrackedRange::of("fft.buf1.re", self.bufs[1].re, RangeRole::Protected),
            TrackedRange::of("fft.buf1.im", self.bufs[1].im, RangeRole::Protected),
            TrackedRange::of("fft.in.re", self.input.re, RangeRole::Scratch),
            TrackedRange::of("fft.in.im", self.input.im, RangeRole::Scratch),
        ];
        out.extend(self.handles.ranges());
        out
    }

    /// Build the scheduled per-core work plans for one run.
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        let owners = self.ownership();
        let mut plans: Vec<ThreadPlan<'static>> = (0..self.params.threads)
            .map(|_| ThreadPlan::new())
            .collect();
        for stage in 0..self.params.window() {
            for (t, owned) in owners.iter().enumerate() {
                let tp = self.handles.thread(t);
                for &chunk in owned {
                    let this = self.clone();
                    plans[t].region(move |ctx| {
                        let key = this.key(stage, chunk);
                        let mut rs = tp.begin(ctx, key);
                        let mut sink = SchemeSink { tp, rs: &mut rs };
                        this.region_body(ctx, stage, chunk, &mut sink);
                        tp.commit(ctx, rs);
                    });
                }
            }
            for plan in &mut plans {
                plan.barrier();
            }
        }
        plans
    }

    /// Host golden: replay the same stages natively. Returns
    /// `(re, im)` of the final stage's buffer.
    pub fn golden(params: &FftParams) -> (Vec<f64>, Vec<f64>) {
        let n = params.n;
        let in_re = random_values(params.seed, n);
        let in_im = random_values(params.seed ^ 0xf457, n);
        let mut bufs = [
            (vec![0.0f64; n], vec![0.0f64; n]),
            (vec![0.0f64; n], vec![0.0f64; n]),
        ];
        let bits = params.log2n();
        for i in 0..n {
            let src = bit_reverse(i, bits);
            bufs[0].0[i] = in_re[src];
            bufs[0].1[i] = in_im[src];
        }
        for stage in 1..params.window() {
            let (src_idx, dst_idx) = ((stage - 1) % 2, stage % 2);
            let half = 1usize << (stage - 1);
            let group = half * 2;
            for i in 0..n {
                let pos = i & (group - 1);
                let (s1, s2, sign, tpos) = if pos < half {
                    (i, i + half, 1.0, pos)
                } else {
                    (i - half, i, -1.0, pos - half)
                };
                let angle = -2.0 * std::f64::consts::PI * tpos as f64 / group as f64;
                let (wr, wi) = (angle.cos(), angle.sin());
                let (ar, ai) = (bufs[src_idx].0[s1], bufs[src_idx].1[s1]);
                let (br, bi) = (bufs[src_idx].0[s2], bufs[src_idx].1[s2]);
                let tr = wr * br - wi * bi;
                let ti = wr * bi + wi * br;
                bufs[dst_idx].0[i] = ar + sign * tr;
                bufs[dst_idx].1[i] = ai + sign * ti;
            }
        }
        let last = (params.window() - 1) % 2;
        (bufs[last].0.clone(), bufs[last].1.clone())
    }

    /// Whether the durable final buffer matches the golden reference.
    pub fn verify(&self, machine: &Machine) -> bool {
        let (gre, gim) = Self::golden(&self.params);
        let last = self.dst(self.params.window() - 1);
        crate::common::values_match(&machine.peek_vec(last.re), &gre)
            && crate::common::values_match(&machine.peek_vec(last.im), &gim)
    }

    /// Lines a media fault may target: the final stage's output buffer.
    /// Recovery quarantines every stage whose destination holds a
    /// poisoned line and replays it from the surviving stage (or from
    /// the preserved input), fully rewriting — and thereby scrubbing —
    /// both arrays.
    pub fn repairable_lines(&self) -> Vec<LineAddr> {
        let last = self.dst(self.params.window() - 1);
        let mut lines: Vec<LineAddr> = last.re.lines().chain(last.im.lines()).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines a silent bit flip may target under Lazy schemes: same set as
    /// [`Self::repairable_lines`]. Every line of the final buffer is
    /// either covered by the newest consistent stage's checksums (flip
    /// detected by the scan) or rewritten by the replay that follows.
    pub fn flip_lines(&self) -> Vec<LineAddr> {
        self.repairable_lines()
    }

    /// Whether `stage`'s destination buffer holds any poisoned line.
    fn stage_poisoned(&self, poisoned: &[LineAddr], stage: usize) -> bool {
        let dst = self.dst(stage);
        range_poisoned(poisoned, dst.re, 0, self.params.n)
            || range_poisoned(poisoned, dst.im, 0, self.params.n)
    }

    /// Fold region `(stage, chunk)`'s checksum from current data.
    fn fold_region(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        stage: usize,
        chunk: usize,
    ) -> u64 {
        let len = self.params.chunk_len();
        let dst = self.dst(stage);
        let mut values = Vec::with_capacity(2 * len);
        for i in chunk * len..(chunk + 1) * len {
            values.push(ctx.load(dst.re, i));
            values.push(ctx.load(dst.im, i));
            ctx.compute(2 * kind.cost_ops());
        }
        recompute_checksum(kind, |ck| {
            for v in values {
                ck.update(v.to_bits());
            }
        })
    }

    /// Whether every chunk of `stage` matches its stored checksum.
    fn stage_consistent(&self, ctx: &mut CoreCtx<'_>, kind: ChecksumKind, stage: usize) -> bool {
        (0..self.params.chunks).all(|chunk| {
            let folded = self.fold_region(ctx, kind, stage, chunk);
            self.handles
                .table
                .matches(ctx, self.key(stage, chunk), folded)
        })
    }

    /// The elements of region `(stage, chunk)` in checksum fold order —
    /// interleaved across the destination's `re`/`im` pair, exactly as
    /// [`Self::fold_region`] and the forward stores walk them.
    fn region_slots(&self, stage: usize, chunk: usize) -> Vec<lp_core::parity::Slot<f64>> {
        let len = self.params.chunk_len();
        let dst = self.dst(stage);
        (chunk * len..(chunk + 1) * len)
            .flat_map(|i| [(dst.re, i), (dst.im, i)])
            .collect()
    }

    /// Rung 1 for a poisoned stage under `LazyParity`: attempt a parity
    /// reconstruction in every chunk (chunks not covering a poisoned line
    /// report `Clean` and cost nothing). Returns `true` only when every
    /// affected chunk repaired — the stage then rejoins the normal
    /// consistency audit; any failure records the escalation and the
    /// caller quarantines the stage for replay.
    fn stage_poison_repair(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        stage: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
    ) -> bool {
        let mut all = true;
        for chunk in 0..self.params.chunks {
            match lp_core::parity::try_poison_repair_slots(
                ctx,
                &self.handles.table,
                &self.handles.parity,
                self.key(stage, chunk),
                kind,
                &self.region_slots(stage, chunk),
                poisoned,
            ) {
                lp_core::parity::RepairVerdict::Repaired => stats.repaired_lines += 1,
                lp_core::parity::RepairVerdict::Clean => {}
                lp_core::parity::RepairVerdict::Failed => {
                    stats.repair_failures += 1;
                    all = false;
                }
            }
        }
        if !all {
            stats.escalations += 1;
        }
        all
    }

    /// [`Self::stage_consistent`] with the rung-1 mismatch repair spliced
    /// in: a chunk that fails its audit gets one parity-reconstruction
    /// attempt before the stage is declared inconsistent. Unlike the plain
    /// audit this never short-circuits — every chunk is examined so every
    /// repairable flip in the stage is actually repaired.
    fn stage_repair_consistent(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        stage: usize,
        stats: &mut RecoveryStats,
    ) -> bool {
        let mut ok = true;
        for chunk in 0..self.params.chunks {
            let folded = self.fold_region(ctx, kind, stage, chunk);
            if self
                .handles
                .table
                .matches(ctx, self.key(stage, chunk), folded)
            {
                continue;
            }
            if lp_core::parity::try_mismatch_repair_slots(
                ctx,
                &self.handles.table,
                &self.handles.parity,
                self.key(stage, chunk),
                kind,
                &self.region_slots(stage, chunk),
            ) {
                stats.repaired_lines += 1;
            } else {
                stats.repair_failures += 1;
                ok = false;
            }
        }
        if !ok {
            stats.escalations += 1;
        }
        ok
    }

    /// Post-crash recovery: replay from the newest fully consistent stage
    /// (or from the preserved input).
    pub fn recover(&self, machine: &mut Machine) -> RecoveryStats {
        let (kind, repair) = match self.scheme {
            Scheme::Base => return RecoveryStats::default(),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) => (kind, false),
            Scheme::LazyParity(kind) => (kind, true),
            // EP/WAL: undo any open tx, then full eager replay from input.
            Scheme::Eager | Scheme::Wal => {
                let mut stats = RecoveryStats::default();
                let poisoned = machine.mem().poisoned_lines();
                let mut ctx = machine.ctx(0);
                let start = ctx.now();
                for t in 0..self.params.threads {
                    let tp = self.handles.thread(t);
                    if tp.wal_recover(&mut ctx) > 0 {
                        stats.regions_inconsistent += 1;
                    }
                }
                // The full replay below rewrites every buffer line (and
                // thereby scrubs any poison); just account for it.
                for stage in 0..self.params.window() {
                    if self.stage_poisoned(&poisoned, stage) {
                        stats.regions_quarantined += 1;
                    }
                }
                self.replay_from(&mut ctx, ChecksumKind::Modular, 0, &mut stats, false);
                stats.cycles = ctx.now() - start;
                return stats;
            }
        };
        let mut stats = RecoveryStats::default();
        let window = self.params.window();
        let poisoned = machine.mem().poisoned_lines();
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        let mut resume = 0;
        for stage in (0..window).rev() {
            // A stage whose destination holds a poisoned line cannot be
            // trusted regardless of its checksums: quarantine it and keep
            // scanning, so the replay below fully rewrites it — unless
            // (`LazyParity`) rung 1 repairs every affected chunk, in which
            // case the stage rejoins the audit below on its own merits.
            if self.stage_poisoned(&poisoned, stage)
                && !(repair
                    && self.stage_poison_repair(&mut ctx, kind, stage, &poisoned, &mut stats))
            {
                stats.regions_quarantined += 1;
                continue;
            }
            stats.regions_checked += self.params.chunks as u64;
            let consistent = if repair {
                self.stage_repair_consistent(&mut ctx, kind, stage, &mut stats)
            } else {
                self.stage_consistent(&mut ctx, kind, stage)
            };
            if consistent {
                resume = stage + 1;
                break;
            }
            stats.regions_inconsistent += 1;
        }
        self.replay_from(&mut ctx, kind, resume, &mut stats, repair);
        stats.cycles = ctx.now() - start;
        stats
    }

    /// Eagerly re-execute stages `from..window`, repairing checksums (and,
    /// under `repair`, the parity lines alongside them).
    fn replay_from(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        from: usize,
        stats: &mut RecoveryStats,
        repair: bool,
    ) {
        for stage in from..self.params.window() {
            for chunk in 0..self.params.chunks {
                let mut sink = if repair {
                    RecoverySink::with_parity(kind, self.handles.parity)
                } else {
                    RecoverySink::new(kind)
                };
                self.region_body(ctx, stage, chunk, &mut sink);
                sink.commit(ctx, &self.handles.table, self.key(stage, chunk));
                stats.recomputed_regions += 1;
            }
        }
    }
}

/// Convenience driver mirroring [`crate::tmm::run`].
pub fn run(cfg: &MachineConfig, params: FftParams, scheme: Scheme) -> KernelRun {
    let cfg = cfg.clone().with_cores(params.threads);
    let mut machine = Machine::new(cfg);
    let fft = Fft::setup(&mut machine, params, scheme).expect("fft setup");
    let outcome = machine.run(fft.plans());
    let stats = machine.stats();
    machine.drain_caches();
    let verified = outcome == Outcome::Completed && fft.verify(&machine);
    KernelRun {
        stats,
        outcome,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::prelude::CrashTrigger;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(8 << 20)
    }

    #[test]
    fn bit_reverse_is_involutive() {
        for bits in [4usize, 8] {
            for i in 0..(1 << bits) {
                assert_eq!(bit_reverse(bit_reverse(i, bits), bits), i);
            }
        }
        assert_eq!(bit_reverse(0b0001, 4), 0b1000);
        assert_eq!(bit_reverse(0b0110, 4), 0b0110);
    }

    #[test]
    fn full_transform_matches_naive_dft() {
        // With the window covering all stages, the golden equals a DFT.
        let params = FftParams {
            n: 64,
            chunks: 4,
            threads: 1,
            stage_window: 7, // log2(64)+1
            seed: 9,
        };
        let (re, im) = Fft::golden(&params);
        let n = params.n;
        let xre = random_values(params.seed, n);
        let xim = random_values(params.seed ^ 0xf457, n);
        for k in 0..n {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                sr += xre[t] * c - xim[t] * s;
                si += xre[t] * s + xim[t] * c;
            }
            assert!((sr - re[k]).abs() < 1e-6, "re[{k}]");
            assert!((si - im[k]).abs() < 1e-6, "im[{k}]");
        }
    }

    #[test]
    fn all_schemes_agree_with_golden() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let r = run(&cfg(), FftParams::test_small(), scheme);
            assert_eq!(r.outcome, Outcome::Completed, "{scheme}");
            assert!(r.verified, "{scheme}");
        }
    }

    /// The headline rung-1 guarantee: on a fully committed image a single
    /// poisoned line is reconstructed from parity alone — no region is
    /// recomputed, nothing is quarantined, nothing escalates.
    #[test]
    fn parity_repairs_single_poison_without_recompute() {
        let params = FftParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let k = Fft::setup(&mut machine, params, Scheme::lazy_parity_default()).unwrap();
        assert_eq!(machine.run(k.plans()), Outcome::Completed);
        machine.drain_caches();
        machine.mem_mut().poison_line(k.repairable_lines()[0]);
        let rstats = k.recover(&mut machine);
        machine.drain_caches();
        assert!(k.verify(&machine), "repaired image must verify");
        assert_eq!(rstats.repaired_lines, 1);
        assert_eq!(rstats.recomputed_regions, 0);
        assert_eq!(rstats.regions_quarantined, 0);
        assert_eq!(rstats.repair_failures, 0);
        assert_eq!(rstats.escalations, 0);
    }

    #[test]
    fn lazy_recovery_roundtrip() {
        for ops in [100u64, 1_500, 4_000] {
            let params = FftParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let fft = Fft::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
            assert_eq!(machine.run(fft.plans()), Outcome::Crashed, "at {ops}");
            machine.clear_crash_trigger();
            let rstats = fft.recover(&mut machine);
            machine.drain_caches();
            assert!(fft.verify(&machine), "crash at {ops} ops");
            assert!(rstats.recomputed_regions > 0);
        }
    }

    #[test]
    fn eager_and_wal_recovery_roundtrip() {
        for scheme in [Scheme::Eager, Scheme::Wal] {
            let params = FftParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let fft = Fft::setup(&mut machine, params, scheme).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(3_000));
            assert_eq!(machine.run(fft.plans()), Outcome::Crashed, "{scheme}");
            machine.clear_crash_trigger();
            fft.recover(&mut machine);
            machine.drain_caches();
            assert!(fft.verify(&machine), "{scheme}");
        }
    }

    #[test]
    fn window_caps_at_full_transform() {
        let mut params = FftParams::test_small();
        params.stage_window = 100;
        assert_eq!(params.window(), params.log2n() + 1);
        params.validate().unwrap();
    }
}

//! Native host execution of the kernels — the paper's *real machine*
//! evaluation (Table III / Table VII).
//!
//! Lazy Persistency needs no hardware support, so the paper also runs it
//! on a stock DRAM machine and measures only the execution-time overhead
//! of the checksum computation (persistence itself is moot on DRAM). This
//! module does the same: each kernel runs natively with `std::thread`
//! parallelism, in a `base` variant and an `lp` variant that folds every
//! result store into a per-region modular checksum recorded in a table.
//!
//! Checksum state is kept in per-thread tables (threads own disjoint
//! regions, exactly like the simulated collision-free table), and results
//! pass through [`std::hint::black_box`] so the optimizer cannot delete
//! the instrumentation.

use crate::common::{random_spd, random_values};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Which kernel to run natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeKernel {
    /// Tiled matrix multiplication.
    Tmm,
    /// Left-looking Cholesky factorization.
    Cholesky,
    /// 3×3 2-D convolution.
    Conv2d,
    /// Gaussian elimination.
    Gauss,
    /// Radix-2 FFT.
    Fft,
}

impl NativeKernel {
    /// All kernels, Table VII order.
    pub const ALL: [NativeKernel; 5] = [
        NativeKernel::Tmm,
        NativeKernel::Cholesky,
        NativeKernel::Conv2d,
        NativeKernel::Gauss,
        NativeKernel::Fft,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NativeKernel::Tmm => "TMM",
            NativeKernel::Cholesky => "Cholesky",
            NativeKernel::Conv2d => "2D-conv",
            NativeKernel::Gauss => "Gauss",
            NativeKernel::Fft => "FFT",
        }
    }
}

/// Result of one native comparison run.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Wall time of the non-instrumented variant.
    pub base: Duration,
    /// Wall time of the LP-checksummed variant.
    pub lp: Duration,
    /// Defensive digest of both outputs (must match).
    pub outputs_match: bool,
}

impl NativeResult {
    /// LP overhead as a fraction (`0.01` = 1%).
    pub fn overhead(&self) -> f64 {
        let b = self.base.as_secs_f64();
        if b == 0.0 {
            0.0
        } else {
            self.lp.as_secs_f64() / b - 1.0
        }
    }
}

/// A per-thread volatile checksum table (the native stand-in for the
/// persistent collision-free table).
#[derive(Debug, Default)]
struct LocalTable {
    entries: Vec<(usize, u64)>,
}

impl LocalTable {
    #[inline]
    fn record(&mut self, key: usize, value: u64) {
        self.entries.push((key, value));
    }
}

/// Run `kernel` natively at problem size `n` with `threads` workers and
/// return base vs. LP wall times (best of `reps` repetitions each).
///
/// # Panics
///
/// Panics if `n` is unsuitable for the kernel (e.g. not a power of two
/// for FFT) or `threads == 0`.
pub fn run_native(kernel: NativeKernel, n: usize, threads: usize, reps: usize) -> NativeResult {
    assert!(threads > 0 && reps > 0);
    let mut base = Duration::MAX;
    let mut lp = Duration::MAX;
    let mut base_sig = 0.0f64;
    let mut lp_sig = 0.0f64;
    for _ in 0..reps {
        let (d, sig) = run_variant(kernel, n, threads, false);
        if d < base {
            base = d;
        }
        base_sig = sig;
        let (d, sig) = run_variant(kernel, n, threads, true);
        if d < lp {
            lp = d;
        }
        lp_sig = sig;
    }
    NativeResult {
        base,
        lp,
        outputs_match: (base_sig - lp_sig).abs() <= 1e-6 * base_sig.abs().max(1.0),
    }
}

fn run_variant(kernel: NativeKernel, n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    match kernel {
        NativeKernel::Tmm => tmm(n, threads, lp),
        NativeKernel::Cholesky => cholesky(n, threads, lp),
        NativeKernel::Conv2d => conv2d(n, threads, lp),
        NativeKernel::Gauss => gauss(n, threads, lp),
        NativeKernel::Fft => fft(n, threads, lp),
    }
}

fn signature(v: &[f64]) -> f64 {
    v.iter()
        .enumerate()
        .map(|(i, x)| x * ((i % 97) as f64 + 1.0))
        .sum()
}

/// Tiled matmul: regions are `(kk, ii)` strips like the simulated kernel.
fn tmm(n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    const BSIZE: usize = 16;
    let n = n.next_multiple_of(BSIZE);
    let a = random_values(42, n * n);
    let b = random_values(42 ^ 0x5eed, n * n);
    let mut c = vec![0.0f64; n * n];
    let nb = n / BSIZE;
    let start = Instant::now();
    let mut per_thread: Vec<Vec<(usize, &mut [f64])>> = (0..threads).map(|_| Vec::new()).collect();
    for (ib, chunk) in c.chunks_mut(BSIZE * n).enumerate() {
        per_thread[ib % threads].push((ib, chunk));
    }
    std::thread::scope(|s| {
        for rows in per_thread {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let mut table = LocalTable::default();
                for (ib, c_rows) in rows {
                    let ii = ib * BSIZE;
                    for kb in 0..nb {
                        let kk = kb * BSIZE;
                        let mut ck = 0u64;
                        for jj in (0..n).step_by(BSIZE) {
                            for i in 0..BSIZE {
                                for j in jj..jj + BSIZE {
                                    let mut sum = c_rows[i * n + j];
                                    for k in kk..kk + BSIZE {
                                        sum += a[(ii + i) * n + k] * b[k * n + j];
                                    }
                                    c_rows[i * n + j] = sum;
                                    if lp {
                                        ck = ck.wrapping_add(sum.to_bits());
                                    }
                                }
                            }
                        }
                        if lp {
                            table.record(kb * nb + ib, ck);
                        }
                    }
                }
                black_box(table);
            });
        }
    });
    (start.elapsed(), signature(&c))
}

/// Left-looking Cholesky; regions are `(column, row-block)`.
fn cholesky(n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    let a = random_spd(23, n);
    let mut l = vec![0.0f64; n * n];
    let start = Instant::now();
    // Parallelism per column over row chunks; sequential columns.
    let mut tables: Vec<LocalTable> = (0..threads).map(|_| LocalTable::default()).collect();
    for j in 0..n {
        let mut s = a[j * n + j];
        for k in 0..j {
            s -= l[j * n + k] * l[j * n + k];
        }
        let d = s.sqrt();
        l[j * n + j] = d;
        let (head, tail) = l.split_at_mut((j + 1) * n);
        let lrow_j = &head[j * n..j * n + j];
        let rows_below = tail; // rows j+1..n
        let per = (n - j - 1).div_ceil(threads).max(1);
        std::thread::scope(|sc| {
            for (t, (chunk, table)) in rows_below
                .chunks_mut(per * n)
                .zip(tables.iter_mut())
                .enumerate()
            {
                let a = &a;
                sc.spawn(move || {
                    let mut ck = 0u64;
                    let base_row = j + 1 + t * per;
                    for (ri, row) in chunk.chunks_mut(n).enumerate() {
                        let r = base_row + ri;
                        let mut s = a[r * n + j];
                        for k in 0..j {
                            s -= row[k] * lrow_j[k];
                        }
                        let v = s / d;
                        row[j] = v;
                        if lp {
                            ck = ck.wrapping_add(v.to_bits());
                        }
                    }
                    if lp {
                        table.record(j * threads + t, ck);
                    }
                });
            }
        });
    }
    black_box(&tables);
    (start.elapsed(), signature(&l))
}

/// 3×3 convolution; regions are row blocks.
fn conv2d(n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    let input = random_values(7, (n + 2) * (n + 2));
    let w = crate::conv2d::stencil(7);
    let mut out = vec![0.0f64; n * n];
    let per = n.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, chunk) in out.chunks_mut(per * n).enumerate() {
            let input = &input;
            s.spawn(move || {
                let mut table = LocalTable::default();
                let mut ck = 0u64;
                let base_row = t * per;
                for (ri, row) in chunk.chunks_mut(n).enumerate() {
                    let i = base_row + ri;
                    for (j, cell) in row.iter_mut().enumerate() {
                        let mut sum = 0.0;
                        for di in 0..3 {
                            for dj in 0..3 {
                                sum += input[(i + di) * (n + 2) + (j + dj)] * w[di * 3 + dj];
                            }
                        }
                        *cell = sum;
                        if lp {
                            ck = ck.wrapping_add(sum.to_bits());
                        }
                    }
                }
                if lp {
                    table.record(t, ck);
                    black_box(table);
                }
            });
        }
    });
    (start.elapsed(), signature(&out))
}

/// Gaussian elimination; regions are `(pivot, row-block)`.
fn gauss(n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    let mut w = crate::gauss::gauss_input(11, n);
    let start = Instant::now();
    let mut tables: Vec<LocalTable> = (0..threads).map(|_| LocalTable::default()).collect();
    for p in 0..n - 1 {
        let (head, tail) = w.split_at_mut((p + 1) * n);
        let pivot_row = &head[p * n..(p + 1) * n];
        let pivot = pivot_row[p];
        let per = (n - p - 1).div_ceil(threads).max(1);
        std::thread::scope(|sc| {
            for (t, (chunk, table)) in tail.chunks_mut(per * n).zip(tables.iter_mut()).enumerate() {
                sc.spawn(move || {
                    let mut ck = 0u64;
                    for row in chunk.chunks_mut(n) {
                        let factor = row[p] / pivot;
                        row[p] = factor;
                        if lp {
                            ck = ck.wrapping_add(factor.to_bits());
                        }
                        for j in p + 1..n {
                            row[j] -= factor * pivot_row[j];
                            if lp {
                                ck = ck.wrapping_add(row[j].to_bits());
                            }
                        }
                    }
                    if lp {
                        table.record(p * threads + t, ck);
                    }
                });
            }
        });
    }
    black_box(&tables);
    (start.elapsed(), signature(&w))
}

/// Radix-2 FFT; regions are `(stage, chunk)`.
fn fft(n: usize, threads: usize, lp: bool) -> (Duration, f64) {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let in_re = random_values(31, n);
    let in_im = random_values(31 ^ 0xf457, n);
    let bits = n.trailing_zeros() as usize;
    let mut bufs = [
        (vec![0.0f64; n], vec![0.0f64; n]),
        (vec![0.0f64; n], vec![0.0f64; n]),
    ];
    let start = Instant::now();
    let mut tables: Vec<LocalTable> = (0..threads).map(|_| LocalTable::default()).collect();
    // Bit-reverse stage.
    {
        let per = n.div_ceil(threads);
        let (re0, im0) = {
            let (b0, _) = bufs.split_at_mut(1);
            (&mut b0[0].0, &mut b0[0].1)
        };
        std::thread::scope(|sc| {
            for (t, ((re_chunk, im_chunk), table)) in re0
                .chunks_mut(per)
                .zip(im0.chunks_mut(per))
                .zip(tables.iter_mut())
                .enumerate()
            {
                let (in_re, in_im) = (&in_re, &in_im);
                sc.spawn(move || {
                    let mut ck = 0u64;
                    let base = t * per;
                    for k in 0..re_chunk.len() {
                        let srci = crate::fft::bit_reverse(base + k, bits);
                        re_chunk[k] = in_re[srci];
                        im_chunk[k] = in_im[srci];
                        if lp {
                            ck = ck
                                .wrapping_add(re_chunk[k].to_bits())
                                .wrapping_add(im_chunk[k].to_bits());
                        }
                    }
                    if lp {
                        table.record(t, ck);
                    }
                });
            }
        });
    }
    for stage in 1..=bits {
        let (src, dst) = if stage % 2 == 1 {
            let (a, b) = bufs.split_at_mut(1);
            (&a[0], &mut b[0])
        } else {
            let (a, b) = bufs.split_at_mut(1);
            (&b[0], &mut a[0])
        };
        let half = 1usize << (stage - 1);
        let group = half * 2;
        let per = n.div_ceil(threads);
        std::thread::scope(|sc| {
            for (t, ((re_chunk, im_chunk), table)) in dst
                .0
                .chunks_mut(per)
                .zip(dst.1.chunks_mut(per))
                .zip(tables.iter_mut())
                .enumerate()
            {
                let src = &*src;
                sc.spawn(move || {
                    let mut ck = 0u64;
                    let base = t * per;
                    for k in 0..re_chunk.len() {
                        let i = base + k;
                        let pos = i & (group - 1);
                        let (s1, s2, sign, tpos) = if pos < half {
                            (i, i + half, 1.0, pos)
                        } else {
                            (i - half, i, -1.0, pos - half)
                        };
                        let angle = -2.0 * std::f64::consts::PI * tpos as f64 / group as f64;
                        let (wr, wi) = (angle.cos(), angle.sin());
                        let (ar, ai) = (src.0[s1], src.1[s1]);
                        let (br, bi) = (src.0[s2], src.1[s2]);
                        let tr = wr * br - wi * bi;
                        let ti = wr * bi + wi * br;
                        re_chunk[k] = ar + sign * tr;
                        im_chunk[k] = ai + sign * ti;
                        if lp {
                            ck = ck
                                .wrapping_add(re_chunk[k].to_bits())
                                .wrapping_add(im_chunk[k].to_bits());
                        }
                    }
                    if lp {
                        table.record(stage * threads + t, ck);
                    }
                });
            }
        });
    }
    black_box(&tables);
    let last = &bufs[bits % 2];
    let mut sig_src = last.0.clone();
    sig_src.extend_from_slice(&last.1);
    (start.elapsed(), signature(&sig_src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_match_between_variants() {
        for kernel in NativeKernel::ALL {
            let n = match kernel {
                NativeKernel::Fft => 256,
                _ => 64,
            };
            let r = run_native(kernel, n, 2, 1);
            assert!(r.outputs_match, "{}", kernel.name());
            assert!(r.base > Duration::ZERO);
            assert!(r.lp > Duration::ZERO);
        }
    }

    #[test]
    fn single_thread_also_works() {
        let r = run_native(NativeKernel::Tmm, 64, 1, 1);
        assert!(r.outputs_match);
    }

    #[test]
    fn overhead_is_finite() {
        let r = run_native(NativeKernel::Conv2d, 128, 2, 2);
        assert!(r.overhead().is_finite());
    }

    #[test]
    fn native_tmm_agrees_with_simulated_golden() {
        // The native and simulated kernels share input generators and
        // seeds, so a full-window simulated golden must equal the native
        // product (cross-validation of the two implementations).
        let n = 32;
        let params = crate::tmm::TmmParams {
            n,
            bsize: 16,
            threads: 1,
            kk_window: n / 16, // full product
            seed: 42,
        };
        let golden = crate::tmm::Tmm::golden(&params);
        let (_, native_sig) = tmm(n, 2, false);
        assert!(
            (signature(&golden) - native_sig).abs() <= 1e-6 * native_sig.abs().max(1.0),
            "native tmm diverges from the simulated golden"
        );
    }

    #[test]
    fn native_gauss_agrees_with_simulated_golden_window() {
        // Native gauss eliminates all pivots; the simulated golden with a
        // full pivot window must match.
        let n = 24;
        let params = crate::gauss::GaussParams {
            n,
            bsize: 24,
            threads: 1,
            pivot_window: 24,
            seed: 11,
        };
        // pivot_window == n is out of the sim's supported range only if
        // > bsize; here bsize == n == 24 so it validates.
        params.validate().unwrap();
        let golden = crate::gauss::Gauss::golden(&params);
        let (_, native_sig) = gauss(n, 2, false);
        assert!(
            (signature(&golden) - native_sig).abs() <= 1e-6 * native_sig.abs().max(1.0),
            "native gauss diverges from the simulated golden"
        );
    }

    #[test]
    fn names_are_table_vii_labels() {
        let names: Vec<_> = NativeKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["TMM", "Cholesky", "2D-conv", "Gauss", "FFT"]);
    }
}

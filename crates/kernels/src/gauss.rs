//! Gaussian elimination (`Gauss` in the paper's Table V; simulated over a
//! 4-pivot window like the paper's 4-outer-iteration window).
//!
//! LU-style elimination into a working matrix `w` (initialized from the
//! durable, read-only input `a`): pivot step `p` stores the multiplier
//! `w[r][p] = w[r][p] / w[p][p]` and updates `w[r][j] -= factor · w[p][j]`
//! for `j > p`, for every row `r > p`.
//!
//! Parallelization and regions: rows are partitioned into blocks owned
//! round-robin by threads; region `(p, block)` updates the block's rows for
//! pivot `p`. A barrier separates pivot steps (step `p+1` reads pivot row
//! `p+1`, finalized during step `p`).
//!
//! Recovery replays from the preserved input: because pivot rows `0..window`
//! all live in block 0 (enforced: `window ≤ bsize`), block 0 is recovered
//! first, then every other block finds its newest consistent pivot step and
//! replays only the later steps — or restores its rows from `a` and replays
//! everything if nothing consistent survived.

use crate::common::{
    random_values, round_robin_blocks, EagerOnlySink, KernelRun, PMatrix, RecoverySink, SchemeSink,
    StoreSink, IDX_OPS, MUL_ADD_OPS,
};
use lp_core::checksum::ChecksumKind;
use lp_core::recovery::{recompute_checksum, RecoveryStats};
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome, ThreadPlan};

/// Problem and windowing parameters for one elimination run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaussParams {
    /// Matrix dimension; must be a multiple of `bsize`.
    pub n: usize,
    /// Rows per block.
    pub bsize: usize,
    /// Worker threads.
    pub threads: usize,
    /// Pivot steps to simulate (the paper windows Gauss to 4 columns);
    /// must satisfy `pivot_window ≤ bsize` so all pivot rows are in
    /// block 0.
    pub pivot_window: usize,
    /// Input seed.
    pub seed: u64,
}

impl GaussParams {
    /// Smallest meaningful parameters, sized for exhaustive crash-state
    /// model checking (one full replay per crash point).
    pub fn micro() -> Self {
        GaussParams {
            n: 16,
            bsize: 8,
            threads: 2,
            pivot_window: 2,
            seed: 11,
        }
    }

    /// Parameters sized for fast unit tests.
    pub fn test_small() -> Self {
        GaussParams {
            n: 32,
            bsize: 8,
            threads: 2,
            pivot_window: 4,
            seed: 11,
        }
    }

    /// Bench-scale parameters (512² matrix, the paper's 4-pivot window).
    pub fn bench_default() -> Self {
        GaussParams {
            n: 512,
            bsize: 16,
            threads: 8,
            pivot_window: 4,
            seed: 11,
        }
    }

    /// Paper-scale parameters: the paper uses a 4096² matrix with a
    /// 4-pivot window; we use 2048² to keep the harness interactive (the
    /// per-pivot behaviour is size-independent at this scale).
    pub fn paper_default() -> Self {
        GaussParams {
            n: 2048,
            bsize: 16,
            threads: 8,
            pivot_window: 4,
            seed: 11,
        }
    }

    /// Number of row blocks.
    pub fn nblocks(&self) -> usize {
        self.n / self.bsize
    }

    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bsize == 0 || !self.n.is_multiple_of(self.bsize) {
            return Err(format!(
                "n={} must be a multiple of bsize={}",
                self.n, self.bsize
            ));
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.pivot_window == 0 || self.pivot_window > self.bsize {
            return Err(format!(
                "pivot_window={} must be in 1..=bsize={}",
                self.pivot_window, self.bsize
            ));
        }
        Ok(())
    }
}

/// Deterministic diagonally-dominant input (elimination without pivoting
/// stays well conditioned).
pub fn gauss_input(seed: u64, n: usize) -> Vec<f64> {
    let mut a = random_values(seed, n * n);
    for i in 0..n {
        a[i * n + i] += n as f64;
    }
    a
}

/// A configured elimination workload.
#[derive(Debug, Clone)]
pub struct Gauss {
    /// Parameters.
    pub params: GaussParams,
    /// The active scheme.
    pub scheme: Scheme,
    /// Original input (read-only; recovery replays from it).
    pub a: PMatrix,
    /// Working matrix.
    pub w: PMatrix,
    /// Scheme support structures.
    pub handles: SchemeHandles,
}

impl Gauss {
    /// Allocate and initialize on `machine`.
    ///
    /// # Errors
    ///
    /// Returns allocation or validation failures as strings.
    pub fn setup(
        machine: &mut Machine,
        params: GaussParams,
        scheme: Scheme,
    ) -> Result<Self, String> {
        params.validate()?;
        let n = params.n;
        let a = PMatrix::alloc(machine, n, n).map_err(|e| e.to_string())?;
        let w = PMatrix::alloc(machine, n, n).map_err(|e| e.to_string())?;
        let input = gauss_input(params.seed, n);
        a.fill(machine, &input);
        w.fill(machine, &input);
        let handles = SchemeHandles::alloc(
            machine,
            scheme,
            params.pivot_window * params.nblocks(),
            params.threads,
            params.bsize * n + 8,
        )
        .map_err(|e| e.to_string())?;
        Ok(Gauss {
            params,
            scheme,
            a,
            w,
            handles,
        })
    }

    /// Checksum-table key of region `(p, block)`.
    pub fn key(&self, p: usize, block: usize) -> usize {
        p * self.params.nblocks() + block
    }

    /// Rows of `block` that pivot step `p` updates (rows greater than `p`).
    pub fn region_rows(params: &GaussParams, p: usize, block: usize) -> std::ops::Range<usize> {
        let lo = (block * params.bsize).max(p + 1);
        let hi = (block + 1) * params.bsize;
        lo..hi.max(lo)
    }

    /// Round-robin block ownership.
    pub fn ownership(&self) -> Vec<Vec<usize>> {
        round_robin_blocks(self.params.nblocks(), self.params.threads)
    }

    /// One region: eliminate column `p` from this block's rows.
    fn region_body<S: StoreSink>(
        &self,
        ctx: &mut CoreCtx<'_>,
        p: usize,
        block: usize,
        sink: &mut S,
    ) {
        let n = self.params.n;
        let pivot = self.w.load(ctx, p, p);
        for r in Self::region_rows(&self.params, p, block) {
            let factor = self.w.load(ctx, r, p) / pivot;
            ctx.compute(MUL_ADD_OPS);
            sink.store(ctx, self.w.array(), self.w.idx(r, p), factor);
            for j in p + 1..n {
                let wrj = self.w.load(ctx, r, j);
                let wpj = self.w.load(ctx, p, j);
                sink.store(ctx, self.w.array(), self.w.idx(r, j), wrj - factor * wpj);
                ctx.compute(MUL_ADD_OPS + IDX_OPS);
            }
        }
    }

    /// Per-thread schedules: for each pivot, each thread runs its non-empty
    /// block regions, then all threads barrier before the next pivot.
    /// Persistent address ranges for the `lp-check` sanitizer.
    pub fn tracked_ranges(&self) -> Vec<lp_core::track::TrackedRange> {
        use lp_core::track::{RangeRole, TrackedRange};
        let mut out = vec![
            TrackedRange::of("gauss.w", self.w.array(), RangeRole::Protected),
            TrackedRange::of("gauss.a", self.a.array(), RangeRole::Scratch),
        ];
        out.extend(self.handles.ranges());
        out
    }

    /// Build the scheduled per-core work plans for one run.
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        let owners = self.ownership();
        let mut plans: Vec<ThreadPlan<'static>> = (0..self.params.threads)
            .map(|_| ThreadPlan::new())
            .collect();
        for p in 0..self.params.pivot_window {
            for (t, owned) in owners.iter().enumerate() {
                let tp = self.handles.thread(t);
                for &block in owned {
                    if Self::region_rows(&self.params, p, block).is_empty() {
                        continue;
                    }
                    let this = self.clone();
                    plans[t].region(move |ctx| {
                        let key = this.key(p, block);
                        let mut rs = tp.begin(ctx, key);
                        let mut sink = SchemeSink { tp, rs: &mut rs };
                        this.region_body(ctx, p, block, &mut sink);
                        tp.commit(ctx, rs);
                    });
                }
            }
            for plan in &mut plans {
                plan.barrier();
            }
        }
        plans
    }

    /// Host golden for the simulated window.
    pub fn golden(params: &GaussParams) -> Vec<f64> {
        let n = params.n;
        let mut w = gauss_input(params.seed, n);
        for p in 0..params.pivot_window {
            let pivot = w[p * n + p];
            for r in p + 1..n {
                let factor = w[r * n + p] / pivot;
                w[r * n + p] = factor;
                for j in p + 1..n {
                    w[r * n + j] -= factor * w[p * n + j];
                }
            }
        }
        w
    }

    /// Whether the durable working matrix matches the golden reference.
    pub fn verify(&self, machine: &Machine) -> bool {
        crate::common::values_match(&self.w.peek_all(machine), &Self::golden(&self.params))
    }

    /// Lines of `w` that recovery provably rebuilds — the fault campaign's
    /// poison target set. Quarantine restores whole blocks from the
    /// preserved input, so every data-span line (pivot row 0 included) is
    /// repairable.
    pub fn repairable_lines(&self) -> Vec<LineAddr> {
        let n = self.params.n;
        let mut lines: Vec<LineAddr> = (0..n)
            .flat_map(|r| self.w.array().lines_of_range(self.w.idx(r, 0), n))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines of `w` where a *silent* bit flip is provably detected — the
    /// fault campaign's flip target set. Region `(p, block)` checksums
    /// cover rows `> p`, columns `≥ p`, and only the newest committed
    /// region per block matches current data (older checksums are stale
    /// once a later pivot rewrites their columns). Whatever that newest
    /// region is (`p* ≤ window−1`), cells with row `≥ window` and column
    /// `≥ window−1` are always inside its coverage — so only lines fully
    /// inside that region are fair targets. Pivot rows (`row < window`)
    /// and multiplier columns below `window−1` are uncovered by any
    /// current checksum; flips there are undetectable in principle.
    pub fn flip_lines(&self) -> Vec<LineAddr> {
        let n = self.params.n;
        let window = self.params.pivot_window;
        let elems_per_line = lp_sim::addr::LINE_BYTES / 8;
        debug_assert!(n.is_multiple_of(elems_per_line));
        // Rows are line-aligned (stride is a multiple of a line), so the
        // first fully-covered line of each row starts at the first
        // line-aligned column at or above window − 1.
        let first_col = (window - 1).div_ceil(elems_per_line) * elems_per_line;
        let mut lines = Vec::new();
        for r in window..n {
            for jb in (first_col..n).step_by(elems_per_line) {
                lines.extend(
                    self.w
                        .array()
                        .lines_of_range(self.w.idx(r, jb), elems_per_line),
                );
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Whether any line of `block`'s rows is poisoned.
    fn block_poisoned(&self, poisoned: &[LineAddr], block: usize) -> bool {
        let (n, bsize) = (self.params.n, self.params.bsize);
        (block * bsize..(block + 1) * bsize).any(|r| {
            lp_core::recovery::range_poisoned(poisoned, self.w.array(), self.w.idx(r, 0), n)
        })
    }

    /// Fold the checksum of region `(p, block)` from current data, in the
    /// exact store order of [`Gauss::region_body`].
    fn fold_region(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        p: usize,
        block: usize,
    ) -> u64 {
        let n = self.params.n;
        let mut values = Vec::new();
        for r in Self::region_rows(&self.params, p, block) {
            for j in p..n {
                values.push(self.w.load(ctx, r, j));
                ctx.compute(kind.cost_ops());
            }
        }
        recompute_checksum(kind, |ck| {
            for v in values {
                ck.update(v.to_bits());
            }
        })
    }

    /// Restore a block's rows from the original input, eagerly.
    fn restore_block_from_input(&self, ctx: &mut CoreCtx<'_>, block: usize) {
        let (n, bsize) = (self.params.n, self.params.bsize);
        for r in block * bsize..(block + 1) * bsize {
            for j in 0..n {
                let v = self.a.load(ctx, r, j);
                self.w.store(ctx, r, j, v);
            }
        }
        self.w.flush_rows(ctx, block * bsize, bsize);
        ctx.sfence();
    }

    /// The element indices of region `(p, block)` in checksum fold order.
    fn region_indices(&self, p: usize, block: usize) -> Vec<usize> {
        let n = self.params.n;
        Self::region_rows(&self.params, p, block)
            .flat_map(|r| (p..n).map(move |j| self.w.idx(r, j)))
            .collect()
    }

    /// Rung 1 for a poisoned block under `LazyParity`: scan pivots
    /// newest-first for a committed region whose parity line reconstructs
    /// the offending line bit-exactly (stale pivots fail re-verification;
    /// lines straddling the multiplier columns below the pivot are only
    /// partially owned and refuse reconstruction). Returns `true` on
    /// repair; `false` records the escalation to rung 2.
    fn block_poison_repair(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        block: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
    ) -> bool {
        for p in (0..self.params.pivot_window).rev() {
            if Self::region_rows(&self.params, p, block).is_empty() {
                continue;
            }
            match lp_core::parity::try_poison_repair(
                ctx,
                &self.handles.table,
                &self.handles.parity,
                self.key(p, block),
                kind,
                self.w.array(),
                &self.region_indices(p, block),
                poisoned,
            ) {
                lp_core::parity::RepairVerdict::Repaired => {
                    stats.repaired_lines += 1;
                    return true;
                }
                lp_core::parity::RepairVerdict::Failed => stats.repair_failures += 1,
                lp_core::parity::RepairVerdict::Clean => break,
            }
        }
        stats.escalations += 1;
        false
    }

    /// Recover one block: newest-first scan of its pivot checksums, then
    /// replay of the later pivots (or everything, from the input). With
    /// `repair` (`LazyParity`), the rung-1 parity repair runs before any
    /// quarantine or recompute decision.
    fn recover_block(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        block: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
        repair: bool,
    ) {
        let window = self.params.pivot_window;
        let mut resume = 0;
        let mut quarantined = false;
        if self.block_poisoned(poisoned, block)
            && !(repair && self.block_poison_repair(ctx, kind, block, poisoned, stats))
        {
            // Media fault inside the block that rung 1 could not (or,
            // without parity, cannot) localize and reconstruct: poison
            // reads as a fixed pattern a weak code can collide with, so no
            // checksum verdict is trusted — quarantine, restore from the
            // preserved input, and replay every pivot. The replay stores
            // fresh checksums, so a crash mid-rebuild re-enters through
            // the normal scan even after the rebuild's own writes scrub
            // the poison.
            stats.regions_quarantined += 1;
            quarantined = true;
        }
        if !quarantined {
            let mut rung1_failed = false;
            for p in (0..window).rev() {
                if Self::region_rows(&self.params, p, block).is_empty() {
                    continue;
                }
                stats.regions_checked += 1;
                let folded = self.fold_region(ctx, kind, p, block);
                if self.handles.table.matches(ctx, self.key(p, block), folded) {
                    resume = p + 1;
                    break;
                }
                stats.regions_inconsistent += 1;
                if repair {
                    // Rung 1 for a silent mismatch: one flipped line of
                    // pivot state `p` is reconstructible from its parity.
                    if lp_core::parity::try_mismatch_repair(
                        ctx,
                        &self.handles.table,
                        &self.handles.parity,
                        self.key(p, block),
                        kind,
                        self.w.array(),
                        &self.region_indices(p, block),
                    ) {
                        stats.repaired_lines += 1;
                        resume = p + 1;
                        break;
                    }
                    stats.repair_failures += 1;
                    rung1_failed = true;
                }
            }
            if rung1_failed && resume < window {
                stats.escalations += 1;
            }
        }
        if resume == 0 {
            self.restore_block_from_input(ctx, block);
        }
        for p in resume..window {
            if Self::region_rows(&self.params, p, block).is_empty() {
                continue;
            }
            let mut sink = if repair {
                RecoverySink::with_parity(kind, self.handles.parity)
            } else {
                RecoverySink::new(kind)
            };
            self.region_body(ctx, p, block, &mut sink);
            sink.commit(ctx, &self.handles.table, self.key(p, block));
            stats.recomputed_regions += 1;
        }
    }

    /// Post-crash recovery, dispatched by scheme.
    pub fn recover(&self, machine: &mut Machine) -> RecoveryStats {
        match self.scheme {
            Scheme::Base => RecoveryStats::default(),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) | Scheme::LazyParity(kind) => {
                let repair = matches!(self.scheme, Scheme::LazyParity(_));
                let mut stats = RecoveryStats::default();
                let poisoned = machine.mem().poisoned_lines();
                let mut ctx = machine.ctx(0);
                let start = ctx.now();
                // Block 0 first: it holds every pivot row of the window.
                for block in 0..self.params.nblocks() {
                    self.recover_block(&mut ctx, kind, block, &poisoned, &mut stats, repair);
                }
                stats.cycles = ctx.now() - start;
                stats
            }
            Scheme::Eager | Scheme::Wal => self.recover_marker_based(machine),
        }
    }

    /// EP/WAL recovery: undo open transactions; for each thread restore
    /// its blocks from the input and replay its whole schedule eagerly.
    /// (Simple and conservative: markers order regions per thread, but a
    /// partially-evicted in-flight region poisons replay state, so blocks
    /// are rebuilt from the preserved input.)
    fn recover_marker_based(&self, machine: &mut Machine) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let owners = self.ownership();
        let window = self.params.pivot_window;
        // The full rebuild below repairs media faults as a side effect;
        // count the quarantined blocks so campaigns see the detection.
        stats.regions_quarantined += (0..self.params.nblocks())
            .filter(|&b| self.block_poisoned(&poisoned, b))
            .count() as u64;
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for t in 0..self.params.threads {
            let tp = self.handles.thread(t);
            if tp.wal_recover(&mut ctx) > 0 {
                stats.regions_inconsistent += 1;
            }
        }
        // Restore every block, then replay pivots in order (single
        // recovery thread, eager persistency).
        for block in 0..self.params.nblocks() {
            self.restore_block_from_input(&mut ctx, block);
        }
        // One sink across the whole replay: successive pivots rewrite
        // overlapping block rows, so a single deduplicated commit at the
        // end flushes each touched line once (and fences once) instead
        // of per region. Nothing publishes progress during the replay —
        // a crash mid-recovery restarts from the preserved input — so
        // deferring durability to the end is safe.
        let mut sink = EagerOnlySink::default();
        for p in 0..window {
            for owned in &owners {
                for &block in owned {
                    if Self::region_rows(&self.params, p, block).is_empty() {
                        continue;
                    }
                    stats.regions_checked += 1;
                    self.region_body(&mut ctx, p, block, &mut sink);
                    stats.recomputed_regions += 1;
                }
            }
        }
        sink.commit(&mut ctx);
        stats.cycles = ctx.now() - start;
        stats
    }
}

/// Convenience driver mirroring [`crate::tmm::run`].
pub fn run(cfg: &MachineConfig, params: GaussParams, scheme: Scheme) -> KernelRun {
    let cfg = cfg.clone().with_cores(params.threads);
    let mut machine = Machine::new(cfg);
    let gauss = Gauss::setup(&mut machine, params, scheme).expect("gauss setup");
    let outcome = machine.run(gauss.plans());
    let stats = machine.stats();
    machine.drain_caches();
    let verified = outcome == Outcome::Completed && gauss.verify(&machine);
    KernelRun {
        stats,
        outcome,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::prelude::CrashTrigger;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(8 << 20)
    }

    #[test]
    fn params_validation() {
        assert!(GaussParams::test_small().validate().is_ok());
        let mut p = GaussParams::test_small();
        p.pivot_window = p.bsize + 1;
        assert!(p.validate().is_err(), "window must fit in block 0");
    }

    #[test]
    fn all_schemes_agree_with_golden() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let r = run(&cfg(), GaussParams::test_small(), scheme);
            assert_eq!(r.outcome, Outcome::Completed, "{scheme}");
            assert!(r.verified, "{scheme}");
        }
    }

    /// The headline rung-1 guarantee: on a fully committed image a single
    /// poisoned line is reconstructed from parity alone — no region is
    /// recomputed, nothing is quarantined, nothing escalates.
    #[test]
    fn parity_repairs_single_poison_without_recompute() {
        let params = GaussParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let k = Gauss::setup(&mut machine, params, Scheme::lazy_parity_default()).unwrap();
        assert_eq!(machine.run(k.plans()), Outcome::Completed);
        machine.drain_caches();
        machine.mem_mut().poison_line(k.flip_lines()[0]);
        let rstats = k.recover(&mut machine);
        machine.drain_caches();
        assert!(k.verify(&machine), "repaired image must verify");
        assert_eq!(rstats.repaired_lines, 1);
        assert_eq!(rstats.recomputed_regions, 0);
        assert_eq!(rstats.regions_quarantined, 0);
        assert_eq!(rstats.repair_failures, 0);
        assert_eq!(rstats.escalations, 0);
    }

    #[test]
    fn region_rows_skip_pivot_and_earlier() {
        let p = GaussParams::test_small(); // bsize 8
        assert_eq!(Gauss::region_rows(&p, 0, 0), 1..8);
        assert_eq!(Gauss::region_rows(&p, 3, 0), 4..8);
        assert_eq!(Gauss::region_rows(&p, 3, 1), 8..16);
        // A fully-consumed block yields an empty range.
        assert!(Gauss::region_rows(&p, 7, 0).is_empty());
    }

    #[test]
    fn lazy_recovery_roundtrip() {
        for ops in [200u64, 2_000, 5_000, 8_000] {
            let params = GaussParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let g = Gauss::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
            assert_eq!(machine.run(g.plans()), Outcome::Crashed, "at {ops}");
            machine.clear_crash_trigger();
            let rstats = g.recover(&mut machine);
            machine.drain_caches();
            assert!(g.verify(&machine), "crash at {ops} ops");
            assert!(rstats.regions_checked > 0);
        }
    }

    #[test]
    fn eager_and_wal_recovery_roundtrip() {
        for scheme in [Scheme::Eager, Scheme::Wal] {
            for ops in [500u64, 10_000] {
                let params = GaussParams::test_small();
                let mut machine = Machine::new(cfg().with_cores(params.threads));
                let g = Gauss::setup(&mut machine, params, scheme).unwrap();
                machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
                assert_eq!(
                    machine.run(g.plans()),
                    Outcome::Crashed,
                    "{scheme} at {ops}"
                );
                machine.clear_crash_trigger();
                g.recover(&mut machine);
                machine.drain_caches();
                assert!(g.verify(&machine), "{scheme} at {ops}");
            }
        }
    }

    #[test]
    fn golden_matches_independent_column_major_elimination() {
        // Same elimination computed with a different loop nest: factors
        // for the whole column first, then column-major updates.
        let params = GaussParams::test_small();
        let n = params.n;
        let w = Gauss::golden(&params);
        let mut w2 = gauss_input(params.seed, n);
        for p in 0..params.pivot_window {
            let pivot = w2[p * n + p];
            for r in p + 1..n {
                w2[r * n + p] /= pivot;
            }
            for j in p + 1..n {
                let wpj = w2[p * n + j];
                for r in p + 1..n {
                    let f = w2[r * n + p];
                    w2[r * n + j] -= f * wpj;
                }
            }
        }
        assert!(crate::common::max_abs_diff(&w, &w2) < 1e-9);
    }
}

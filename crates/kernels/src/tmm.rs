//! Tiled matrix multiplication (`tmm`) — the paper's running example
//! (Figures 3, 4, 8 and 9) and the workload behind Figures 10, 11, 14, 15
//! and Tables IV and VI.
//!
//! `c = a · b` with the standard 6-loop tiling (`kk, ii, jj, i, j, k`).
//! The LP region is one `ii` iteration within a `kk` iteration — a
//! `bsize × n` horizontal strip of `c` accumulating one `kk` partial
//! product. Threads own disjoint `ii` strips, so regions of different
//! threads never share output lines and the checksum table is indexed
//! collision-free by `(kk, ii)`.
//!
//! Regions within one `kk` are associative; across `kk` there are output
//! dependences (each `kk` accumulates into `c`), which recovery handles by
//! scanning checksums in *reverse* `kk` order per strip (Figure 9 plus the
//! per-strip "optimized Repair" the paper describes): the latest `kk` whose
//! checksum matches the surviving data identifies the strip's durable
//! state, and only later `kk` contributions are recomputed — eagerly, so
//! recovery itself makes forward progress.

use crate::common::{
    random_values, round_robin_blocks, EagerOnlySink, KernelRun, PMatrix, RecoverySink, SchemeSink,
    StoreSink, IDX_OPS, MUL_ADD_OPS,
};
use lp_core::checksum::ChecksumKind;
use lp_core::recovery::RecoveryStats;
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome, ThreadPlan};
use lp_sim::mem::OutOfPersistentMemory;

/// Journal value marking a strip rebuild in progress during EP/WAL
/// recovery. Those schemes never use the checksum table, so the slot for
/// region `(0, ib)` doubles as a durable quarantine record: a nested crash
/// mid-rebuild re-enters the rebuild even after the rebuild's own writes
/// scrubbed the poison registry that first triggered it.
const REBUILD_ARMED: u64 = 0x5EBD_5EBD_5EBD_5EBD;
/// Journal value marking a completed strip rebuild.
const REBUILD_CLEARED: u64 = 0;

/// Problem and windowing parameters for one tmm run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmmParams {
    /// Matrix dimension (`n × n`); must be a multiple of `bsize`.
    pub n: usize,
    /// Tile size (paper default 16: one strip line persists with one
    /// `clflushopt`).
    pub bsize: usize,
    /// Worker threads (logical cores).
    pub threads: usize,
    /// Number of outer `kk` iterations to simulate (the paper windows tmm
    /// to 2 of `n/bsize`); capped at `n / bsize`.
    pub kk_window: usize,
    /// Seed for the deterministic random inputs.
    pub seed: u64,
}

impl TmmParams {
    /// Smallest meaningful parameters, sized for exhaustive crash-state
    /// model checking (one full replay per crash point).
    pub fn micro() -> Self {
        TmmParams {
            n: 16,
            bsize: 8,
            threads: 2,
            kk_window: 1,
            seed: 42,
        }
    }

    /// Parameters sized for fast unit tests.
    pub fn test_small() -> Self {
        TmmParams {
            n: 32,
            bsize: 8,
            threads: 2,
            kk_window: 2,
            seed: 42,
        }
    }

    /// Parameters sized like the paper's simulation window (scaled down:
    /// 256² matrices instead of 1024², same 2-`kk` window, 8 threads).
    pub fn bench_default() -> Self {
        TmmParams {
            n: 256,
            bsize: 16,
            threads: 8,
            kk_window: 2,
            seed: 42,
        }
    }

    /// The paper's exact Table IV setup: 1024² matrices, tile size 16,
    /// 8 worker threads, a 2-`kk` simulation window (1/32 of the run).
    pub fn paper_default() -> Self {
        TmmParams {
            n: 1024,
            bsize: 16,
            threads: 8,
            kk_window: 2,
            seed: 42,
        }
    }

    /// Number of `ii` strips.
    pub fn nb(&self) -> usize {
        self.n / self.bsize
    }

    /// Effective `kk` window (capped at `nb`).
    pub fn window(&self) -> usize {
        self.kk_window.min(self.nb())
    }

    /// Validate divisibility and thread count.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bsize == 0 || !self.n.is_multiple_of(self.bsize) {
            return Err(format!(
                "n={} must be a multiple of bsize={}",
                self.n, self.bsize
            ));
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.kk_window == 0 {
            return Err("kk_window must be >= 1".into());
        }
        Ok(())
    }
}

/// A configured tmm workload on a machine: inputs, output, scheme state.
#[derive(Debug, Clone)]
pub struct Tmm {
    /// Parameters.
    pub params: TmmParams,
    /// The active scheme.
    pub scheme: Scheme,
    /// Input matrix `a` (read-only during the run).
    pub a: PMatrix,
    /// Input matrix `b` (read-only during the run).
    pub b: PMatrix,
    /// Output matrix `c` (initialized to zero).
    pub c: PMatrix,
    /// Scheme support structures.
    pub handles: SchemeHandles,
}

impl Tmm {
    /// Allocate and initialize the workload on `machine` (untimed setup:
    /// inputs are durable before the measured run starts).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the heap is too small, or a
    /// parameter-validation message.
    pub fn setup(machine: &mut Machine, params: TmmParams, scheme: Scheme) -> Result<Self, String> {
        params.validate()?;
        let alloc = |e: OutOfPersistentMemory| e.to_string();
        let n = params.n;
        let a = PMatrix::alloc(machine, n, n).map_err(alloc)?;
        let b = PMatrix::alloc(machine, n, n).map_err(alloc)?;
        let c = PMatrix::alloc(machine, n, n).map_err(alloc)?;
        a.fill(machine, &random_values(params.seed, n * n));
        b.fill(machine, &random_values(params.seed ^ 0x5eed, n * n));
        // c starts at zero (freshly poked so the durable image is clean).
        c.fill(machine, &vec![0.0; n * n]);
        let nb = params.nb();
        let handles = SchemeHandles::alloc(
            machine,
            scheme,
            nb * nb,
            params.threads,
            params.bsize * n + 8,
        )
        .map_err(alloc)?;
        Ok(Tmm {
            params,
            scheme,
            a,
            b,
            c,
            handles,
        })
    }

    /// Collision-free checksum-table / marker key for region `(kb, ib)`.
    pub fn key(&self, kb: usize, ib: usize) -> usize {
        kb * self.params.nb() + ib
    }

    /// Inverse of [`Tmm::key`].
    pub fn key_to_region(&self, key: usize) -> (usize, usize) {
        (key / self.params.nb(), key % self.params.nb())
    }

    /// The strip indices owned by each thread (round-robin over `ii`
    /// strips, like the paper's static parallelization).
    pub fn ownership(&self) -> Vec<Vec<usize>> {
        round_robin_blocks(self.params.nb(), self.params.threads)
    }

    /// `(i, j)` store order of region `(·, ib)`: the `jj → i → j` loop
    /// nest of Figure 8. Checksum folds follow exactly this order.
    pub fn region_elems(params: &TmmParams, ib: usize) -> impl Iterator<Item = (usize, usize)> {
        let (n, bsize) = (params.n, params.bsize);
        let ii = ib * bsize;
        (0..n).step_by(bsize).flat_map(move |jj| {
            (ii..ii + bsize).flat_map(move |i| (jj..jj + bsize).map(move |j| (i, j)))
        })
    }

    /// One region's computation: accumulate the `kk` strip partial product
    /// into `c`'s `ii` strip, routing stores through `sink`.
    fn region_body<S: StoreSink>(&self, ctx: &mut CoreCtx<'_>, kb: usize, ib: usize, sink: &mut S) {
        let (n, bsize) = (self.params.n, self.params.bsize);
        let kk = kb * bsize;
        let ii = ib * bsize;
        for jj in (0..n).step_by(bsize) {
            for i in ii..ii + bsize {
                for j in jj..jj + bsize {
                    let init = self.c.load(ctx, i, j);
                    let sum = self.a.fma_row_col(
                        ctx,
                        i,
                        kk,
                        &self.b,
                        j,
                        bsize,
                        MUL_ADD_OPS + IDX_OPS,
                        1.0,
                        init,
                    );
                    sink.store(ctx, self.c.array(), self.c.idx(i, j), sum);
                    ctx.compute(IDX_OPS);
                }
            }
        }
    }

    /// Build the per-thread schedules: `kk`-major over each thread's owned
    /// strips, one scheduled region per `(kk, ii)` (Figure 8's structure).
    /// Persistent address ranges for the `lp-check` sanitizer: the
    /// protected output, the read-only inputs, and the scheme's own
    /// structures.
    pub fn tracked_ranges(&self) -> Vec<lp_core::track::TrackedRange> {
        use lp_core::track::{RangeRole, TrackedRange};
        let mut out = vec![
            TrackedRange::of("tmm.c", self.c.array(), RangeRole::Protected),
            TrackedRange::of("tmm.a", self.a.array(), RangeRole::Scratch),
            TrackedRange::of("tmm.b", self.b.array(), RangeRole::Scratch),
        ];
        out.extend(self.handles.ranges());
        out
    }

    /// Build the scheduled per-core work plans for one run.
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        let owners = self.ownership();
        let mut plans: Vec<ThreadPlan<'static>> = (0..self.params.threads)
            .map(|_| ThreadPlan::new())
            .collect();
        for (t, owned) in owners.into_iter().enumerate() {
            let tp = self.handles.thread(t);
            for kb in 0..self.params.window() {
                for &ib in &owned {
                    let this = self.clone();
                    plans[t].region(move |ctx| {
                        let key = this.key(kb, ib);
                        let mut rs = tp.begin(ctx, key);
                        let mut sink = SchemeSink { tp, rs: &mut rs };
                        this.region_body(ctx, kb, ib, &mut sink);
                        tp.commit(ctx, rs);
                    });
                }
            }
        }
        plans
    }

    /// Host golden reference for the simulated window (same accumulation
    /// order as the simulated kernel).
    pub fn golden(params: &TmmParams) -> Vec<f64> {
        let n = params.n;
        let bsize = params.bsize;
        let a = random_values(params.seed, n * n);
        let b = random_values(params.seed ^ 0x5eed, n * n);
        let mut c = vec![0.0f64; n * n];
        for kb in 0..params.window() {
            let kk = kb * bsize;
            for ii in (0..n).step_by(bsize) {
                for jj in (0..n).step_by(bsize) {
                    for i in ii..ii + bsize {
                        for j in jj..jj + bsize {
                            let mut sum = c[i * n + j];
                            for k in kk..kk + bsize {
                                sum += a[i * n + k] * b[k * n + j];
                            }
                            c[i * n + j] = sum;
                        }
                    }
                }
            }
        }
        c
    }

    /// Whether the durable image of `c` matches the golden reference.
    pub fn verify(&self, machine: &Machine) -> bool {
        crate::common::values_match(&self.c.peek_all(machine), &Self::golden(&self.params))
    }

    /// Lines of the protected output that recovery provably rebuilds —
    /// the fault campaign's media-fault target set. Data spans only: row
    /// padding is never verified (lines straddling into padding are fine;
    /// their pad bytes simply stay unchecked).
    pub fn repairable_lines(&self) -> Vec<LineAddr> {
        let n = self.params.n;
        let mut lines: Vec<LineAddr> = (0..n)
            .flat_map(|i| self.c.array().lines_of_range(self.c.idx(i, 0), n))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines a silent bit flip may target under Lazy schemes: same set as
    /// [`Self::repairable_lines`]. Every checksum of a strip covers the
    /// whole strip, so a flip anywhere in its data fails every scan level
    /// and forces a zero-and-replay rebuild; strips with no committed
    /// checksum are rebuilt (re-zeroed) unconditionally.
    pub fn flip_lines(&self) -> Vec<LineAddr> {
        self.repairable_lines()
    }

    /// Whether any line of strip `ib`'s data spans is poisoned.
    fn strip_poisoned(&self, poisoned: &[LineAddr], ib: usize) -> bool {
        let (n, bsize) = (self.params.n, self.params.bsize);
        let ii = ib * bsize;
        (ii..ii + bsize).any(|i| {
            lp_core::recovery::range_poisoned(poisoned, self.c.array(), self.c.idx(i, 0), n)
        })
    }

    /// Whether strip `ib`'s durable rebuild journal is armed (a prior
    /// EP/WAL recovery crashed mid-rebuild).
    fn strip_rebuild_armed(&self, ctx: &mut CoreCtx<'_>, ib: usize) -> bool {
        self.handles.table.load(ctx, self.key(0, ib)) == Some(REBUILD_ARMED)
    }

    /// Durably rebuild strip `ib` from its initial zeros through its first
    /// `kbs_done` `kk` contributions (EP/WAL recovery). The rebuild is
    /// journalled in the strip's table slot so it is re-entered after a
    /// nested crash.
    fn rebuild_strip(
        &self,
        ctx: &mut CoreCtx<'_>,
        ib: usize,
        kbs_done: usize,
        stats: &mut RecoveryStats,
    ) {
        let (n, bsize) = (self.params.n, self.params.bsize);
        let key = self.key(0, ib);
        self.handles.table.store(ctx, key, REBUILD_ARMED);
        self.handles.table.persist(ctx, key);
        let ii = ib * bsize;
        for i in ii..ii + bsize {
            self.c.store_row_run(ctx, i, 0, n, 0.0);
        }
        self.c.flush_rows(ctx, ii, bsize);
        ctx.sfence();
        // One sink across the whole replay: every `kb` contribution
        // rewrites the same strip rows, so a single deduplicated commit
        // flushes each line once (and fences once) instead of per
        // iteration. Durability is only needed before REBUILD_CLEARED
        // publishes below; a crash mid-replay re-enters via the armed
        // journal slot.
        let mut sink = EagerOnlySink::default();
        for kb in 0..kbs_done {
            self.region_body(ctx, kb, ib, &mut sink);
            stats.recomputed_regions += 1;
        }
        sink.commit(ctx);
        self.handles.table.store(ctx, key, REBUILD_CLEARED);
        self.handles.table.persist(ctx, key);
    }

    /// `kk` contributions of the strip at position `pos` in its owner's
    /// strip list that committed before the crash, given the owner's
    /// resume position `done` in its `kk`-major schedule.
    fn strip_kbs_done(&self, done: usize, pos: usize, owned_len: usize) -> usize {
        let window = self.params.window();
        if done > pos {
            (done - pos).div_ceil(owned_len).min(window)
        } else {
            0
        }
    }

    /// Post-crash recovery, dispatched by scheme. Runs single-threaded on
    /// core 0 with Eager Persistency, per Section III-E.
    pub fn recover(&self, machine: &mut Machine) -> RecoveryStats {
        match self.scheme {
            Scheme::Base => RecoveryStats::default(),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) => {
                self.recover_lazy(machine, kind, false)
            }
            Scheme::LazyParity(kind) => self.recover_lazy(machine, kind, true),
            Scheme::Eager => self.recover_eager(machine),
            Scheme::Wal => self.recover_wal(machine),
        }
    }

    /// Rung 1 for a poisoned strip under `LazyParity`: scan `kk`
    /// newest-first for a committed region whose parity line reconstructs
    /// the offending line bit-exactly (stale or not-yet-committed `kk`s
    /// fail the re-verification and the scan continues). Returns `true` on
    /// repair; `false` records the escalation to rung 2.
    fn strip_poison_repair(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        ib: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
    ) -> bool {
        let indices: Vec<usize> = Self::region_elems(&self.params, ib)
            .map(|(i, j)| self.c.idx(i, j))
            .collect();
        for kb in (0..self.params.window()).rev() {
            match lp_core::parity::try_poison_repair(
                ctx,
                &self.handles.table,
                &self.handles.parity,
                self.key(kb, ib),
                kind,
                self.c.array(),
                &indices,
                poisoned,
            ) {
                lp_core::parity::RepairVerdict::Repaired => {
                    stats.repaired_lines += 1;
                    return true;
                }
                lp_core::parity::RepairVerdict::Failed => stats.repair_failures += 1,
                lp_core::parity::RepairVerdict::Clean => break,
            }
        }
        stats.escalations += 1;
        false
    }

    /// Figure 9's recovery with the per-strip optimization: for each `ii`
    /// strip, scan `kk` checksums newest-first; the first match is the
    /// strip's durable state, and only later `kk`s are recomputed. With
    /// `repair` (`LazyParity`), each rung of the escalation ladder runs
    /// first: parity-repair a poisoned or silently-flipped line, and only
    /// recompute when reconstruction cannot re-verify.
    fn recover_lazy(
        &self,
        machine: &mut Machine,
        kind: ChecksumKind,
        repair: bool,
    ) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let window = self.params.window();
        let (n, bsize) = (self.params.n, self.params.bsize);
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for ib in 0..self.params.nb() {
            // Newest-first scan (reverse program order, Figure 9 line 1).
            let mut resume = 0;
            let mut quarantined = false;
            if self.strip_poisoned(&poisoned, ib)
                && !(repair && self.strip_poison_repair(&mut ctx, kind, ib, &poisoned, &mut stats))
            {
                // Media fault inside the strip that rung 1 could not (or,
                // without parity, cannot) localize and reconstruct: poison
                // reads as a fixed pattern a weak code can collide with,
                // so no checksum verdict is trusted — quarantine and
                // rebuild from the initial zeros. The replay stores fresh
                // checksums, so a crash mid-rebuild re-enters through the
                // normal scan even after the rebuild's own writes scrub
                // the poison.
                stats.regions_quarantined += window as u64;
                quarantined = true;
            }
            if !quarantined {
                let mut rung1_failed = false;
                for kb in (0..window).rev() {
                    stats.regions_checked += 1;
                    let consistent = lp_core::recovery::region_consistent(
                        &mut ctx,
                        &self.handles.table,
                        self.key(kb, ib),
                        kind,
                        self.c.array(),
                        Self::region_elems(&self.params, ib).map(|(i, j)| self.c.idx(i, j)),
                    );
                    if consistent {
                        resume = kb + 1;
                        break;
                    }
                    stats.regions_inconsistent += 1;
                    if repair {
                        // Rung 1 for a silent mismatch: a single flipped
                        // line of state `kb` is reconstructible from the
                        // region's parity; anything else falls through.
                        let indices: Vec<usize> = Self::region_elems(&self.params, ib)
                            .map(|(i, j)| self.c.idx(i, j))
                            .collect();
                        if lp_core::parity::try_mismatch_repair(
                            &mut ctx,
                            &self.handles.table,
                            &self.handles.parity,
                            self.key(kb, ib),
                            kind,
                            self.c.array(),
                            &indices,
                        ) {
                            stats.repaired_lines += 1;
                            resume = kb + 1;
                            break;
                        }
                        stats.repair_failures += 1;
                        rung1_failed = true;
                    }
                }
                if resume >= window {
                    continue; // strip fully durable
                }
                if rung1_failed {
                    stats.escalations += 1;
                }
            }
            if resume == 0 {
                // No durable state: zero the strip (its initial value) and
                // persist the zeros so a crash during recovery re-enters
                // the same path.
                let ii = ib * bsize;
                for i in ii..ii + bsize {
                    self.c.store_row_run(&mut ctx, i, 0, n, 0.0);
                }
                self.c.flush_rows(&mut ctx, ii, bsize);
                ctx.sfence();
            }
            for kb in resume..window {
                let mut sink = if repair {
                    RecoverySink::with_parity(kind, self.handles.parity)
                } else {
                    RecoverySink::new(kind)
                };
                self.region_body(&mut ctx, kb, ib, &mut sink);
                sink.commit(&mut ctx, &self.handles.table, self.key(kb, ib));
                stats.recomputed_regions += 1;
            }
        }
        stats.cycles = ctx.now() - start;
        stats
    }

    /// EagerRecompute recovery: each thread's durable marker names its
    /// last committed region. The (single) region it was executing may
    /// have leaked partial stores via natural evictions, so its strip is
    /// rebuilt from scratch up to the preceding `kk`, then the remaining
    /// schedule re-runs eagerly.
    fn recover_eager(&self, machine: &mut Machine) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let owners = self.ownership();
        let window = self.params.window();
        // Gather each thread's resume position before taking a ctx borrow.
        let completed: Vec<usize> = (0..self.params.threads)
            .map(|t| {
                let marker = self.handles.thread(t).peek_marker(machine);
                if marker == 0 {
                    0
                } else {
                    let key = (marker - 1) as usize;
                    let (kb, ib) = self.key_to_region(key);
                    let pos_in_kk = owners[t].iter().position(|&b| b == ib).expect("owned");
                    kb * owners[t].len() + pos_in_kk + 1
                }
            })
            .collect();
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for (t, owned) in owners.iter().enumerate() {
            let seq: Vec<(usize, usize)> = (0..window)
                .flat_map(|kb| owned.iter().map(move |&ib| (kb, ib)))
                .collect();
            let done = completed[t];
            stats.regions_checked += seq.len() as u64;
            // Strips whose durable bytes cannot be trusted: the in-flight
            // region's strip may hold partially-evicted stores, and
            // poisoned or journal-armed strips were hit by (or were
            // mid-repair from) a media fault — markers vouch for
            // committed progress, not for the medium.
            let mut rebuild: Vec<usize> = Vec::new();
            if done < seq.len() {
                stats.regions_inconsistent += 1;
                rebuild.push(seq[done].1);
            }
            for &ib in owned {
                if (self.strip_poisoned(&poisoned, ib) || self.strip_rebuild_armed(&mut ctx, ib))
                    && !rebuild.contains(&ib)
                {
                    stats.regions_quarantined += 1;
                    rebuild.push(ib);
                }
            }
            for &ib in &rebuild {
                let pos = owned.iter().position(|&b| b == ib).expect("owned");
                let kbs_done = self.strip_kbs_done(done, pos, owned.len());
                self.rebuild_strip(&mut ctx, ib, kbs_done, &mut stats);
            }
            if done >= seq.len() {
                continue;
            }
            // Re-run the rest of the schedule eagerly, advancing markers.
            let tp = self.handles.thread(t);
            for &(kb, ib) in &seq[done..] {
                let key = self.key(kb, ib);
                let mut rs = tp.begin(&mut ctx, key);
                let mut sink = SchemeSink { tp, rs: &mut rs };
                self.region_body(&mut ctx, kb, ib, &mut sink);
                tp.commit(&mut ctx, rs);
                stats.recomputed_regions += 1;
            }
        }
        stats.cycles = ctx.now() - start;
        stats
    }

    /// WAL recovery: roll back any interrupted transaction per thread,
    /// then re-run the remaining schedule transactionally.
    fn recover_wal(&self, machine: &mut Machine) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let owners = self.ownership();
        let window = self.params.window();
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for (t, owned) in owners.iter().enumerate() {
            let tp = self.handles.thread(t);
            let undone = tp.wal_recover(&mut ctx);
            if undone > 0 {
                stats.regions_inconsistent += 1;
            }
            // The marker must be read after the rollback: the commit logs
            // the marker's undo pair, so undoing an interrupted
            // transaction rewinds the marker with it.
            let marker = tp.marker(&mut ctx);
            let seq: Vec<(usize, usize)> = (0..window)
                .flat_map(|kb| owned.iter().map(move |&ib| (kb, ib)))
                .collect();
            let done = if marker == 0 {
                0
            } else {
                let (kb, ib) = self.key_to_region((marker - 1) as usize);
                let pos = owned.iter().position(|&b| b == ib).expect("owned");
                kb * owned.len() + pos + 1
            };
            stats.regions_checked += seq.len() as u64;
            // The undo log restores pre-transaction bytes, but markers and
            // logs vouch for committed progress, not for the medium:
            // strips hit by (or mid-repair from) a media fault are rebuilt
            // from their initial zeros.
            for (pos, &ib) in owned.iter().enumerate() {
                if self.strip_poisoned(&poisoned, ib) || self.strip_rebuild_armed(&mut ctx, ib) {
                    stats.regions_quarantined += 1;
                    let kbs_done = self.strip_kbs_done(done, pos, owned.len());
                    self.rebuild_strip(&mut ctx, ib, kbs_done, &mut stats);
                }
            }
            for &(kb, ib) in &seq[done..] {
                let key = self.key(kb, ib);
                let mut rs = tp.begin(&mut ctx, key);
                let mut sink = SchemeSink { tp, rs: &mut rs };
                self.region_body(&mut ctx, kb, ib, &mut sink);
                tp.commit(&mut ctx, rs);
                stats.recomputed_regions += 1;
            }
        }
        stats.cycles = ctx.now() - start;
        stats
    }
}

/// Convenience driver: build a machine, run the window, verify against the
/// golden reference. Statistics are snapshotted *before* the end-of-run
/// drain so the write counts match the paper's in-window methodology.
pub fn run(cfg: &MachineConfig, params: TmmParams, scheme: Scheme) -> KernelRun {
    let cfg = cfg.clone().with_cores(params.threads);
    let mut machine = Machine::new(cfg);
    let tmm = Tmm::setup(&mut machine, params, scheme).expect("tmm setup");
    let outcome = machine.run(tmm.plans());
    let stats = machine.stats();
    machine.drain_caches();
    let verified = outcome == Outcome::Completed && tmm.verify(&machine);
    KernelRun {
        stats,
        outcome,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::prelude::CrashTrigger;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(8 << 20)
    }

    #[test]
    fn params_validate() {
        assert!(TmmParams::test_small().validate().is_ok());
        let mut p = TmmParams::test_small();
        p.bsize = 7;
        assert!(p.validate().is_err());
        p = TmmParams::test_small();
        p.threads = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn all_schemes_compute_the_same_product() {
        let params = TmmParams::test_small();
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let run = run(&cfg(), params, scheme);
            assert_eq!(run.outcome, Outcome::Completed, "{scheme}");
            assert!(run.verified, "{scheme} produced a wrong product");
        }
    }

    /// The headline rung-1 guarantee: on a fully committed image a single
    /// poisoned line is reconstructed from parity alone — no region is
    /// recomputed, nothing is quarantined, nothing escalates.
    #[test]
    fn parity_repairs_single_poison_without_recompute() {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let k = Tmm::setup(&mut machine, params, Scheme::lazy_parity_default()).unwrap();
        assert_eq!(machine.run(k.plans()), Outcome::Completed);
        machine.drain_caches();
        machine.mem_mut().poison_line(k.repairable_lines()[0]);
        let rstats = k.recover(&mut machine);
        machine.drain_caches();
        assert!(k.verify(&machine), "repaired image must verify");
        assert_eq!(rstats.repaired_lines, 1);
        assert_eq!(rstats.recomputed_regions, 0);
        assert_eq!(rstats.regions_quarantined, 0);
        assert_eq!(rstats.repair_failures, 0);
        assert_eq!(rstats.escalations, 0);
    }

    #[test]
    fn scheme_cost_ordering_matches_figure_10() {
        let params = TmmParams::test_small();
        let base = run(&cfg(), params, Scheme::Base);
        let lp = run(&cfg(), params, Scheme::lazy_default());
        let ep = run(&cfg(), params, Scheme::Eager);
        let wal = run(&cfg(), params, Scheme::Wal);
        // Execution time: base <= LP < EP, WAL (the EP/WAL order at this
        // tiny scale is noise; Figure 10's paper-scale run separates them).
        assert!(lp.cycles() >= base.cycles());
        assert!(
            ep.cycles() > lp.cycles(),
            "EP {} vs LP {}",
            ep.cycles(),
            lp.cycles()
        );
        assert!(
            wal.cycles() > lp.cycles(),
            "WAL {} vs LP {}",
            wal.cycles(),
            lp.cycles()
        );
        // Writes: LP close to base, EP and WAL amplified.
        assert!(ep.writes() > lp.writes());
        assert!(wal.writes() > ep.writes());
        // LP overhead over base should be small (figure reports ~0.2%;
        // allow slack for the tiny test size).
        let lp_overhead = lp.cycles() as f64 / base.cycles() as f64;
        assert!(lp_overhead < 1.25, "LP overhead {lp_overhead}");
        let ep_overhead = ep.cycles() as f64 / base.cycles() as f64;
        assert!(ep_overhead > lp_overhead);
    }

    #[test]
    fn lp_never_flushes_or_fences() {
        let run = run(&cfg(), TmmParams::test_small(), Scheme::lazy_default());
        let t = run.stats.core_totals();
        assert_eq!(t.flushes, 0);
        assert_eq!(t.fences, 0);
        assert_eq!(run.stats.mem.nvmm_writes_flush, 0);
    }

    #[test]
    fn region_elems_order_is_jj_i_j() {
        let params = TmmParams {
            n: 4,
            bsize: 2,
            threads: 1,
            kk_window: 1,
            seed: 0,
        };
        let elems: Vec<_> = Tmm::region_elems(&params, 1).collect();
        assert_eq!(
            elems,
            vec![
                (2, 0),
                (2, 1),
                (3, 0),
                (3, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3)
            ]
        );
    }

    #[test]
    fn keys_are_collision_free() {
        let mut m = Machine::new(cfg().with_cores(2));
        let tmm = Tmm::setup(&mut m, TmmParams::test_small(), Scheme::lazy_default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for kb in 0..tmm.params.window() {
            for ib in 0..tmm.params.nb() {
                assert!(seen.insert(tmm.key(kb, ib)));
                assert_eq!(tmm.key_to_region(tmm.key(kb, ib)), (kb, ib));
            }
        }
        assert!(seen.iter().all(|&k| k < tmm.handles.table.len()));
    }

    fn crash_and_recover(scheme: Scheme, trigger: CrashTrigger) -> (bool, RecoveryStats) {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let tmm = Tmm::setup(&mut machine, params, scheme).unwrap();
        machine.set_crash_trigger(trigger);
        let outcome = machine.run(tmm.plans());
        assert_eq!(outcome, Outcome::Crashed, "trigger should have fired");
        machine.clear_crash_trigger();
        machine.take_stats();
        let rstats = tmm.recover(&mut machine);
        machine.drain_caches();
        (tmm.verify(&machine), rstats)
    }

    #[test]
    fn lazy_recovery_restores_correct_output() {
        for ops in [50u64, 500, 5_000, 20_000] {
            let (ok, rstats) =
                crash_and_recover(Scheme::lazy_default(), CrashTrigger::AfterMemOps(ops));
            assert!(ok, "LP recovery failed for crash at {ops} ops");
            assert!(rstats.regions_checked > 0);
        }
    }

    #[test]
    fn lazy_recovery_after_write_count_crash() {
        // Small caches so natural evictions (and hence NVMM writes) happen
        // early enough for the trigger to fire mid-run.
        let params = TmmParams::test_small();
        for writes in [1u64, 8, 64] {
            let mut machine = Machine::new(
                cfg()
                    .with_cores(params.threads)
                    .with_l1_bytes(2 * 1024)
                    .with_l2_bytes(8 * 1024),
            );
            let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterNvmmWrites(writes));
            let outcome = machine.run(tmm.plans());
            assert_eq!(outcome, Outcome::Crashed, "at {writes} writes");
            machine.clear_crash_trigger();
            let _ = tmm.recover(&mut machine);
            machine.drain_caches();
            assert!(
                tmm.verify(&machine),
                "LP recovery failed for crash at {writes} writes"
            );
        }
    }

    #[test]
    fn eager_recovery_restores_correct_output() {
        for ops in [100u64, 2_000, 30_000] {
            let (ok, rstats) = crash_and_recover(Scheme::Eager, CrashTrigger::AfterMemOps(ops));
            assert!(ok, "EP recovery failed for crash at {ops} ops");
            assert!(rstats.recomputed_regions > 0);
        }
    }

    #[test]
    fn wal_recovery_restores_correct_output() {
        for ops in [100u64, 5_000, 20_000] {
            let (ok, _) = crash_and_recover(Scheme::Wal, CrashTrigger::AfterMemOps(ops));
            assert!(ok, "WAL recovery failed for crash at {ops} ops");
        }
    }

    #[test]
    fn crash_during_recovery_then_rerecover() {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(3_000));
        assert_eq!(machine.run(tmm.plans()), Outcome::Crashed);
        machine.clear_crash_trigger();
        // First recovery attempt is itself cut short.
        let ops_so_far = machine.mem().mem_ops();
        machine
            .mem_mut()
            .set_crash_trigger(Some(CrashTrigger::AfterMemOps(ops_so_far + 2_000)));
        let _ = tmm.recover(&mut machine);
        assert!(machine.mem().crashed(), "recovery crash should have fired");
        machine.mem_mut().acknowledge_crash();
        // Second recovery completes the job.
        let _ = tmm.recover(&mut machine);
        machine.drain_caches();
        assert!(tmm.verify(&machine), "re-recovery must converge");
    }

    #[test]
    fn recovery_on_clean_run_is_cheap_noop() {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        assert_eq!(machine.run(tmm.plans()), Outcome::Completed);
        machine.drain_caches(); // everything durable
        let rstats = tmm.recover(&mut machine);
        assert_eq!(rstats.recomputed_regions, 0, "nothing to repair");
        assert!(tmm.verify(&machine));
    }
}

//! Uniform dispatch over the five simulated kernels, for the experiment
//! harness and cross-kernel figures (Figures 12 and 13).

use crate::common::KernelRun;
use lp_core::scheme::Scheme;
use lp_sim::config::MachineConfig;

/// Which simulated kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelId {
    /// Tiled matrix multiplication.
    Tmm,
    /// Cholesky factorization.
    Cholesky,
    /// 2-D convolution.
    Conv2d,
    /// Gaussian elimination.
    Gauss,
    /// Fast Fourier transform.
    Fft,
}

impl KernelId {
    /// All kernels in the paper's figure order.
    pub const ALL: [KernelId; 5] = [
        KernelId::Tmm,
        KernelId::Cholesky,
        KernelId::Conv2d,
        KernelId::Gauss,
        KernelId::Fft,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Tmm => "TMM",
            KernelId::Cholesky => "Cholesky",
            KernelId::Conv2d => "2D-conv",
            KernelId::Gauss => "Gauss",
            KernelId::Fft => "FFT",
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem scale for dispatched runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second per run).
    Test,
    /// Bench-default inputs mirroring the paper's simulation windows
    /// (seconds per run).
    Bench,
    /// Paper-scale inputs (tens of seconds per run).
    Paper,
}

/// Run `kernel` under `scheme` at `scale` on a machine configured by
/// `cfg` (core count is overridden by the kernel's thread parameter).
pub fn run_kernel(kernel: KernelId, scale: Scale, cfg: &MachineConfig, scheme: Scheme) -> KernelRun {
    match (kernel, scale) {
        (KernelId::Tmm, Scale::Test) => crate::tmm::run(cfg, crate::tmm::TmmParams::test_small(), scheme),
        (KernelId::Tmm, Scale::Bench) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::bench_default(), scheme)
        }
        (KernelId::Tmm, Scale::Paper) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::paper_default(), scheme)
        }
        (KernelId::Cholesky, Scale::Paper) => {
            crate::cholesky::run(cfg, crate::cholesky::CholeskyParams::paper_default(), scheme)
        }
        (KernelId::Conv2d, Scale::Paper) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::paper_default(), scheme)
        }
        (KernelId::Gauss, Scale::Paper) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::paper_default(), scheme)
        }
        (KernelId::Fft, Scale::Paper) => {
            crate::fft::run(cfg, crate::fft::FftParams::paper_default(), scheme)
        }
        (KernelId::Cholesky, Scale::Test) => {
            crate::cholesky::run(cfg, crate::cholesky::CholeskyParams::test_small(), scheme)
        }
        (KernelId::Cholesky, Scale::Bench) => {
            crate::cholesky::run(cfg, crate::cholesky::CholeskyParams::bench_default(), scheme)
        }
        (KernelId::Conv2d, Scale::Test) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::test_small(), scheme)
        }
        (KernelId::Conv2d, Scale::Bench) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::bench_default(), scheme)
        }
        (KernelId::Gauss, Scale::Test) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::test_small(), scheme)
        }
        (KernelId::Gauss, Scale::Bench) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::bench_default(), scheme)
        }
        (KernelId::Fft, Scale::Test) => {
            crate::fft::run(cfg, crate::fft::FftParams::test_small(), scheme)
        }
        (KernelId::Fft, Scale::Bench) => {
            crate::fft::run(cfg, crate::fft::FftParams::bench_default(), scheme)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_dispatches_and_verifies_at_test_scale() {
        let cfg = MachineConfig::default().with_nvmm_bytes(16 << 20);
        for kernel in KernelId::ALL {
            let r = run_kernel(kernel, Scale::Test, &cfg, Scheme::lazy_default());
            assert!(r.verified, "{kernel}");
        }
    }

    #[test]
    fn names_match_figures() {
        let names: Vec<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["TMM", "Cholesky", "2D-conv", "Gauss", "FFT"]);
    }
}

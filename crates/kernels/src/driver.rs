//! Uniform dispatch over the five simulated kernels, for the experiment
//! harness and cross-kernel figures (Figures 12 and 13).

use crate::common::KernelRun;
use lp_core::scheme::Scheme;
use lp_core::track::TrackedRange;
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, ThreadPlan};

/// Which simulated kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelId {
    /// Tiled matrix multiplication.
    Tmm,
    /// Cholesky factorization.
    Cholesky,
    /// 2-D convolution.
    Conv2d,
    /// Gaussian elimination.
    Gauss,
    /// Fast Fourier transform.
    Fft,
}

impl KernelId {
    /// All kernels in the paper's figure order.
    pub const ALL: [KernelId; 5] = [
        KernelId::Tmm,
        KernelId::Cholesky,
        KernelId::Conv2d,
        KernelId::Gauss,
        KernelId::Fft,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Tmm => "TMM",
            KernelId::Cholesky => "Cholesky",
            KernelId::Conv2d => "2D-conv",
            KernelId::Gauss => "Gauss",
            KernelId::Fft => "FFT",
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem scale for dispatched runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest meaningful inputs, sized so exhaustive crash-state model
    /// checking (one census snapshot per crash point) stays tractable.
    Micro,
    /// Tiny inputs for unit/integration tests (sub-second per run).
    Test,
    /// Bench-default inputs mirroring the paper's simulation windows
    /// (seconds per run).
    Bench,
    /// Paper-scale inputs (tens of seconds per run).
    Paper,
}

/// A kernel set up but not yet run, with everything an external tool (the
/// `lp-check` sanitizer) needs to drive and audit the run itself: the
/// configured machine, the scheduled plans, the tracked address ranges,
/// and a durable-output verifier.
pub struct PreparedKernel {
    /// The machine with the kernel's data already initialized.
    pub machine: Machine,
    /// One plan per logical core, ready for [`Machine::run`].
    pub plans: Vec<ThreadPlan<'static>>,
    /// Named persistent ranges (protected data + scheme structures).
    pub ranges: Vec<TrackedRange>,
    /// The scheme the plans were built for.
    pub scheme: Scheme,
    /// Checks the durable image against the host golden reference (call
    /// after the run completed and caches were drained). `Send + Sync` so
    /// prepared cases can be rebuilt and driven from worker threads.
    pub verify: Box<dyn Fn(&Machine) -> bool + Send + Sync>,
    /// Runs the scheme's real crash recovery on the machine (call after a
    /// crash, before `verify`); returns the recovery statistics.
    pub recover: Box<dyn Fn(&mut Machine) -> lp_core::recovery::RecoveryStats + Send + Sync>,
    /// Sorted, deduplicated lines a fault campaign may silently bit-flip:
    /// checksum-audited (or unconditionally rebuilt) protected data, so
    /// Lazy recovery provably detects or overwrites the corruption.
    pub flip_lines: Vec<LineAddr>,
    /// Sorted, deduplicated lines a fault campaign may poison: protected
    /// data every scheme's recovery quarantines and rebuilds from durable
    /// sources.
    pub poison_lines: Vec<LineAddr>,
}

impl std::fmt::Debug for PreparedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedKernel")
            .field("scheme", &self.scheme)
            .field("ranges", &self.ranges.len())
            .finish_non_exhaustive()
    }
}

/// Set up `kernel` under `scheme` at `scale` without running it, so the
/// caller can install an observer before driving the machine.
///
/// # Panics
///
/// Panics if kernel setup fails (e.g. the configured NVMM is too small).
pub fn prepare_kernel(
    kernel: KernelId,
    scale: Scale,
    cfg: &MachineConfig,
    scheme: Scheme,
) -> PreparedKernel {
    match kernel {
        KernelId::Tmm => {
            let params = match scale {
                Scale::Micro => crate::tmm::TmmParams::micro(),
                Scale::Test => crate::tmm::TmmParams::test_small(),
                Scale::Bench => crate::tmm::TmmParams::bench_default(),
                Scale::Paper => crate::tmm::TmmParams::paper_default(),
            };
            let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
            let k = crate::tmm::Tmm::setup(&mut machine, params, scheme).expect("tmm setup");
            let (plans, ranges) = (k.plans(), k.tracked_ranges());
            let (flip_lines, poison_lines) = (k.flip_lines(), k.repairable_lines());
            let k2 = k.clone();
            PreparedKernel {
                machine,
                plans,
                ranges,
                scheme,
                verify: Box::new(move |m| k.verify(m)),
                recover: Box::new(move |m| k2.recover(m)),
                flip_lines,
                poison_lines,
            }
        }
        KernelId::Cholesky => {
            let params = match scale {
                Scale::Micro => crate::cholesky::CholeskyParams::micro(),
                Scale::Test => crate::cholesky::CholeskyParams::test_small(),
                Scale::Bench => crate::cholesky::CholeskyParams::bench_default(),
                Scale::Paper => crate::cholesky::CholeskyParams::paper_default(),
            };
            let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
            let k = crate::cholesky::Cholesky::setup(&mut machine, params, scheme)
                .expect("cholesky setup");
            let (plans, ranges) = (k.plans(), k.tracked_ranges());
            let (flip_lines, poison_lines) = (k.flip_lines(), k.repairable_lines());
            let k2 = k.clone();
            PreparedKernel {
                machine,
                plans,
                ranges,
                scheme,
                verify: Box::new(move |m| k.verify(m)),
                recover: Box::new(move |m| k2.recover(m)),
                flip_lines,
                poison_lines,
            }
        }
        KernelId::Conv2d => {
            let params = match scale {
                Scale::Micro => crate::conv2d::Conv2dParams::micro(),
                Scale::Test => crate::conv2d::Conv2dParams::test_small(),
                Scale::Bench => crate::conv2d::Conv2dParams::bench_default(),
                Scale::Paper => crate::conv2d::Conv2dParams::paper_default(),
            };
            let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
            let k =
                crate::conv2d::Conv2d::setup(&mut machine, params, scheme).expect("conv2d setup");
            let (plans, ranges) = (k.plans(), k.tracked_ranges());
            let (flip_lines, poison_lines) = (k.flip_lines(), k.repairable_lines());
            let k2 = k.clone();
            PreparedKernel {
                machine,
                plans,
                ranges,
                scheme,
                verify: Box::new(move |m| k.verify(m)),
                recover: Box::new(move |m| k2.recover(m)),
                flip_lines,
                poison_lines,
            }
        }
        KernelId::Gauss => {
            let params = match scale {
                Scale::Micro => crate::gauss::GaussParams::micro(),
                Scale::Test => crate::gauss::GaussParams::test_small(),
                Scale::Bench => crate::gauss::GaussParams::bench_default(),
                Scale::Paper => crate::gauss::GaussParams::paper_default(),
            };
            let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
            let k = crate::gauss::Gauss::setup(&mut machine, params, scheme).expect("gauss setup");
            let (plans, ranges) = (k.plans(), k.tracked_ranges());
            let (flip_lines, poison_lines) = (k.flip_lines(), k.repairable_lines());
            let k2 = k.clone();
            PreparedKernel {
                machine,
                plans,
                ranges,
                scheme,
                verify: Box::new(move |m| k.verify(m)),
                recover: Box::new(move |m| k2.recover(m)),
                flip_lines,
                poison_lines,
            }
        }
        KernelId::Fft => {
            let params = match scale {
                Scale::Micro => crate::fft::FftParams::micro(),
                Scale::Test => crate::fft::FftParams::test_small(),
                Scale::Bench => crate::fft::FftParams::bench_default(),
                Scale::Paper => crate::fft::FftParams::paper_default(),
            };
            let mut machine = Machine::new(cfg.clone().with_cores(params.threads));
            let k = crate::fft::Fft::setup(&mut machine, params, scheme).expect("fft setup");
            let (plans, ranges) = (k.plans(), k.tracked_ranges());
            let (flip_lines, poison_lines) = (k.flip_lines(), k.repairable_lines());
            let k2 = k.clone();
            PreparedKernel {
                machine,
                plans,
                ranges,
                scheme,
                verify: Box::new(move |m| k.verify(m)),
                recover: Box::new(move |m| k2.recover(m)),
                flip_lines,
                poison_lines,
            }
        }
    }
}

/// Run `kernel` under `scheme` at `scale` on a machine configured by
/// `cfg` (core count is overridden by the kernel's thread parameter).
pub fn run_kernel(
    kernel: KernelId,
    scale: Scale,
    cfg: &MachineConfig,
    scheme: Scheme,
) -> KernelRun {
    match (kernel, scale) {
        (KernelId::Tmm, Scale::Micro) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::micro(), scheme)
        }
        (KernelId::Cholesky, Scale::Micro) => {
            crate::cholesky::run(cfg, crate::cholesky::CholeskyParams::micro(), scheme)
        }
        (KernelId::Conv2d, Scale::Micro) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::micro(), scheme)
        }
        (KernelId::Gauss, Scale::Micro) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::micro(), scheme)
        }
        (KernelId::Fft, Scale::Micro) => {
            crate::fft::run(cfg, crate::fft::FftParams::micro(), scheme)
        }
        (KernelId::Tmm, Scale::Test) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::test_small(), scheme)
        }
        (KernelId::Tmm, Scale::Bench) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::bench_default(), scheme)
        }
        (KernelId::Tmm, Scale::Paper) => {
            crate::tmm::run(cfg, crate::tmm::TmmParams::paper_default(), scheme)
        }
        (KernelId::Cholesky, Scale::Paper) => crate::cholesky::run(
            cfg,
            crate::cholesky::CholeskyParams::paper_default(),
            scheme,
        ),
        (KernelId::Conv2d, Scale::Paper) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::paper_default(), scheme)
        }
        (KernelId::Gauss, Scale::Paper) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::paper_default(), scheme)
        }
        (KernelId::Fft, Scale::Paper) => {
            crate::fft::run(cfg, crate::fft::FftParams::paper_default(), scheme)
        }
        (KernelId::Cholesky, Scale::Test) => {
            crate::cholesky::run(cfg, crate::cholesky::CholeskyParams::test_small(), scheme)
        }
        (KernelId::Cholesky, Scale::Bench) => crate::cholesky::run(
            cfg,
            crate::cholesky::CholeskyParams::bench_default(),
            scheme,
        ),
        (KernelId::Conv2d, Scale::Test) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::test_small(), scheme)
        }
        (KernelId::Conv2d, Scale::Bench) => {
            crate::conv2d::run(cfg, crate::conv2d::Conv2dParams::bench_default(), scheme)
        }
        (KernelId::Gauss, Scale::Test) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::test_small(), scheme)
        }
        (KernelId::Gauss, Scale::Bench) => {
            crate::gauss::run(cfg, crate::gauss::GaussParams::bench_default(), scheme)
        }
        (KernelId::Fft, Scale::Test) => {
            crate::fft::run(cfg, crate::fft::FftParams::test_small(), scheme)
        }
        (KernelId::Fft, Scale::Bench) => {
            crate::fft::run(cfg, crate::fft::FftParams::bench_default(), scheme)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_dispatches_and_verifies_at_test_scale() {
        let cfg = MachineConfig::default().with_nvmm_bytes(16 << 20);
        for kernel in KernelId::ALL {
            let r = run_kernel(kernel, Scale::Test, &cfg, Scheme::lazy_default());
            assert!(r.verified, "{kernel}");
        }
    }

    #[test]
    fn names_match_figures() {
        let names: Vec<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["TMM", "Cholesky", "2D-conv", "Gauss", "FFT"]);
    }
}

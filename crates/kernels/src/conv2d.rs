//! 2-dimensional convolution (`2D-conv` in the paper's Table V): a 3×3
//! stencil over an `n × n` image with a one-pixel halo.
//!
//! Each output row-block is an LP region. Regions are *idempotent* (Section
//! III-E: output depends only on the read-only input), so recovery is the
//! trivial case — mismatching blocks are simply recomputed, in any order.

use crate::common::{
    random_values, round_robin_blocks, EagerOnlySink, KernelRun, PMatrix, RecoverySink, SchemeSink,
    StoreSink, IDX_OPS, MUL_ADD_OPS,
};
use lp_core::checksum::ChecksumKind;
use lp_core::recovery::RecoveryStats;
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome, ThreadPlan};

/// Problem and windowing parameters for one convolution run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Output image dimension (`n × n`); the input is padded to
    /// `(n+2) × (n+2)`. Must be a multiple of `bsize`.
    pub n: usize,
    /// Rows per region.
    pub bsize: usize,
    /// Worker threads.
    pub threads: usize,
    /// Number of row-blocks to simulate (the paper windows 2D-conv to ~4%
    /// of its runtime); capped at `n / bsize`.
    pub block_window: usize,
    /// Input seed.
    pub seed: u64,
}

impl Conv2dParams {
    /// Smallest meaningful parameters, sized for exhaustive crash-state
    /// model checking (one full replay per crash point).
    pub fn micro() -> Self {
        Conv2dParams {
            n: 16,
            bsize: 8,
            threads: 2,
            block_window: 1,
            seed: 7,
        }
    }

    /// Parameters sized for fast unit tests.
    pub fn test_small() -> Self {
        Conv2dParams {
            n: 32,
            bsize: 8,
            threads: 2,
            block_window: 4,
            seed: 7,
        }
    }

    /// Bench-scale parameters (256² image, 8 threads).
    pub fn bench_default() -> Self {
        Conv2dParams {
            n: 256,
            bsize: 16,
            threads: 8,
            block_window: 8,
            seed: 7,
        }
    }

    /// Paper-scale parameters: 1024² image, a ~4%-of-runtime window.
    pub fn paper_default() -> Self {
        Conv2dParams {
            n: 1024,
            bsize: 16,
            threads: 8,
            block_window: 16,
            seed: 7,
        }
    }

    /// Total row-blocks in the image.
    pub fn nblocks(&self) -> usize {
        self.n / self.bsize
    }

    /// Effective window (capped).
    pub fn window(&self) -> usize {
        self.block_window.min(self.nblocks())
    }

    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bsize == 0 || !self.n.is_multiple_of(self.bsize) {
            return Err(format!(
                "n={} must be a multiple of bsize={}",
                self.n, self.bsize
            ));
        }
        if self.threads == 0 || self.block_window == 0 {
            return Err("threads and block_window must be >= 1".into());
        }
        Ok(())
    }
}

/// The 3×3 stencil derived deterministically from a seed.
pub fn stencil(seed: u64) -> [f64; 9] {
    let v = random_values(seed ^ 0xc0ffee, 9);
    let mut w = [0.0; 9];
    w.copy_from_slice(&v);
    w
}

/// A configured convolution workload.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Parameters.
    pub params: Conv2dParams,
    /// The active scheme.
    pub scheme: Scheme,
    /// Padded input image (read-only during the run).
    pub input: PMatrix,
    /// Output image.
    pub output: PMatrix,
    /// Scheme support structures.
    pub handles: SchemeHandles,
    weights: [f64; 9],
}

impl Conv2d {
    /// Allocate and initialize on `machine`.
    ///
    /// # Errors
    ///
    /// Returns allocation or validation failures as strings.
    pub fn setup(
        machine: &mut Machine,
        params: Conv2dParams,
        scheme: Scheme,
    ) -> Result<Self, String> {
        params.validate()?;
        let n = params.n;
        let input = PMatrix::alloc(machine, n + 2, n + 2).map_err(|e| e.to_string())?;
        let output = PMatrix::alloc(machine, n, n).map_err(|e| e.to_string())?;
        input.fill(machine, &random_values(params.seed, (n + 2) * (n + 2)));
        output.fill(machine, &vec![0.0; n * n]);
        let handles = SchemeHandles::alloc(
            machine,
            scheme,
            params.nblocks(),
            params.threads,
            params.bsize * n + 8,
        )
        .map_err(|e| e.to_string())?;
        Ok(Conv2d {
            params,
            scheme,
            input,
            output,
            handles,
            weights: stencil(params.seed),
        })
    }

    /// Round-robin block ownership.
    pub fn ownership(&self) -> Vec<Vec<usize>> {
        round_robin_blocks(self.params.window(), self.params.threads)
    }

    /// One region: convolve rows `[block·bsize, (block+1)·bsize)`.
    fn region_body<S: StoreSink>(&self, ctx: &mut CoreCtx<'_>, block: usize, sink: &mut S) {
        let (n, bsize) = (self.params.n, self.params.bsize);
        let w = self.weights;
        for i in block * bsize..(block + 1) * bsize {
            for j in 0..n {
                let mut sum = 0.0;
                for di in 0..3 {
                    for dj in 0..3 {
                        let v = self.input.load(ctx, i + di, j + dj);
                        sum += v * w[di * 3 + dj];
                        ctx.compute(MUL_ADD_OPS + IDX_OPS);
                    }
                }
                sink.store(ctx, self.output.array(), self.output.idx(i, j), sum);
                ctx.compute(IDX_OPS);
            }
        }
    }

    /// Per-thread schedules: one region per owned block.
    /// Persistent address ranges for the `lp-check` sanitizer.
    pub fn tracked_ranges(&self) -> Vec<lp_core::track::TrackedRange> {
        use lp_core::track::{RangeRole, TrackedRange};
        let mut out = vec![
            TrackedRange::of("conv2d.out", self.output.array(), RangeRole::Protected),
            TrackedRange::of("conv2d.in", self.input.array(), RangeRole::Scratch),
        ];
        out.extend(self.handles.ranges());
        out
    }

    /// Build the scheduled per-core work plans for one run.
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        let mut plans: Vec<ThreadPlan<'static>> = (0..self.params.threads)
            .map(|_| ThreadPlan::new())
            .collect();
        for (t, owned) in self.ownership().into_iter().enumerate() {
            let tp = self.handles.thread(t);
            for block in owned {
                let this = self.clone();
                plans[t].region(move |ctx| {
                    let mut rs = tp.begin(ctx, block);
                    let mut sink = SchemeSink { tp, rs: &mut rs };
                    this.region_body(ctx, block, &mut sink);
                    tp.commit(ctx, rs);
                });
            }
        }
        plans
    }

    /// Host golden for the simulated window.
    pub fn golden(params: &Conv2dParams) -> Vec<f64> {
        let n = params.n;
        let input = random_values(params.seed, (n + 2) * (n + 2));
        let w = stencil(params.seed);
        let mut out = vec![0.0f64; n * n];
        for i in 0..params.window() * params.bsize {
            for j in 0..n {
                let mut sum = 0.0;
                for di in 0..3 {
                    for dj in 0..3 {
                        sum += input[(i + di) * (n + 2) + (j + dj)] * w[di * 3 + dj];
                    }
                }
                out[i * n + j] = sum;
            }
        }
        out
    }

    /// Whether the durable output matches the golden reference.
    pub fn verify(&self, machine: &Machine) -> bool {
        crate::common::values_match(&self.output.peek_all(machine), &Self::golden(&self.params))
    }

    /// Lines of the protected output that recovery provably rebuilds —
    /// the fault campaign's media-fault target set. Only rows inside the
    /// simulated window are ever recomputed, so only their data-span
    /// lines are repairable.
    pub fn repairable_lines(&self) -> Vec<LineAddr> {
        let n = self.params.n;
        let rows = self.params.window() * self.params.bsize;
        let mut lines: Vec<LineAddr> = (0..rows)
            .flat_map(|i| self.output.array().lines_of_range(self.output.idx(i, 0), n))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines a silent bit flip may target under Lazy schemes: same set as
    /// [`Self::repairable_lines`]. Lazy recovery audits every window
    /// block, so a flip in any block either fails its checksum or lands
    /// in a block that is recomputed anyway.
    pub fn flip_lines(&self) -> Vec<LineAddr> {
        self.repairable_lines()
    }

    /// Whether any line of `block`'s output rows is poisoned.
    fn block_poisoned(&self, poisoned: &[LineAddr], block: usize) -> bool {
        let (n, bsize) = (self.params.n, self.params.bsize);
        (block * bsize..(block + 1) * bsize).any(|i| {
            lp_core::recovery::range_poisoned(
                poisoned,
                self.output.array(),
                self.output.idx(i, 0),
                n,
            )
        })
    }

    /// Post-crash recovery (idempotent regions: recompute what mismatches).
    pub fn recover(&self, machine: &mut Machine) -> RecoveryStats {
        match self.scheme {
            Scheme::Base => RecoveryStats::default(),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) => {
                self.recover_lazy(machine, kind, false)
            }
            Scheme::LazyParity(kind) => self.recover_lazy(machine, kind, true),
            Scheme::Eager | Scheme::Wal => self.recover_marker_based(machine),
        }
    }

    /// The element indices of `block`'s region in checksum fold order.
    fn region_indices(&self, block: usize) -> Vec<usize> {
        let (n, bsize) = (self.params.n, self.params.bsize);
        (block * bsize..(block + 1) * bsize)
            .flat_map(|i| (0..n).map(move |j| self.output.idx(i, j)))
            .collect()
    }

    fn recover_lazy(
        &self,
        machine: &mut Machine,
        kind: ChecksumKind,
        repair: bool,
    ) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let (n, bsize) = (self.params.n, self.params.bsize);
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for block in 0..self.params.window() {
            stats.regions_checked += 1;
            let mut rung1_failed = false;
            // A poisoned block is never trusted — poison reads as a fixed
            // pattern that a weak code can collide with. Under `LazyParity`
            // rung 1 reconstructs a single lost line from the block's
            // parity and re-verifies before anything is written back;
            // otherwise (or when reconstruction fails) the block is
            // quarantined and recomputed unconditionally.
            if self.block_poisoned(&poisoned, block) {
                let repaired = repair
                    && match lp_core::parity::try_poison_repair(
                        &mut ctx,
                        &self.handles.table,
                        &self.handles.parity,
                        block,
                        kind,
                        self.output.array(),
                        &self.region_indices(block),
                        &poisoned,
                    ) {
                        lp_core::parity::RepairVerdict::Repaired => {
                            stats.repaired_lines += 1;
                            true
                        }
                        lp_core::parity::RepairVerdict::Failed => {
                            stats.repair_failures += 1;
                            false
                        }
                        lp_core::parity::RepairVerdict::Clean => false,
                    };
                if !repaired {
                    if repair {
                        stats.escalations += 1;
                    }
                    stats.regions_quarantined += 1;
                    let mut sink = if repair {
                        RecoverySink::with_parity(kind, self.handles.parity)
                    } else {
                        RecoverySink::new(kind)
                    };
                    self.region_body(&mut ctx, block, &mut sink);
                    sink.commit(&mut ctx, &self.handles.table, block);
                    stats.recomputed_regions += 1;
                    continue;
                }
            }
            {
                let out = self.output;
                let indices = (block * bsize..(block + 1) * bsize)
                    .flat_map(move |i| (0..n).map(move |j| out.idx(i, j)));
                let consistent = lp_core::recovery::region_consistent(
                    &mut ctx,
                    &self.handles.table,
                    block,
                    kind,
                    self.output.array(),
                    indices,
                );
                if consistent {
                    continue;
                }
                stats.regions_inconsistent += 1;
                if repair {
                    // Rung 1 for a silent mismatch: one flipped line is
                    // reconstructible from the block's parity.
                    if lp_core::parity::try_mismatch_repair(
                        &mut ctx,
                        &self.handles.table,
                        &self.handles.parity,
                        block,
                        kind,
                        self.output.array(),
                        &self.region_indices(block),
                    ) {
                        stats.repaired_lines += 1;
                        continue;
                    }
                    stats.repair_failures += 1;
                    rung1_failed = true;
                }
            }
            if rung1_failed {
                stats.escalations += 1;
            }
            let mut sink = if repair {
                RecoverySink::with_parity(kind, self.handles.parity)
            } else {
                RecoverySink::new(kind)
            };
            self.region_body(&mut ctx, block, &mut sink);
            sink.commit(&mut ctx, &self.handles.table, block);
            stats.recomputed_regions += 1;
        }
        stats.cycles = ctx.now() - start;
        stats
    }

    /// EP/WAL recovery: undo any open transaction, then re-run every block
    /// past each thread's marker (idempotent, so partial work is harmless).
    fn recover_marker_based(&self, machine: &mut Machine) -> RecoveryStats {
        let mut stats = RecoveryStats::default();
        let poisoned = machine.mem().poisoned_lines();
        let owners = self.ownership();
        let mut ctx = machine.ctx(0);
        let start = ctx.now();
        for (t, owned) in owners.iter().enumerate() {
            let tp = self.handles.thread(t);
            tp.wal_recover(&mut ctx);
            // Read the marker only after the rollback: a WAL commit logs
            // the marker's undo pair, so undoing an interrupted
            // transaction rewinds the marker with it (no-op under EP).
            let marker = tp.marker(&mut ctx);
            let completed = if marker == 0 {
                0
            } else {
                owned
                    .iter()
                    .position(|&b| b == (marker - 1) as usize)
                    .map_or(0, |p| p + 1)
            };
            stats.regions_checked += owned.len() as u64;
            // Committed blocks hit by a media fault are recomputed too:
            // the marker vouches for progress, not for the medium. Blocks
            // are idempotent, so a plain eager re-run (no marker motion)
            // is safe to interrupt and repeat at any crash point.
            for &block in &owned[..completed] {
                if self.block_poisoned(&poisoned, block) {
                    stats.regions_quarantined += 1;
                    let mut sink = EagerOnlySink::default();
                    self.region_body(&mut ctx, block, &mut sink);
                    sink.commit(&mut ctx);
                    stats.recomputed_regions += 1;
                }
            }
            for &block in &owned[completed..] {
                let mut rs = tp.begin(&mut ctx, block);
                let mut sink = SchemeSink { tp, rs: &mut rs };
                self.region_body(&mut ctx, block, &mut sink);
                tp.commit(&mut ctx, rs);
                stats.recomputed_regions += 1;
            }
        }
        stats.cycles = ctx.now() - start;
        stats
    }
}

/// Convenience driver mirroring [`crate::tmm::run`].
pub fn run(cfg: &MachineConfig, params: Conv2dParams, scheme: Scheme) -> KernelRun {
    let cfg = cfg.clone().with_cores(params.threads);
    let mut machine = Machine::new(cfg);
    let conv = Conv2d::setup(&mut machine, params, scheme).expect("conv2d setup");
    let outcome = machine.run(conv.plans());
    let stats = machine.stats();
    machine.drain_caches();
    let verified = outcome == Outcome::Completed && conv.verify(&machine);
    KernelRun {
        stats,
        outcome,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::prelude::CrashTrigger;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(8 << 20)
    }

    #[test]
    fn all_schemes_agree_with_golden() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let r = run(&cfg(), Conv2dParams::test_small(), scheme);
            assert_eq!(r.outcome, Outcome::Completed, "{scheme}");
            assert!(r.verified, "{scheme}");
        }
    }

    /// The headline rung-1 guarantee: on a fully committed image a single
    /// poisoned line is reconstructed from parity alone — no region is
    /// recomputed, nothing is quarantined, nothing escalates.
    #[test]
    fn parity_repairs_single_poison_without_recompute() {
        let params = Conv2dParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let k = Conv2d::setup(&mut machine, params, Scheme::lazy_parity_default()).unwrap();
        assert_eq!(machine.run(k.plans()), Outcome::Completed);
        machine.drain_caches();
        machine.mem_mut().poison_line(k.repairable_lines()[0]);
        let rstats = k.recover(&mut machine);
        machine.drain_caches();
        assert!(k.verify(&machine), "repaired image must verify");
        assert_eq!(rstats.repaired_lines, 1);
        assert_eq!(rstats.recomputed_regions, 0);
        assert_eq!(rstats.regions_quarantined, 0);
        assert_eq!(rstats.repair_failures, 0);
        assert_eq!(rstats.escalations, 0);
    }

    #[test]
    fn lp_overhead_is_small() {
        let base = run(&cfg(), Conv2dParams::test_small(), Scheme::Base);
        let lp = run(&cfg(), Conv2dParams::test_small(), Scheme::lazy_default());
        let ep = run(&cfg(), Conv2dParams::test_small(), Scheme::Eager);
        assert!(lp.cycles() as f64 / (base.cycles() as f64) < 1.25);
        assert!(ep.cycles() > lp.cycles());
    }

    #[test]
    fn lazy_recovery_roundtrip() {
        for ops in [100u64, 3_000, 10_000] {
            let params = Conv2dParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let conv = Conv2d::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
            assert_eq!(machine.run(conv.plans()), Outcome::Crashed);
            machine.clear_crash_trigger();
            let rstats = conv.recover(&mut machine);
            machine.drain_caches();
            assert!(conv.verify(&machine), "crash at {ops} ops");
            assert!(rstats.regions_checked > 0);
        }
    }

    #[test]
    fn eager_and_wal_recovery_roundtrip() {
        for scheme in [Scheme::Eager, Scheme::Wal] {
            let params = Conv2dParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let conv = Conv2d::setup(&mut machine, params, scheme).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(4_000));
            assert_eq!(machine.run(conv.plans()), Outcome::Crashed, "{scheme}");
            machine.clear_crash_trigger();
            conv.recover(&mut machine);
            machine.drain_caches();
            assert!(conv.verify(&machine), "{scheme}");
        }
    }

    #[test]
    fn stencil_is_deterministic() {
        assert_eq!(stencil(7), stencil(7));
        assert_ne!(stencil(7), stencil(8));
    }

    #[test]
    fn windowing_limits_computed_rows() {
        let mut params = Conv2dParams::test_small();
        params.block_window = 1;
        let r = run(&cfg(), params, Scheme::Base);
        assert!(r.verified);
        // Golden for a 1-block window has zeros past the first block.
        let g = Conv2d::golden(&params);
        assert!(g[params.bsize * params.n..].iter().all(|&v| v == 0.0));
        assert!(g[..params.bsize * params.n].iter().any(|&v| v != 0.0));
    }
}

//! Cholesky factorization (`Cholesky` in the paper's Table V).
//!
//! Left-looking column factorization of a symmetric positive-definite
//! input `a` into a separate lower-triangular output `l` (out-of-place so
//! recovery can always replay from the preserved input):
//!
//! ```text
//! l[j][j] = sqrt(a[j][j] − Σ_{k<j} l[j][k]²)
//! l[i][j] = (a[i][j] − Σ_{k<j} l[i][k]·l[j][k]) / l[j][j]     (i > j)
//! ```
//!
//! Regions: `(column j, row block)`. Within a column, row blocks are
//! independent; every region recomputes the diagonal locally from row `j`
//! of `l` (redundant arithmetic instead of an extra synchronization), and
//! only the block owning row `j` stores it. A barrier separates columns,
//! since column `j+1` reads column `j`.
//!
//! Recovery mirrors Gauss: pivot rows `0..col_window` live in block 0
//! (enforced `col_window ≤ bsize`), so block 0 recovers first and other
//! blocks replay their columns newest-consistent-first from the input.

use crate::common::{
    random_spd, round_robin_blocks, KernelRun, PMatrix, RecoverySink, SchemeSink, StoreSink,
    IDX_OPS, MUL_ADD_OPS,
};
use lp_core::checksum::ChecksumKind;
use lp_core::recovery::{recompute_checksum, RecoveryStats};
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::addr::LineAddr;
use lp_sim::config::MachineConfig;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome, ThreadPlan};

/// Modelled ALU ops for a square root.
const SQRT_OPS: u64 = 12;

/// Sentinel in a block's column-0 table slot marking a quarantine
/// rebuild in flight (same journal trick as tmm's strip rebuild). The
/// column-0 replay commit overwrites it with the real checksum.
const REBUILD_ARMED: u64 = 0x5EBD_5EBD_5EBD_5EBD;

/// Problem and windowing parameters for one factorization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyParams {
    /// Matrix dimension; must be a multiple of `bsize`.
    pub n: usize,
    /// Rows per block.
    pub bsize: usize,
    /// Worker threads.
    pub threads: usize,
    /// Columns to factorize (the paper runs Cholesky to completion; the
    /// default bench window covers the first `bsize` columns); must
    /// satisfy `col_window ≤ bsize`.
    pub col_window: usize,
    /// Input seed.
    pub seed: u64,
}

impl CholeskyParams {
    /// Smallest meaningful parameters, sized for exhaustive crash-state
    /// model checking (one full replay per crash point).
    pub fn micro() -> Self {
        CholeskyParams {
            n: 16,
            bsize: 8,
            threads: 2,
            col_window: 2,
            seed: 23,
        }
    }

    /// Parameters sized for fast unit tests.
    pub fn test_small() -> Self {
        CholeskyParams {
            n: 32,
            bsize: 8,
            threads: 2,
            col_window: 6,
            seed: 23,
        }
    }

    /// Bench-scale parameters.
    pub fn bench_default() -> Self {
        CholeskyParams {
            n: 256,
            bsize: 16,
            threads: 8,
            col_window: 16,
            seed: 23,
        }
    }

    /// Paper-scale parameters: 1024² input (the paper runs Cholesky to
    /// completion; we window to the first tile-width of columns, where
    /// the left-looking update cost is already dominated by the same
    /// dot-product inner loop).
    pub fn paper_default() -> Self {
        CholeskyParams {
            n: 1024,
            bsize: 128,
            threads: 8,
            col_window: 128,
            seed: 23,
        }
    }

    /// Number of row blocks.
    pub fn nblocks(&self) -> usize {
        self.n / self.bsize
    }

    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bsize == 0 || !self.n.is_multiple_of(self.bsize) {
            return Err(format!(
                "n={} must be a multiple of bsize={}",
                self.n, self.bsize
            ));
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.col_window == 0 || self.col_window > self.bsize {
            return Err(format!(
                "col_window={} must be in 1..=bsize={}",
                self.col_window, self.bsize
            ));
        }
        Ok(())
    }
}

/// A configured factorization workload.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Parameters.
    pub params: CholeskyParams,
    /// The active scheme.
    pub scheme: Scheme,
    /// SPD input (read-only).
    pub a: PMatrix,
    /// Lower-triangular output.
    pub l: PMatrix,
    /// Scheme support structures.
    pub handles: SchemeHandles,
}

impl Cholesky {
    /// Allocate and initialize on `machine`.
    ///
    /// # Errors
    ///
    /// Returns allocation or validation failures as strings.
    pub fn setup(
        machine: &mut Machine,
        params: CholeskyParams,
        scheme: Scheme,
    ) -> Result<Self, String> {
        params.validate()?;
        let n = params.n;
        let a = PMatrix::alloc(machine, n, n).map_err(|e| e.to_string())?;
        let l = PMatrix::alloc(machine, n, n).map_err(|e| e.to_string())?;
        a.fill(machine, &random_spd(params.seed, n));
        l.fill(machine, &vec![0.0; n * n]);
        let handles = SchemeHandles::alloc(
            machine,
            scheme,
            params.col_window * params.nblocks(),
            params.threads,
            params.bsize + 8,
        )
        .map_err(|e| e.to_string())?;
        Ok(Cholesky {
            params,
            scheme,
            a,
            l,
            handles,
        })
    }

    /// Checksum-table key of region `(j, block)`.
    pub fn key(&self, j: usize, block: usize) -> usize {
        j * self.params.nblocks() + block
    }

    /// Rows of `block` that column `j` writes: the diagonal row `j` if the
    /// block owns it, plus the block's rows strictly below `j`.
    pub fn region_rows(params: &CholeskyParams, j: usize, block: usize) -> Vec<usize> {
        let lo = block * params.bsize;
        let hi = (block + 1) * params.bsize;
        (lo..hi).filter(|&r| r >= j).collect()
    }

    /// Round-robin block ownership.
    pub fn ownership(&self) -> Vec<Vec<usize>> {
        round_robin_blocks(self.params.nblocks(), self.params.threads)
    }

    /// Compute the diagonal value `l[j][j]` (loads row `j` of `l`).
    fn diag_value(&self, ctx: &mut CoreCtx<'_>, j: usize) -> f64 {
        let mut s = self.a.load(ctx, j, j);
        if j > 0 {
            ctx.load_fold(
                self.l.array(),
                self.l.idx(j, 0),
                j,
                MUL_ADD_OPS + IDX_OPS,
                |v: f64| s -= v * v,
            );
        }
        ctx.compute(SQRT_OPS);
        s.sqrt()
    }

    /// One region: column `j`'s entries for this block's rows.
    fn region_body<S: StoreSink>(
        &self,
        ctx: &mut CoreCtx<'_>,
        j: usize,
        block: usize,
        sink: &mut S,
    ) {
        let d = self.diag_value(ctx, j);
        for r in Self::region_rows(&self.params, j, block) {
            if r == j {
                sink.store(ctx, self.l.array(), self.l.idx(j, j), d);
                continue;
            }
            let mut s = self.a.load(ctx, r, j);
            if j > 0 {
                // Rows `r` and `j` of `l` are both contiguous in `k`;
                // `sign = -1.0` makes the batched accumulator bit-identical
                // to the open-coded `s -= lik * ljk` loop.
                s = ctx.fma_run(
                    self.l.array(),
                    self.l.idx(r, 0),
                    self.l.array(),
                    self.l.idx(j, 0),
                    1,
                    j,
                    MUL_ADD_OPS + IDX_OPS,
                    -1.0,
                    s,
                );
            }
            ctx.compute(MUL_ADD_OPS);
            sink.store(ctx, self.l.array(), self.l.idx(r, j), s / d);
        }
    }

    /// Per-thread schedules: per column, each thread's non-empty block
    /// regions, then a barrier.
    /// Persistent address ranges for the `lp-check` sanitizer.
    pub fn tracked_ranges(&self) -> Vec<lp_core::track::TrackedRange> {
        use lp_core::track::{RangeRole, TrackedRange};
        let mut out = vec![
            TrackedRange::of("cholesky.l", self.l.array(), RangeRole::Protected),
            TrackedRange::of("cholesky.a", self.a.array(), RangeRole::Scratch),
        ];
        out.extend(self.handles.ranges());
        out
    }

    /// Build the scheduled per-core work plans for one run.
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        let owners = self.ownership();
        let mut plans: Vec<ThreadPlan<'static>> = (0..self.params.threads)
            .map(|_| ThreadPlan::new())
            .collect();
        for j in 0..self.params.col_window {
            for (t, owned) in owners.iter().enumerate() {
                let tp = self.handles.thread(t);
                for &block in owned {
                    if Self::region_rows(&self.params, j, block).is_empty() {
                        continue;
                    }
                    let this = self.clone();
                    plans[t].region(move |ctx| {
                        let key = this.key(j, block);
                        let mut rs = tp.begin(ctx, key);
                        let mut sink = SchemeSink { tp, rs: &mut rs };
                        this.region_body(ctx, j, block, &mut sink);
                        tp.commit(ctx, rs);
                    });
                }
            }
            for plan in &mut plans {
                plan.barrier();
            }
        }
        plans
    }

    /// Host golden for the simulated window.
    pub fn golden(params: &CholeskyParams) -> Vec<f64> {
        let n = params.n;
        let a = random_spd(params.seed, n);
        let mut l = vec![0.0f64; n * n];
        for j in 0..params.col_window {
            let mut s = a[j * n + j];
            for k in 0..j {
                s -= l[j * n + k] * l[j * n + k];
            }
            let d = s.sqrt();
            l[j * n + j] = d;
            for r in j + 1..n {
                let mut s = a[r * n + j];
                for k in 0..j {
                    s -= l[r * n + k] * l[j * n + k];
                }
                l[r * n + j] = s / d;
            }
        }
        l
    }

    /// Whether the durable output matches the golden reference.
    pub fn verify(&self, machine: &Machine) -> bool {
        crate::common::values_match(&self.l.peek_all(machine), &Self::golden(&self.params))
    }

    /// Fold region `(j, block)`'s checksum from current data in store
    /// order (diagonal first when owned, then descending rows in order).
    fn fold_region(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        j: usize,
        block: usize,
    ) -> u64 {
        let mut values = Vec::new();
        for r in Self::region_rows(&self.params, j, block) {
            values.push(self.l.load(ctx, r, j));
            ctx.compute(kind.cost_ops());
        }
        recompute_checksum(kind, |ck| {
            for v in values {
                ck.update(v.to_bits());
            }
        })
    }

    /// Lines of `l` that recovery provably rebuilds — the fault
    /// campaign's poison target set. Quarantine zeroes whole block rows
    /// across all columns, so every cell of a data-span line is restored:
    /// written cells by column replay, the rest to their golden zeros.
    pub fn repairable_lines(&self) -> Vec<LineAddr> {
        let n = self.params.n;
        let mut lines: Vec<LineAddr> = (0..n)
            .flat_map(|r| self.l.array().lines_of_range(self.l.idx(r, 0), n))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Lines of `l` where a *silent* bit flip is provably detected — the
    /// fault campaign's flip target set. Columns are disjoint, so every
    /// committed column checksum stays valid and the full audit catches a
    /// flip in any *written* cell; cells past the window or above the
    /// diagonal are never covered by a checksum, so only lines fully
    /// inside a row's written span `[0, min(window, r+1))` qualify. (At
    /// windows narrower than a line this set is empty.)
    pub fn flip_lines(&self) -> Vec<LineAddr> {
        let window = self.params.col_window;
        let elems_per_line = lp_sim::addr::LINE_BYTES / 8;
        let mut lines = Vec::new();
        for r in 0..self.params.n {
            let span = window.min(r + 1);
            let full = (span / elems_per_line) * elems_per_line;
            if full > 0 {
                lines.extend(self.l.array().lines_of_range(self.l.idx(r, 0), full));
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Whether any line of `block`'s rows is poisoned.
    fn block_poisoned(&self, poisoned: &[LineAddr], block: usize) -> bool {
        let (n, bsize) = (self.params.n, self.params.bsize);
        (block * bsize..(block + 1) * bsize).any(|r| {
            lp_core::recovery::range_poisoned(poisoned, self.l.array(), self.l.idx(r, 0), n)
        })
    }

    /// Whether `block`'s durable rebuild journal is armed (a prior
    /// quarantine rebuild crashed mid-way). Same column-0 table-slot
    /// trick as tmm's strip journal: a partial [`Self::zero_block_full`]
    /// can scrub a poisoned line's flag through an eviction while cells
    /// outside the replayed window still hold pattern residue, so the
    /// poison itself cannot be trusted to survive as the re-entry signal.
    fn block_rebuild_armed(&self, ctx: &mut CoreCtx<'_>, block: usize) -> bool {
        self.handles.table.load(ctx, self.key(0, block)) == Some(REBUILD_ARMED)
    }

    /// Durably arm `block`'s rebuild journal. Must land before the first
    /// store to any poisoned data line.
    fn arm_block_rebuild(&self, ctx: &mut CoreCtx<'_>, block: usize) {
        self.handles
            .table
            .store(ctx, self.key(0, block), REBUILD_ARMED);
        self.handles.table.persist(ctx, self.key(0, block));
    }

    /// Zero a block's rows across *all* columns eagerly. Used for
    /// quarantined blocks: a poisoned line may span cells no column
    /// replay rewrites (past the window, above the diagonal), and those
    /// must return to their golden zeros. Whole lines are rewritten, so
    /// the poison is scrubbed exactly when its line becomes fully zero —
    /// a crash mid-zeroing re-enters quarantine via the surviving poison.
    fn zero_block_full(&self, ctx: &mut CoreCtx<'_>, block: usize) {
        let (n, bsize) = (self.params.n, self.params.bsize);
        for r in block * bsize..(block + 1) * bsize {
            for j in 0..n {
                self.l.store(ctx, r, j, 0.0);
            }
        }
        self.l.flush_rows(ctx, block * bsize, bsize);
        ctx.sfence();
    }

    /// Zero a block's first `col_window` columns eagerly (its pre-run
    /// state) so replay can start from scratch.
    fn zero_block(&self, ctx: &mut CoreCtx<'_>, block: usize) {
        let (bsize, window) = (self.params.bsize, self.params.col_window);
        for r in block * bsize..(block + 1) * bsize {
            for j in 0..window.min(r + 1) {
                self.l.store(ctx, r, j, 0.0);
            }
            ctx.flush_range(self.l.array(), self.l.idx(r, 0), window.min(r + 1));
        }
        ctx.sfence();
    }

    /// The element indices of region `(j, block)` in checksum fold order.
    fn region_indices(&self, j: usize, block: usize) -> Vec<usize> {
        Self::region_rows(&self.params, j, block)
            .into_iter()
            .map(|r| self.l.idx(r, j))
            .collect()
    }

    /// Rung 1 for a poisoned block under `LazyParity`. Structurally
    /// hopeless here: a cache line of `l` spans eight adjacent columns,
    /// i.e. eight disjoint single-column regions, so no region's parity
    /// line owns all eight words of the poisoned line and reconstruction
    /// refuses. The attempt is still made — and its failure recorded — so
    /// the ladder's accounting reflects this kernel's geometry honestly
    /// rather than silently skipping the rung.
    fn block_poison_repair(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        block: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
    ) -> bool {
        for j in 0..self.params.col_window {
            if Self::region_rows(&self.params, j, block).is_empty() {
                continue;
            }
            match lp_core::parity::try_poison_repair(
                ctx,
                &self.handles.table,
                &self.handles.parity,
                self.key(j, block),
                kind,
                self.l.array(),
                &self.region_indices(j, block),
                poisoned,
            ) {
                lp_core::parity::RepairVerdict::Repaired => {
                    stats.repaired_lines += 1;
                    return true;
                }
                lp_core::parity::RepairVerdict::Failed => {
                    stats.repair_failures += 1;
                    break;
                }
                // This column's region misses the poisoned line (columns
                // are disjoint); a later column may still cover it.
                lp_core::parity::RepairVerdict::Clean => continue,
            }
        }
        stats.escalations += 1;
        false
    }

    /// Recover one block: audit *every* column, then replay the
    /// inconsistent ones in ascending order (later columns read earlier
    /// ones). Columns are disjoint, so every committed checksum stays
    /// valid for current data — a newest-first stop would miss a silent
    /// media flip in an older column. With `repair` (`LazyParity`) the
    /// rung-1 parity attempt runs first; its structural failure (see
    /// [`Self::block_poison_repair`]) escalates into the same quarantine.
    fn recover_block(
        &self,
        ctx: &mut CoreCtx<'_>,
        kind: ChecksumKind,
        block: usize,
        poisoned: &[LineAddr],
        stats: &mut RecoveryStats,
        repair: bool,
    ) {
        let window = self.params.col_window;
        let mut bad: Vec<usize> = Vec::new();
        if (self.block_poisoned(poisoned, block)
            && !(repair && self.block_poison_repair(ctx, kind, block, poisoned, stats)))
            || self.block_rebuild_armed(ctx, block)
        {
            // Media fault inside the block: poison reads as a fixed
            // pattern a weak code can collide with, so no checksum verdict
            // is trusted — quarantine, zero every cell, replay everything.
            // The journal is armed first so a nested crash mid-rebuild
            // re-enters here even after the poison flag was scrubbed; the
            // column-0 replay commit below restores the slot's checksum.
            stats.regions_quarantined += 1;
            self.arm_block_rebuild(ctx, block);
            self.zero_block_full(ctx, block);
            bad.extend(
                (0..window).filter(|&j| !Self::region_rows(&self.params, j, block).is_empty()),
            );
        } else {
            let mut rung1_failed = false;
            for j in 0..window {
                if Self::region_rows(&self.params, j, block).is_empty() {
                    continue;
                }
                stats.regions_checked += 1;
                let folded = self.fold_region(ctx, kind, j, block);
                if !self.handles.table.matches(ctx, self.key(j, block), folded) {
                    stats.regions_inconsistent += 1;
                    if repair {
                        // Rung 1 for a silent mismatch. Same geometry
                        // verdict as the poison path: no single-line
                        // substitution is fully owned by a one-column
                        // region, so this fails and the column escalates
                        // to recompute.
                        if lp_core::parity::try_mismatch_repair(
                            ctx,
                            &self.handles.table,
                            &self.handles.parity,
                            self.key(j, block),
                            kind,
                            self.l.array(),
                            &self.region_indices(j, block),
                        ) {
                            stats.repaired_lines += 1;
                            continue;
                        }
                        stats.repair_failures += 1;
                        rung1_failed = true;
                    }
                    bad.push(j);
                }
            }
            if rung1_failed {
                stats.escalations += 1;
            }
            if bad.len() == window {
                // Nothing committed: restore the pre-run zeros first so
                // replay starts from the block's initial durable state.
                self.zero_block(ctx, block);
            }
        }
        for &j in &bad {
            let mut sink = if repair {
                RecoverySink::with_parity(kind, self.handles.parity)
            } else {
                RecoverySink::new(kind)
            };
            self.region_body(ctx, j, block, &mut sink);
            sink.commit(ctx, &self.handles.table, self.key(j, block));
            stats.recomputed_regions += 1;
        }
    }

    /// Post-crash recovery, dispatched by scheme.
    pub fn recover(&self, machine: &mut Machine) -> RecoveryStats {
        match self.scheme {
            Scheme::Base => RecoveryStats::default(),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) | Scheme::LazyParity(kind) => {
                let repair = matches!(self.scheme, Scheme::LazyParity(_));
                let mut stats = RecoveryStats::default();
                let poisoned = machine.mem().poisoned_lines();
                let mut ctx = machine.ctx(0);
                let start = ctx.now();
                for block in 0..self.params.nblocks() {
                    self.recover_block(&mut ctx, kind, block, &poisoned, &mut stats, repair);
                }
                stats.cycles = ctx.now() - start;
                stats
            }
            Scheme::Eager | Scheme::Wal => {
                // Conservative marker-free recovery: zero everything and
                // replay column-by-column from the preserved input, undoing
                // any open WAL transaction first.
                let mut stats = RecoveryStats::default();
                let poisoned = machine.mem().poisoned_lines();
                let mut ctx = machine.ctx(0);
                let start = ctx.now();
                // Arm the rebuild journal for every poisoned block before
                // the WAL undo (or the zeroing below) can partially
                // overwrite a poisoned line: an eviction of such a line
                // scrubs the poison flag while leaving pattern residue in
                // cells no column replay rewrites, so a nested crash must
                // find the durable marker instead of the vanished poison.
                for block in 0..self.params.nblocks() {
                    if self.block_poisoned(&poisoned, block) {
                        self.arm_block_rebuild(&mut ctx, block);
                    }
                }
                for t in 0..self.params.threads {
                    let tp = self.handles.thread(t);
                    if tp.wal_recover(&mut ctx) > 0 {
                        stats.regions_inconsistent += 1;
                    }
                }
                for block in 0..self.params.nblocks() {
                    // Armed blocks need all cells restored (a poisoned
                    // line can span cells no column replay rewrites). The
                    // column-0 replay commit clears the marker.
                    if self.block_rebuild_armed(&mut ctx, block) {
                        stats.regions_quarantined += 1;
                        self.zero_block_full(&mut ctx, block);
                    } else {
                        self.zero_block(&mut ctx, block);
                    }
                }
                for j in 0..self.params.col_window {
                    for block in 0..self.params.nblocks() {
                        if Self::region_rows(&self.params, j, block).is_empty() {
                            continue;
                        }
                        stats.regions_checked += 1;
                        let mut sink = crate::common::RecoverySink::new(ChecksumKind::Modular);
                        self.region_body(&mut ctx, j, block, &mut sink);
                        // Reuse the recovery sink purely for its eager
                        // commit; the checksum store is harmless here.
                        sink.commit(&mut ctx, &self.handles.table, self.key(j, block));
                        stats.recomputed_regions += 1;
                    }
                }
                stats.cycles = ctx.now() - start;
                stats
            }
        }
    }
}

/// Convenience driver mirroring [`crate::tmm::run`].
pub fn run(cfg: &MachineConfig, params: CholeskyParams, scheme: Scheme) -> KernelRun {
    let cfg = cfg.clone().with_cores(params.threads);
    let mut machine = Machine::new(cfg);
    let chol = Cholesky::setup(&mut machine, params, scheme).expect("cholesky setup");
    let outcome = machine.run(chol.plans());
    let stats = machine.stats();
    machine.drain_caches();
    let verified = outcome == Outcome::Completed && chol.verify(&machine);
    KernelRun {
        stats,
        outcome,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::prelude::CrashTrigger;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_nvmm_bytes(8 << 20)
    }

    #[test]
    fn golden_satisfies_l_lt_equals_a() {
        let params = CholeskyParams {
            n: 16,
            bsize: 16,
            threads: 1,
            col_window: 16,
            seed: 3,
        };
        let l = Cholesky::golden(&params);
        let a = random_spd(params.seed, params.n);
        let n = params.n;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += l[i * n + k] * l[j * n + k];
                }
                assert!((s - a[i * n + j]).abs() < 1e-6, "(L·Lᵀ)[{i}][{j}]");
            }
        }
    }

    #[test]
    fn all_schemes_agree_with_golden() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let r = run(&cfg(), CholeskyParams::test_small(), scheme);
            assert_eq!(r.outcome, Outcome::Completed, "{scheme}");
            assert!(r.verified, "{scheme}");
        }
    }

    /// Rung 1 is structurally impossible here — every line of `l`
    /// interleaves eight disjoint single-column regions, so no parity line
    /// fully owns it. The ladder must record the failed attempt and
    /// escalate honestly into the quarantine rebuild.
    #[test]
    fn parity_poison_escalates_to_quarantine() {
        let params = CholeskyParams::test_small();
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let k = Cholesky::setup(&mut machine, params, Scheme::lazy_parity_default()).unwrap();
        assert_eq!(machine.run(k.plans()), Outcome::Completed);
        machine.drain_caches();
        machine.mem_mut().poison_line(k.repairable_lines()[0]);
        let rstats = k.recover(&mut machine);
        machine.drain_caches();
        assert!(k.verify(&machine), "quarantine rebuild must verify");
        assert_eq!(rstats.repaired_lines, 0);
        assert_eq!(rstats.repair_failures, 1);
        assert_eq!(rstats.escalations, 1);
        assert_eq!(rstats.regions_quarantined, 1);
        assert!(rstats.recomputed_regions > 0);
    }

    #[test]
    fn lazy_recovery_roundtrip() {
        for ops in [100u64, 400, 1_200] {
            let params = CholeskyParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let chol = Cholesky::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
            assert_eq!(machine.run(chol.plans()), Outcome::Crashed, "at {ops}");
            machine.clear_crash_trigger();
            let rstats = chol.recover(&mut machine);
            machine.drain_caches();
            assert!(chol.verify(&machine), "crash at {ops} ops");
            assert!(rstats.regions_checked > 0);
        }
    }

    #[test]
    fn eager_and_wal_recovery_roundtrip() {
        for scheme in [Scheme::Eager, Scheme::Wal] {
            let params = CholeskyParams::test_small();
            let mut machine = Machine::new(cfg().with_cores(params.threads));
            let chol = Cholesky::setup(&mut machine, params, scheme).unwrap();
            machine.set_crash_trigger(CrashTrigger::AfterMemOps(600));
            assert_eq!(machine.run(chol.plans()), Outcome::Crashed, "{scheme}");
            machine.clear_crash_trigger();
            chol.recover(&mut machine);
            machine.drain_caches();
            assert!(chol.verify(&machine), "{scheme}");
        }
    }

    #[test]
    fn region_rows_include_diagonal_once() {
        let p = CholeskyParams::test_small(); // bsize 8
        assert_eq!(Cholesky::region_rows(&p, 0, 0), (0..8).collect::<Vec<_>>());
        assert_eq!(Cholesky::region_rows(&p, 5, 0), vec![5, 6, 7]);
        assert_eq!(Cholesky::region_rows(&p, 5, 1), (8..16).collect::<Vec<_>>());
    }
}

//! Shared infrastructure for the simulated kernels: persistent matrices,
//! store sinks (normal execution vs. eager recovery), thread partitioning,
//! deterministic input generation, and run-result plumbing.

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use lp_core::ep::EagerCommitter;
use lp_core::parity::{lane_of, ParityArena, PARITY_FOLD_OPS};
use lp_core::scheme::{RegionSession, ThreadPersist};
use lp_core::table::ChecksumTable;
use lp_sim::core::CoreCtx;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::mem::{OutOfPersistentMemory, PArray};
use lp_sim::rng::Rng64;
use lp_sim::stats::SimStats;

/// Modelled ALU ops for one fused multiply-add in a kernel inner loop.
pub const MUL_ADD_OPS: u64 = 2;
/// Modelled ALU ops for loop/index overhead per inner iteration.
pub const IDX_OPS: u64 = 1;

/// A dense row-major `f64` matrix in simulated persistent memory.
///
/// The handle is `Copy`; elements are accessed through the timed
/// [`CoreCtx`] API or the machine's untimed poke/peek.
///
/// Rows are padded by one cache line (8 doubles), the standard HPC fix
/// for power-of-two strides: without it, a 1024-wide `f64` matrix puts
/// every element of a tile *column* into the same L1 set and column walks
/// thrash the cache (the SPLASH-2 kernels the paper builds on pad for the
/// same reason).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PMatrix {
    data: PArray<f64>,
    rows: usize,
    cols: usize,
    stride: usize,
}

impl PMatrix {
    /// Elements of row padding appended to each row.
    pub const ROW_PAD: usize = 8;

    /// Allocate a `rows × cols` matrix (zero-filled, rows padded).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(
        machine: &mut Machine,
        rows: usize,
        cols: usize,
    ) -> Result<Self, OutOfPersistentMemory> {
        let stride = cols + Self::ROW_PAD;
        let data = machine.alloc::<f64>(rows * stride)?;
        Ok(PMatrix {
            data,
            rows,
            cols,
            stride,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing array.
    pub fn array(&self) -> PArray<f64> {
        self.data
    }

    /// Flat index of `(i, j)` in the padded backing array.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        i * self.stride + j
    }

    /// Timed element load.
    #[inline]
    pub fn load(&self, ctx: &mut CoreCtx<'_>, i: usize, j: usize) -> f64 {
        ctx.load(self.data, self.idx(i, j))
    }

    /// Timed element store (plain — persistency-scheme stores go through a
    /// [`StoreSink`]).
    #[inline]
    pub fn store(&self, ctx: &mut CoreCtx<'_>, i: usize, j: usize, v: f64) {
        ctx.store(self.data, self.idx(i, j), v);
    }

    /// Batched dot-product dispatch of row `i` of `self` (contiguous in
    /// `k`) against column `j` of `other` (strided by `other`'s padded row
    /// stride): timing- and rounding-identical to the open-coded
    /// `for k in k0..k0 + n { sum += sign * self[i, k] * other[k, j]; }`
    /// loop with `ops_per_iter` ALU ops per iteration, `self[i, k]` loaded
    /// before `other[k, j]`. Lives on `PMatrix` because the column walk
    /// needs the private stride.
    ///
    /// # Panics
    ///
    /// Panics if either run goes out of bounds.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn fma_row_col(
        &self,
        ctx: &mut CoreCtx<'_>,
        i: usize,
        k0: usize,
        other: &PMatrix,
        j: usize,
        n: usize,
        ops_per_iter: u64,
        sign: f64,
        init: f64,
    ) -> f64 {
        ctx.fma_run(
            self.data,
            self.idx(i, k0),
            other.data,
            other.idx(k0, j),
            other.stride,
            n,
            ops_per_iter,
            sign,
            init,
        )
    }

    /// Batched row-fill dispatch: store `v` into `(i, j0..j0 + count)`,
    /// timing-identical to `count` individual [`PMatrix::store`] calls
    /// (plain stores — the kernels' strip-zeroing rebuild shape).
    ///
    /// # Panics
    ///
    /// Panics if the run goes out of bounds.
    #[inline]
    pub fn store_row_run(&self, ctx: &mut CoreCtx<'_>, i: usize, j0: usize, count: usize, v: f64) {
        debug_assert!(j0 + count <= self.cols, "row run out of bounds");
        ctx.store_run(self.data, self.idx(i, j0), count, v);
    }

    /// Untimed setup write.
    pub fn poke(&self, machine: &mut Machine, i: usize, j: usize, v: f64) {
        machine.poke(self.data, self.idx(i, j), v);
    }

    /// Untimed durable-image read.
    pub fn peek(&self, machine: &Machine, i: usize, j: usize) -> f64 {
        machine.peek(self.data, self.idx(i, j))
    }

    /// Untimed durable-image read of the whole matrix, row-major (padding
    /// excluded).
    pub fn peek_all(&self, machine: &Machine) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(machine.peek(self.data, self.idx(i, j)));
            }
        }
        out
    }

    /// Fill from a row-major slice (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn fill(&self, machine: &mut Machine, values: &[f64]) {
        assert_eq!(values.len(), self.rows * self.cols);
        for i in 0..self.rows {
            machine.poke_slice(
                self.data,
                i * self.stride,
                &values[i * self.cols..(i + 1) * self.cols],
            );
        }
    }

    /// Flush every line covering `count` whole rows starting at `row`
    /// (`clflushopt`, no fence).
    ///
    /// # Panics
    ///
    /// Panics if the rows are out of bounds.
    pub fn flush_rows(&self, ctx: &mut CoreCtx<'_>, row: usize, count: usize) {
        assert!(row + count <= self.rows, "rows out of bounds");
        for i in row..row + count {
            ctx.flush_range(self.data, i * self.stride, self.cols);
        }
    }
}

/// Where a kernel region's stores go: the per-scheme path during normal
/// execution, or the eager+checksummed path during recovery.
pub trait StoreSink {
    /// Store `v` into element `idx` of `arr` through the sink.
    fn store(&mut self, ctx: &mut CoreCtx<'_>, arr: PArray<f64>, idx: usize, v: f64);
}

/// Normal-execution sink: routes stores through the active scheme.
#[derive(Debug)]
pub struct SchemeSink<'s> {
    /// The thread's persistency runtime.
    pub tp: ThreadPersist,
    /// The open region session.
    pub rs: &'s mut RegionSession,
}

impl StoreSink for SchemeSink<'_> {
    fn store(&mut self, ctx: &mut CoreCtx<'_>, arr: PArray<f64>, idx: usize, v: f64) {
        self.tp.store(ctx, self.rs, arr, idx, v);
    }
}

/// Recovery sink: stores eagerly (lines collected for a flush+fence
/// commit) while recomputing the region checksum so the table can be
/// repaired durably too.
#[derive(Debug)]
pub struct RecoverySink {
    committer: EagerCommitter,
    ck: RunningChecksum,
    kind: ChecksumKind,
    parity: Option<(ParityArena, [u64; 8])>,
}

impl RecoverySink {
    /// A sink recomputing a `kind` checksum.
    pub fn new(kind: ChecksumKind) -> Self {
        RecoverySink {
            committer: EagerCommitter::new(),
            ck: RunningChecksum::new(kind),
            kind,
            parity: None,
        }
    }

    /// A sink that also rebuilds the region's XOR parity line
    /// (`LazyParity` recovery). The lanes are published durably *after*
    /// the data and checksum are fenced — the R8 recovery ordering: parity
    /// must never be observable ahead of the data it summarizes.
    pub fn with_parity(kind: ChecksumKind, arena: ParityArena) -> Self {
        RecoverySink {
            committer: EagerCommitter::new(),
            ck: RunningChecksum::new(kind),
            kind,
            parity: Some((arena, [0u64; 8])),
        }
    }

    /// Flush all written lines, fence, then durably store the recomputed
    /// checksum in `table[key]` (and, under `LazyParity`, the rebuilt
    /// parity line — last, per rule R8).
    pub fn commit(self, ctx: &mut CoreCtx<'_>, table: &ChecksumTable, key: usize) {
        self.committer.commit(ctx);
        table.store(ctx, key, self.ck.value());
        table.persist(ctx, key);
        if let Some((arena, lanes)) = self.parity {
            arena.store_lanes(ctx, key, &lanes);
            arena.persist(ctx, key);
        }
    }
}

impl StoreSink for RecoverySink {
    fn store(&mut self, ctx: &mut CoreCtx<'_>, arr: PArray<f64>, idx: usize, v: f64) {
        ctx.store(arr, idx, v);
        self.committer.note(arr.addr(idx));
        self.ck.update(v.to_bits());
        ctx.compute(self.kind.cost_ops());
        if let Some((_, lanes)) = &mut self.parity {
            lanes[lane_of(arr.addr(idx))] ^= v.to_bits();
            ctx.compute(PARITY_FOLD_OPS);
        }
    }
}

/// Recovery sink for marker-based schemes (no checksums): plain eager
/// stores, flushed and fenced at commit, without touching any marker.
#[derive(Debug, Default)]
pub struct EagerOnlySink {
    committer: EagerCommitter,
}

impl EagerOnlySink {
    /// Flush all written lines and fence.
    pub fn commit(self, ctx: &mut CoreCtx<'_>) {
        self.committer.commit(ctx);
    }
}

impl StoreSink for EagerOnlySink {
    fn store(&mut self, ctx: &mut CoreCtx<'_>, arr: PArray<f64>, idx: usize, v: f64) {
        ctx.store(arr, idx, v);
        self.committer.note(arr.addr(idx));
    }
}

/// Assign block indices `0..nblocks` to `threads` workers round-robin.
///
/// # Examples
///
/// ```
/// use lp_kernels::common::round_robin_blocks;
/// let owners = round_robin_blocks(5, 2);
/// assert_eq!(owners, vec![vec![0, 2, 4], vec![1, 3]]);
/// ```
pub fn round_robin_blocks(nblocks: usize, threads: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); threads.max(1)];
    for b in 0..nblocks {
        out[b % threads.max(1)].push(b);
    }
    out
}

/// Deterministic matrix data in `[-1, 1)`, seeded per array role.
pub fn random_values(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = Rng64::new(seed);
    (0..len).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

/// Deterministic symmetric-positive-definite matrix for Cholesky:
/// `A = M·Mᵀ + n·I` with `M` random in `[-1, 1)`.
pub fn random_spd(seed: u64, n: usize) -> Vec<f64> {
    let m = random_values(seed, n * n);
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += m[i * n + k] * m[j * n + k];
            }
            a[i * n + j] = s;
        }
        a[i * n + i] += n as f64;
    }
    a
}

/// Outcome of a simulated kernel run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Simulation statistics (cycles, writes, hazards, ...).
    pub stats: SimStats,
    /// Whether the run completed or crashed.
    pub outcome: Outcome,
    /// Whether the durable output matched the host golden reference
    /// (checked after draining caches; `false` is a bug for completed runs).
    pub verified: bool,
}

impl KernelRun {
    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.exec_cycles()
    }

    /// Total NVMM writes.
    pub fn writes(&self) -> u64 {
        self.stats.nvmm_writes()
    }
}

/// Maximum |a-b| over two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Whether two value sets agree to a tolerance appropriate for replayed
/// floating-point kernels (identical operation order ⇒ tight tolerance).
pub fn values_match(a: &[f64], b: &[f64]) -> bool {
    max_abs_diff(a, b) <= 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn pmatrix_addressing_and_io() {
        let mut m = machine();
        let mat = PMatrix::alloc(&mut m, 4, 8).unwrap();
        assert_eq!(mat.rows(), 4);
        assert_eq!(mat.cols(), 8);
        assert_eq!(mat.idx(2, 3), 2 * (8 + PMatrix::ROW_PAD) + 3);
        mat.poke(&mut m, 2, 3, 6.5);
        assert_eq!(mat.peek(&m, 2, 3), 6.5);
        let mut ctx = m.ctx(0);
        assert_eq!(mat.load(&mut ctx, 2, 3), 6.5);
        mat.store(&mut ctx, 0, 0, -1.0);
        assert_eq!(mat.load(&mut ctx, 0, 0), -1.0);
    }

    #[test]
    fn fill_and_peek_all_roundtrip() {
        let mut m = machine();
        let mat = PMatrix::alloc(&mut m, 3, 3).unwrap();
        let vals: Vec<f64> = (0..9).map(|i| i as f64).collect();
        mat.fill(&mut m, &vals);
        assert_eq!(mat.peek_all(&m), vals);
    }

    #[test]
    fn round_robin_covers_all_blocks_disjointly() {
        let owners = round_robin_blocks(10, 3);
        let mut seen: Vec<usize> = owners.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(owners[0], vec![0, 3, 6, 9]);
    }

    #[test]
    fn random_values_deterministic_per_seed() {
        assert_eq!(random_values(1, 16), random_values(1, 16));
        assert_ne!(random_values(1, 16), random_values(2, 16));
        assert!(random_values(3, 256)
            .iter()
            .all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn spd_matrix_is_symmetric_with_heavy_diagonal() {
        let n = 8;
        let a = random_spd(5, n);
        for i in 0..n {
            for j in 0..n {
                assert!((a[i * n + j] - a[j * n + i]).abs() < 1e-12);
            }
            assert!(a[i * n + i] > n as f64 * 0.5);
        }
    }

    #[test]
    fn recovery_sink_persists_data_and_checksum() {
        let mut m = machine();
        let arr = m.alloc::<f64>(16).unwrap();
        let table = ChecksumTable::alloc(&mut m, 4).unwrap();
        {
            let mut ctx = m.ctx(0);
            let mut sink = RecoverySink::new(ChecksumKind::Modular);
            for i in 0..16 {
                sink.store(&mut ctx, arr, i, i as f64);
            }
            sink.commit(&mut ctx, &table, 2);
        }
        // Everything survives a crash: data and table entry.
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        for i in 0..16 {
            assert_eq!(m.peek(arr, i), i as f64);
        }
        let expected = lp_core::checksum::checksum_f64s(ChecksumKind::Modular, &m.peek_vec(arr));
        assert_eq!(table.peek(&m, 2), Some(expected));
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert!(values_match(&[1.0], &[1.0 + 1e-12]));
        assert!(!values_match(&[1.0], &[1.1]));
    }
}

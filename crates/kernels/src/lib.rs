//! # lp-kernels — the paper's evaluation workloads
//!
//! The five scientific kernels of Table V (tiled matrix multiplication,
//! Cholesky factorization, 2-D convolution, Gaussian elimination, FFT),
//! each instrumented to run under any persistency scheme of Table IV
//! (`base`, Lazy Persistency, EagerRecompute, WAL) on the [`lp_sim`]
//! machine, with per-kernel crash-recovery code and host golden
//! references. A [`native`] module additionally runs every kernel on the
//! real host for the paper's Table VII real-machine comparison.
//!
//! Start with [`driver::run_kernel`] for one-call runs, or a kernel
//! module's `setup`/`plans`/`recover`/`verify` API for crash experiments;
//! see [`tmm`] for the fully-worked example that mirrors the paper's
//! Figures 8 and 9.
#![deny(missing_docs)]
pub mod cholesky;
pub mod common;
pub mod conv2d;
pub mod driver;
pub mod fft;
pub mod gauss;
pub mod native;
pub mod tmm;

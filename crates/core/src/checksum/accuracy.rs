//! Error-injection accuracy study for the checksum codes (Section III-D).
//!
//! The paper injects random errors into matrix elements and measures how
//! often a corrupted region still produces the error-free checksum (a
//! *false negative* for the detector — the paper reports fewer than one
//! miss in two billion injections for Modular and Adler-32).
//!
//! A "persistency error" here means: some of the values a region stored
//! never reached NVMM, so recovery reads a *stale* value (the previous
//! content of that location — commonly zero for freshly-allocated output,
//! or an older result for in-place updates).

use super::{ChecksumKind, RunningChecksum};
use lp_sim::rng::Rng64;

/// How injected corruption models the stale data read after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// Lost stores read back as zero (fresh output arrays).
    StaleZero,
    /// Lost stores read back as an arbitrary previous value.
    StaleRandom,
    /// A single bit of one stored value flips (a harsher, ABFT-style
    /// model; persistency failures are coarser than this in practice).
    BitFlip,
}

/// Result of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccuracyReport {
    /// Corrupted regions tested.
    pub injections: u64,
    /// Corrupted regions whose checksum still matched (false negatives).
    pub undetected: u64,
}

impl AccuracyReport {
    /// False-negative probability estimate.
    pub fn miss_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.undetected as f64 / self.injections as f64
        }
    }
}

fn checksum_of(kind: ChecksumKind, values: &[u64]) -> u64 {
    let mut ck = RunningChecksum::new(kind);
    ck.update_slice(values);
    ck.value()
}

/// Run `trials` corruption experiments on regions of `region_len` random
/// values, returning how many corruptions went undetected by `kind`.
///
/// Each trial generates a fresh region, corrupts between 1 and
/// `region_len` of its values according to `model`, and compares the
/// corrupted checksum to the clean one. Trials where the corruption
/// happens to reproduce the original values exactly are re-rolled (no
/// error was actually injected).
pub fn run_injection_campaign(
    kind: ChecksumKind,
    region_len: usize,
    trials: u64,
    model: ErrorModel,
    rng: &mut Rng64,
) -> AccuracyReport {
    assert!(region_len > 0, "region must hold at least one value");
    let mut report = AccuracyReport::default();
    let mut values = vec![0u64; region_len];
    for _ in 0..trials {
        for v in values.iter_mut() {
            // Realistic double values: uniform magnitudes, never exactly 0.
            let x: f64 = rng.range_f64(1.0e-3, 1.0e3) * if rng.chance(0.5) { 1.0 } else { -1.0 };
            *v = x.to_bits();
        }
        let clean = checksum_of(kind, &values);
        let mut corrupted = values.clone();
        loop {
            match model {
                ErrorModel::StaleZero => {
                    let k = rng.range_inclusive(1, region_len.min(8));
                    for _ in 0..k {
                        let i = rng.below(region_len);
                        corrupted[i] = 0;
                    }
                }
                ErrorModel::StaleRandom => {
                    let k = rng.range_inclusive(1, region_len.min(8));
                    for _ in 0..k {
                        let i = rng.below(region_len);
                        corrupted[i] = rng.next_u64();
                    }
                }
                ErrorModel::BitFlip => {
                    let i = rng.below(region_len);
                    let bit = rng.below(64);
                    corrupted[i] ^= 1u64 << bit;
                }
            }
            if corrupted != values {
                break;
            }
            corrupted.copy_from_slice(&values);
        }
        report.injections += 1;
        if checksum_of(kind, &corrupted) == clean {
            report.undetected += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_detects_stale_zero_corruption() {
        let mut rng = Rng64::new(7);
        let r = run_injection_campaign(
            ChecksumKind::Modular,
            64,
            20_000,
            ErrorModel::StaleZero,
            &mut rng,
        );
        assert_eq!(r.injections, 20_000);
        assert_eq!(r.undetected, 0, "modular missed stale-zero corruption");
    }

    #[test]
    fn adler_detects_bit_flips() {
        let mut rng = Rng64::new(11);
        let r = run_injection_campaign(
            ChecksumKind::Adler32,
            64,
            20_000,
            ErrorModel::BitFlip,
            &mut rng,
        );
        assert_eq!(r.undetected, 0, "adler32 missed single bit flips");
    }

    #[test]
    fn parity_detects_single_bit_flips_perfectly() {
        // A single bit flip always changes an XOR parity.
        let mut rng = Rng64::new(13);
        let r = run_injection_campaign(
            ChecksumKind::Parity,
            32,
            10_000,
            ErrorModel::BitFlip,
            &mut rng,
        );
        assert_eq!(r.undetected, 0);
    }

    #[test]
    fn all_kinds_handle_random_corruption_well() {
        for kind in ChecksumKind::ALL {
            let mut rng = Rng64::new(kind.cost_ops());
            let r = run_injection_campaign(kind, 128, 5_000, ErrorModel::StaleRandom, &mut rng);
            assert!(r.miss_rate() < 1e-3, "{kind}: miss rate {}", r.miss_rate());
        }
    }

    #[test]
    fn miss_rate_of_empty_report_is_zero() {
        assert_eq!(AccuracyReport::default().miss_rate(), 0.0);
    }
}

//! A uniform per-region persistency API so each kernel is written once and
//! runs under any scheme the paper evaluates (Table IV): `base`, `+LP`,
//! `+EP` (EagerRecompute), `+WAL`.
//!
//! A kernel wraps each persistency region in
//! [`ThreadPersist::begin`] … [`ThreadPersist::commit`] and routes every
//! result store through [`ThreadPersist::store`]. What that costs depends
//! on the scheme:
//!
//! | scheme | per store | at commit |
//! |--------|-----------|-----------|
//! | `Base` | plain store | nothing |
//! | `Lazy(kind)` | store + checksum update | one lazy store of the checksum |
//! | `LazyParity(kind)` | store + checksum update + parity-lane XOR | checksum store, then the parity line |
//! | `LazyEagerCk(kind)` | store + checksum update | checksum store + flush + fence |
//! | `Eager` | store + immediate `clflushopt` | fence, then durable marker |
//! | `Wal` | undo-log append (flushed) + staged store | Figure 2's flush+fence rounds |

use crate::checksum::{ChecksumKind, RunningChecksum};
use crate::ep::EagerCommitter;
use crate::parity::{lane_of, ParityArena, PARITY_FOLD_OPS};
use crate::table::ChecksumTable;
use crate::track::{RangeRole, TrackedRange};
use crate::wal::{WalArena, WalTx};
use lp_sim::core::CoreCtx;
use lp_sim::machine::Machine;
use lp_sim::mem::{OutOfPersistentMemory, PArray, Scalar};

/// Which failure-safety technique a run uses (Table IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No failure safety (the normalization baseline).
    Base,
    /// Lazy Persistency with the given checksum (this paper's proposal).
    Lazy(ChecksumKind),
    /// Lazy Persistency plus a per-region XOR parity line, so recovery can
    /// *repair* a single lost line in place (Pangolin-style) instead of
    /// recomputing the whole region — the rung-1 entry of the escalation
    /// ladder parity repair → region recompute → EP re-execution.
    LazyParity(ChecksumKind),
    /// Lazy Persistency for the data but *eager* persistence for the
    /// checksum itself (flush + fence at commit) — the alternative
    /// Section III-D weighs and rejects; kept as an ablation.
    LazyEagerCk(ChecksumKind),
    /// EagerRecompute: flush-as-it-goes + durable progress marker.
    Eager,
    /// Durable transactions with software write-ahead logging.
    Wal,
}

impl Scheme {
    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> String {
        match self {
            Scheme::Base => "base".into(),
            Scheme::Lazy(k) => format!("LP({k})"),
            Scheme::LazyParity(k) => format!("LP+par({k})"),
            Scheme::LazyEagerCk(k) => format!("LP({k}, eager-ck)"),
            Scheme::Eager => "EP".into(),
            Scheme::Wal => "WAL".into(),
        }
    }

    /// Lazy Persistency with the paper's default checksum (Modular).
    pub fn lazy_default() -> Self {
        Scheme::Lazy(ChecksumKind::Modular)
    }

    /// Parity-repairing Lazy Persistency with CRC-32 — the cheapest
    /// checksum that can *certify* a rung-1 parity reconstruction at any
    /// region size (see [`crate::parity::can_certify`]; Modular falls to
    /// transfer cancellation against a coexisting single-bit flip, so a
    /// Modular-paired parity arena detects but never repairs).
    pub fn lazy_parity_default() -> Self {
        Scheme::LazyParity(ChecksumKind::Crc32)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// All persistent structures a scheme needs, allocated once per run.
#[derive(Debug, Clone)]
pub struct SchemeHandles {
    /// The scheme in force.
    pub scheme: Scheme,
    /// Checksum table (used by `Lazy`; allocated tiny otherwise).
    pub table: ChecksumTable,
    /// Per-region XOR parity lines (used by `LazyParity`; sized like the
    /// table so region keys index it collision-free).
    pub parity: ParityArena,
    /// Per-thread durable progress markers (used by `Eager`): `0` = no
    /// region completed, else `1 + key` of the last committed region.
    pub markers: PArray<u64>,
    /// Per-thread undo-log arenas (used by `Wal`).
    pub arenas: Vec<WalArena>,
}

impl SchemeHandles {
    /// Allocate the support structures for `scheme`.
    ///
    /// `table_entries` sizes the collision-free checksum table (ignored
    /// unless the scheme is `Lazy`); `threads` sizes the marker array and
    /// arena list; `wal_capacity` bounds stores per WAL transaction.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(
        machine: &mut Machine,
        scheme: Scheme,
        table_entries: usize,
        threads: usize,
        wal_capacity: usize,
    ) -> Result<Self, OutOfPersistentMemory> {
        // The table is allocated for every scheme: Lazy uses it during
        // normal execution, and the shared recovery sinks repair entries
        // under any scheme.
        let table = ChecksumTable::alloc(machine, table_entries.max(1))?;
        // The parity arena mirrors the table: allocated for every scheme
        // (one line per key) so recovery sinks can repair parity alongside
        // checksums; only `LazyParity` writes it in the forward path.
        let parity = ParityArena::alloc(machine, table_entries.max(1))?;
        let markers = machine.alloc::<u64>(threads.max(1))?;
        for t in 0..threads.max(1) {
            machine.poke(markers, t, 0);
        }
        let arenas = if matches!(scheme, Scheme::Wal) {
            (0..threads)
                .map(|_| WalArena::alloc(machine, wal_capacity))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        Ok(SchemeHandles {
            scheme,
            table,
            parity,
            markers,
            arenas,
        })
    }

    /// Describe the scheme's own persistent allocations for address-range
    /// tracking (the kernel adds its protected data ranges on top).
    pub fn ranges(&self) -> Vec<TrackedRange> {
        let mut out = vec![
            TrackedRange::of("ck-table", self.table.array(), RangeRole::ChecksumTable),
            TrackedRange::of("parity", self.parity.array(), RangeRole::ParityArena),
            TrackedRange::of("markers", self.markers, RangeRole::Markers),
        ];
        for (t, arena) in self.arenas.iter().enumerate() {
            out.push(TrackedRange::of(
                format!("wal{t}.entries"),
                arena.entries_array(),
                RangeRole::WalEntries,
            ));
            out.push(TrackedRange::of(
                format!("wal{t}.header"),
                arena.header_array(),
                RangeRole::WalHeader,
            ));
        }
        out
    }

    /// The per-thread view used inside region closures (cheap, `Copy`).
    ///
    /// # Panics
    ///
    /// Panics if `tid` has no WAL arena under the `Wal` scheme.
    pub fn thread(&self, tid: usize) -> ThreadPersist {
        ThreadPersist {
            scheme: self.scheme,
            table: self.table,
            parity: self.parity,
            markers: self.markers,
            tid,
            arena: if matches!(self.scheme, Scheme::Wal) {
                Some(self.arenas[tid])
            } else {
                None
            },
        }
    }
}

/// Per-thread persistency runtime: everything a region closure needs.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPersist {
    /// The scheme in force.
    pub scheme: Scheme,
    /// Checksum table handle.
    pub table: ChecksumTable,
    /// Parity arena handle.
    pub parity: ParityArena,
    /// Marker array handle.
    pub markers: PArray<u64>,
    /// This thread's id (marker slot).
    pub tid: usize,
    arena: Option<WalArena>,
}

/// In-flight state of one persistency region.
#[derive(Debug)]
pub struct RegionSession {
    key: usize,
    ck: Option<RunningChecksum>,
    par: Option<[u64; 8]>,
    eager: Option<EagerCommitter>,
    wal: Option<WalTx>,
}

impl RegionSession {
    /// The region key this session was opened with.
    pub fn key(&self) -> usize {
        self.key
    }
}

impl ThreadPersist {
    /// Open a region with collision-free key `key` (indexes the checksum
    /// table under `Lazy`; recorded in the marker under `Eager`/`Wal`).
    ///
    /// The region boundary is announced to any installed event observer
    /// (see `lp_sim::observe`); with none installed that is a no-op.
    pub fn begin(&self, ctx: &mut CoreCtx<'_>, key: usize) -> RegionSession {
        ctx.region_begin(key);
        RegionSession {
            key,
            ck: match self.scheme {
                Scheme::Lazy(kind) | Scheme::LazyParity(kind) | Scheme::LazyEagerCk(kind) => {
                    Some(RunningChecksum::new(kind))
                }
                _ => None,
            },
            par: matches!(self.scheme, Scheme::LazyParity(_)).then_some([0u64; 8]),
            eager: matches!(self.scheme, Scheme::Eager).then(EagerCommitter::new),
            wal: self.arena.map(|a| a.begin()),
        }
    }

    /// Store one region result through the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, or (under `Wal`) if the arena
    /// capacity is exceeded or `T` is not 8 bytes wide.
    pub fn store<T: Scalar>(
        &self,
        ctx: &mut CoreCtx<'_>,
        rs: &mut RegionSession,
        arr: PArray<T>,
        i: usize,
        v: T,
    ) {
        match self.scheme {
            Scheme::Base => ctx.store(arr, i, v),
            Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) => {
                ctx.store(arr, i, v);
                let ck = rs.ck.as_mut().expect("lazy session has a checksum");
                ck.update(v.to_bits64());
                ctx.compute(kind.cost_ops());
            }
            Scheme::LazyParity(kind) => {
                ctx.store(arr, i, v);
                let ck = rs.ck.as_mut().expect("lazy session has a checksum");
                ck.update(v.to_bits64());
                let par = rs.par.as_mut().expect("parity session has lanes");
                par[lane_of(arr.addr(i))] ^= v.to_bits64();
                ctx.compute(kind.cost_ops() + PARITY_FOLD_OPS);
            }
            Scheme::Eager => {
                // EagerRecompute persists computation *as it goes*
                // (Section V-C): every result store is immediately pushed
                // toward NVMM. This is what defeats same-line coalescing
                // and produces the paper's Table VI hazard explosion; the
                // region-end fence then only waits for the stragglers.
                ctx.store(arr, i, v);
                ctx.clflushopt(arr.addr(i));
            }
            Scheme::Wal => {
                rs.wal
                    .as_mut()
                    .expect("wal session has a transaction")
                    .log_and_stage(ctx, arr, i, v);
            }
        }
    }

    /// Close the region: persist per the scheme (see module docs).
    pub fn commit(&self, ctx: &mut CoreCtx<'_>, rs: RegionSession) {
        match self.scheme {
            Scheme::Base => {}
            Scheme::Lazy(_) => {
                let ck = rs.ck.expect("lazy session has a checksum");
                self.table.store(ctx, rs.key, ck.value());
            }
            Scheme::LazyParity(_) => {
                // Publication order is part of the R8 discipline: the
                // parity line is the *last* thing the region publishes —
                // never observable ahead of data it summarizes. All stores
                // are lazy; the failure-free path still has no flush or
                // fence.
                let ck = rs.ck.expect("lazy session has a checksum");
                self.table.store(ctx, rs.key, ck.value());
                let par = rs.par.expect("parity session has lanes");
                self.parity.store_lanes(ctx, rs.key, &par);
            }
            Scheme::LazyEagerCk(_) => {
                let ck = rs.ck.expect("lazy session has a checksum");
                self.table.store(ctx, rs.key, ck.value());
                // The ablation's cost: flush + fence per region, paid in
                // the failure-free common case.
                self.table.persist(ctx, rs.key);
            }
            Scheme::Eager => {
                // Wait until everything the region flushed is durable,
                // then advance the durable progress marker.
                drop(rs.eager);
                ctx.sfence();
                ctx.store(self.markers, self.tid, rs.key as u64 + 1);
                ctx.clflushopt(self.markers.addr(self.tid));
                ctx.sfence();
            }
            Scheme::Wal => {
                rs.wal
                    .expect("wal session has a transaction")
                    .commit(ctx, rs.key as u64 + 1);
            }
        }
        // Announced after the commit-path stores so the observer counts
        // them as part of the region.
        ctx.region_end();
    }

    /// This thread's durable progress marker from the durable image
    /// (`Eager` stores it in `markers`, `Wal` inside its arena header).
    pub fn peek_marker(&self, machine: &Machine) -> u64 {
        match self.scheme {
            Scheme::Wal => self
                .arena
                .map(|a| a.peek_marker(machine))
                .unwrap_or_default(),
            _ => machine.peek(self.markers, self.tid),
        }
    }

    /// This thread's durable progress marker, read through the timed
    /// memory system (`Eager` stores it in `markers`, `Wal` inside its
    /// arena header).
    ///
    /// During recovery this must be read *after* [`Self::wal_recover`]:
    /// `Wal` commits log the marker's undo pair, so rolling back an
    /// interrupted transaction rewinds the marker too. A marker read
    /// before the rollback can claim a region whose effects were just
    /// undone, and recovery would silently skip re-executing it.
    pub fn marker(&self, ctx: &mut CoreCtx<'_>) -> u64 {
        match self.scheme {
            Scheme::Wal => self.arena.map(|a| a.marker(ctx)).unwrap_or_default(),
            _ => ctx.load(self.markers, self.tid),
        }
    }

    /// Roll back an interrupted WAL transaction if one exists (no-op for
    /// other schemes). Returns the number of undone stores.
    pub fn wal_recover(&self, ctx: &mut CoreCtx<'_>) -> usize {
        self.arena.map_or(0, |a| a.recover(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::mem::PArray;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(2)
                .with_nvmm_bytes(1 << 20),
        )
    }

    fn run_region(scheme: Scheme) -> (Machine, SchemeHandles, PArray<f64>) {
        let mut m = machine();
        let arr = m.alloc::<f64>(64).unwrap();
        let h = SchemeHandles::alloc(&mut m, scheme, 16, 2, 128).unwrap();
        let tp = h.thread(0);
        {
            let mut ctx = m.ctx(0);
            let mut rs = tp.begin(&mut ctx, 3);
            for i in 0..16 {
                tp.store(&mut ctx, &mut rs, arr, i, (i + 1) as f64);
            }
            tp.commit(&mut ctx, rs);
        }
        (m, h, arr)
    }

    #[test]
    fn all_schemes_produce_the_same_values() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::LazyParity(ChecksumKind::Modular),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let (mut m, _, arr) = run_region(scheme);
            m.drain_caches();
            for i in 0..16 {
                assert_eq!(m.peek(arr, i), (i + 1) as f64, "{scheme} element {i}");
            }
        }
    }

    #[test]
    fn base_writes_nothing_extra() {
        let (m, _, _) = run_region(Scheme::Base);
        let s = m.stats();
        assert_eq!(s.core_totals().flushes, 0);
        assert_eq!(s.core_totals().fences, 0);
        assert_eq!(s.mem.nvmm_writes_flush, 0);
    }

    #[test]
    fn lazy_stores_checksum_without_flushes() {
        let (mut m, h, _) = run_region(Scheme::lazy_default());
        let s = m.stats();
        assert_eq!(s.core_totals().flushes, 0, "LP never flushes");
        assert_eq!(s.core_totals().fences, 0, "LP never fences");
        let mut ctx = m.ctx(0);
        assert!(h.table.load(&mut ctx, 3).is_some(), "checksum recorded");
    }

    #[test]
    fn eager_flushes_and_advances_marker() {
        let (m, h, _) = run_region(Scheme::Eager);
        let s = m.stats();
        assert!(s.core_totals().flushes >= 2, "region lines + marker");
        assert_eq!(s.core_totals().fences, 2);
        assert_eq!(h.thread(0).peek_marker(&m), 4, "marker = key + 1");
    }

    #[test]
    fn wal_is_most_expensive() {
        let (m_wal, h, _) = run_region(Scheme::Wal);
        let (m_eager, _, _) = run_region(Scheme::Eager);
        let (m_base, _, _) = run_region(Scheme::Base);
        let (wal, eager, base) = (
            m_wal.stats().exec_cycles(),
            m_eager.stats().exec_cycles(),
            m_base.stats().exec_cycles(),
        );
        assert!(wal > eager, "WAL ({wal}) slower than EP ({eager})");
        assert!(eager > base, "EP ({eager}) slower than base ({base})");
        assert!(
            m_wal.stats().nvmm_writes() > m_eager.stats().nvmm_writes(),
            "WAL writes more than EP"
        );
        assert_eq!(h.thread(0).peek_marker(&m_wal), 4);
    }

    #[test]
    fn lazy_checksum_matches_recomputation() {
        let (mut m, h, arr) = run_region(Scheme::lazy_default());
        m.drain_caches();
        let values: Vec<f64> = (0..16).map(|i| m.peek(arr, i)).collect();
        let recomputed = crate::checksum::checksum_f64s(ChecksumKind::Modular, &values);
        let mut ctx = m.ctx(0);
        assert!(h.table.matches(&mut ctx, 3, recomputed));
    }

    #[test]
    fn lazy_parity_publishes_checksum_and_parity_without_flushes() {
        let (mut m, h, arr) = run_region(Scheme::LazyParity(ChecksumKind::Modular));
        let s = m.stats();
        assert_eq!(s.core_totals().flushes, 0, "LP+par never flushes");
        assert_eq!(s.core_totals().fences, 0, "LP+par never fences");
        let mut ctx = m.ctx(0);
        assert!(h.table.load(&mut ctx, 3).is_some(), "checksum recorded");
        let mut expected = [0u64; 8];
        for i in 0..16 {
            expected[crate::parity::lane_of(arr.addr(i))] ^= ((i + 1) as f64).to_bits();
        }
        assert_eq!(
            h.parity.load_lanes(&mut ctx, 3),
            expected,
            "parity lanes are the XOR of the region's stores by word slot"
        );
    }

    #[test]
    fn marker_zero_before_any_commit() {
        let mut m = machine();
        let h = SchemeHandles::alloc(&mut m, Scheme::Eager, 1, 2, 0).unwrap();
        assert_eq!(h.thread(0).peek_marker(&m), 0);
        assert_eq!(h.thread(1).peek_marker(&m), 0);
    }

    #[test]
    fn lazy_eager_ck_persists_the_checksum_immediately() {
        let (m, h, _) = run_region(Scheme::LazyEagerCk(ChecksumKind::Modular));
        let s = m.stats();
        assert_eq!(s.core_totals().flushes, 1, "one flush: the table entry");
        assert_eq!(s.core_totals().fences, 1);
        // The entry survives an immediate crash — unlike plain Lazy.
        let mut m = m;
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert!(h.table.peek(&m, 3).is_some(), "eager checksum durable");

        let (mut m2, h2, _) = run_region(Scheme::lazy_default());
        m2.mem_mut().force_crash();
        m2.mem_mut().acknowledge_crash();
        assert!(h2.table.peek(&m2, 3).is_none(), "lazy checksum lost");
    }

    #[test]
    fn lazy_eager_ck_data_is_still_lazy() {
        let (mut m, _, arr) = run_region(Scheme::LazyEagerCk(ChecksumKind::Modular));
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        // Data wasn't flushed (only the checksum was): it is lost.
        assert!((0..16).any(|i| m.peek(arr, i) == 0.0), "data stays lazy");
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: Vec<String> = [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::Lazy(ChecksumKind::Crc32),
            Scheme::Lazy(ChecksumKind::Parity),
            Scheme::LazyParity(ChecksumKind::Modular),
            Scheme::LazyParity(ChecksumKind::Parity),
            Scheme::LazyEagerCk(ChecksumKind::Modular),
            Scheme::Eager,
            Scheme::Wal,
        ]
        .iter()
        .map(super::Scheme::name)
        .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }

    #[test]
    fn wal_recover_is_noop_without_open_tx() {
        let mut m = machine();
        let h = SchemeHandles::alloc(&mut m, Scheme::Wal, 1, 2, 16).unwrap();
        let tp = h.thread(1);
        let mut ctx = m.ctx(1);
        assert_eq!(tp.wal_recover(&mut ctx), 0);
    }
}

//! Eager Persistency primitives: the flush-and-fence machinery the paper's
//! baselines (and Lazy Persistency's own recovery path) are built from.
//!
//! The *EagerRecompute* baseline (Elnawawy et al., PACT 2017 — the paper's
//! state-of-the-art comparison) persists a region's stores by flushing every
//! touched cache line at region end, fencing, then durably advancing a
//! per-thread progress marker. There is no logging; after a crash, regions
//! past the marker are recomputed.

use lp_sim::addr::{Addr, LineAddr};
use lp_sim::core::CoreCtx;
use lp_sim::mem::{PArray, Scalar};

/// Collects the distinct cache lines a region has written so they can be
/// flushed together at commit (the paper's tile-granularity persist).
///
/// # Examples
///
/// ```
/// use lp_sim::prelude::*;
/// use lp_core::ep::EagerCommitter;
///
/// let mut m = Machine::new(MachineConfig::default().with_cores(1).with_nvmm_bytes(1 << 20));
/// let arr = m.alloc::<f64>(64).unwrap();
/// let mut ctx = m.ctx(0);
/// let mut ec = EagerCommitter::new();
/// for i in 0..16 {
///     ctx.store(arr, i, 1.0);
///     ec.note(arr.addr(i));
/// }
/// ec.commit(&mut ctx); // clflushopt per line + sfence
/// assert!(ctx.mem.stats.nvmm_writes_flush >= 2);
/// ```
#[derive(Debug, Default)]
pub struct EagerCommitter {
    lines: Vec<LineAddr>,
}

impl EagerCommitter {
    /// An empty committer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the line containing `addr` was written.
    pub fn note(&mut self, addr: Addr) {
        let line = addr.line();
        if self.lines.last() != Some(&line) {
            self.lines.push(line);
        }
    }

    /// Record every line covering elements `[start, start+count)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn note_range<T: Scalar>(&mut self, arr: PArray<T>, start: usize, count: usize) {
        for line in arr.lines_of_range(start, count) {
            if self.lines.last() != Some(&line) {
                self.lines.push(line);
            }
        }
    }

    /// Distinct lines recorded so far.
    pub fn line_count(&mut self) -> usize {
        self.dedup();
        self.lines.len()
    }

    fn dedup(&mut self) {
        self.lines.sort_unstable_by_key(|l| l.0);
        self.lines.dedup();
    }

    /// Flush every recorded line (`clflushopt`) and fence. Consumes the
    /// committer; a new region starts with a fresh one.
    pub fn commit(mut self, ctx: &mut CoreCtx<'_>) {
        self.dedup();
        for line in &self.lines {
            ctx.clflushopt(line.base());
        }
        ctx.sfence();
    }
}

/// Durably store one scalar: store + `clflushopt` + `sfence`.
///
/// This is the eager building block recovery code uses for progress
/// markers and repaired values.
///
/// # Panics
///
/// Panics if `i` is out of bounds.
pub fn persist_store<T: Scalar>(ctx: &mut CoreCtx<'_>, arr: PArray<T>, i: usize, v: T) {
    ctx.store(arr, i, v);
    ctx.clflushopt(arr.addr(i));
    ctx.sfence();
}

/// Durably flush elements `[start, start+count)` of `arr` and fence.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn persist_range<T: Scalar>(ctx: &mut CoreCtx<'_>, arr: PArray<T>, start: usize, count: usize) {
    ctx.flush_range(arr, start, count);
    ctx.sfence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::machine::Machine;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn commit_flushes_each_line_once() {
        let mut m = machine();
        let arr = m.alloc::<f64>(64).unwrap(); // 8 lines
        let mut ctx = m.ctx(0);
        let mut ec = EagerCommitter::new();
        for i in 0..64 {
            ctx.store(arr, i, i as f64);
            ec.note(arr.addr(i));
        }
        // Note the same range again: must still flush only 8 lines.
        ec.note_range(arr, 0, 64);
        assert_eq!(ec.line_count(), 8);
        ec.commit(&mut ctx);
        assert_eq!(ctx.core.stats.flushes, 8);
        assert_eq!(ctx.core.stats.fences, 1);
        assert_eq!(ctx.mem.stats.nvmm_writes_flush, 8);
    }

    #[test]
    fn committed_data_survives_crash() {
        let mut m = machine();
        let arr = m.alloc::<f64>(16).unwrap();
        {
            let mut ctx = m.ctx(0);
            let mut ec = EagerCommitter::new();
            for i in 0..16 {
                ctx.store(arr, i, (i * i) as f64);
                ec.note(arr.addr(i));
            }
            ec.commit(&mut ctx);
        }
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        for i in 0..16 {
            assert_eq!(m.peek(arr, i), (i * i) as f64);
        }
    }

    #[test]
    fn persist_store_is_durable_immediately() {
        let mut m = machine();
        let arr = m.alloc::<u64>(8).unwrap();
        {
            let mut ctx = m.ctx(0);
            persist_store(&mut ctx, arr, 3, 99);
        }
        assert_eq!(m.peek(arr, 3), 99, "visible in durable image pre-crash");
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert_eq!(m.peek(arr, 3), 99);
    }

    #[test]
    fn persist_range_flushes_covering_lines() {
        let mut m = machine();
        let arr = m.alloc::<f64>(32).unwrap(); // 4 lines
        let mut ctx = m.ctx(0);
        for i in 0..32 {
            ctx.store(arr, i, 1.0);
        }
        persist_range(&mut ctx, arr, 0, 32);
        assert_eq!(ctx.mem.stats.nvmm_writes_flush, 4);
        assert_eq!(ctx.core.stats.fences, 1);
    }

    #[test]
    fn empty_commit_is_fence_only() {
        let mut m = machine();
        let mut ctx = m.ctx(0);
        EagerCommitter::new().commit(&mut ctx);
        assert_eq!(ctx.core.stats.flushes, 0);
        assert_eq!(ctx.core.stats.fences, 1);
    }
}

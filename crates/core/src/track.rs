//! Descriptions of the persistent address ranges a workload uses, so that
//! external tools — the `lp-check` sanitizer in particular — can map raw
//! simulated addresses back to named allocations and classify each store
//! by its role in the persistency discipline.

use lp_sim::addr::Addr;
use lp_sim::mem::{PArray, Scalar};

/// What a tracked persistent range holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeRole {
    /// Kernel data protected by the active persistency scheme (stores to
    /// it must happen inside begin/commit regions).
    Protected,
    /// The checksum table (`Lazy` commit target).
    ChecksumTable,
    /// The per-region XOR parity lines (`LazyParity` commit target; must
    /// never be observable ahead of the data it summarizes — rule R8).
    ParityArena,
    /// Per-thread durable progress markers (`Eager` commit target).
    Markers,
    /// A WAL arena's `(address, old bits)` undo-log entries.
    WalEntries,
    /// A WAL arena's `[status, count, marker]` header line.
    WalHeader,
    /// Scratch state no persistency rule applies to (read-only inputs,
    /// padding).
    Scratch,
}

impl std::fmt::Display for RangeRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RangeRole::Protected => "protected",
            RangeRole::ChecksumTable => "checksum-table",
            RangeRole::ParityArena => "parity-arena",
            RangeRole::Markers => "markers",
            RangeRole::WalEntries => "wal-entries",
            RangeRole::WalHeader => "wal-header",
            RangeRole::Scratch => "scratch",
        })
    }
}

/// One named persistent allocation: a contiguous byte range plus the
/// element width needed to turn an address back into an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedRange {
    /// Human-readable allocation name (e.g. `"tmm.c"`, `"ck-table"`).
    pub name: String,
    /// First byte of the range.
    pub base: Addr,
    /// Length in bytes.
    pub bytes: u64,
    /// Scalar element width in bytes (for index mapping).
    pub elem_bytes: usize,
    /// The range's role in the persistency discipline.
    pub role: RangeRole,
}

impl TrackedRange {
    /// Describe an allocation backed by a [`PArray`].
    pub fn of<T: Scalar>(name: impl Into<String>, arr: PArray<T>, role: RangeRole) -> Self {
        TrackedRange {
            name: name.into(),
            base: arr.addr(0),
            bytes: arr.bytes(),
            elem_bytes: T::SIZE,
            role,
        }
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.bytes
    }

    /// Element index of `addr` within the range.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the range.
    pub fn element_of(&self, addr: Addr) -> usize {
        assert!(self.contains(addr), "{addr:?} outside {}", self.name);
        ((addr.0 - self.base.0) as usize) / self.elem_bytes
    }
}

/// Find the tracked range containing `addr`, if any.
pub fn find_range(ranges: &[TrackedRange], addr: Addr) -> Option<&TrackedRange> {
    ranges.iter().find(|r| r.contains(addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::machine::Machine;

    #[test]
    fn range_maps_addresses_to_elements() {
        let mut m = Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        );
        let arr = m.alloc::<f64>(32).unwrap();
        let r = TrackedRange::of("data", arr, RangeRole::Protected);
        assert_eq!(r.bytes, 256);
        assert_eq!(r.elem_bytes, 8);
        assert!(r.contains(arr.addr(0)));
        assert!(r.contains(arr.addr(31)));
        assert_eq!(r.element_of(arr.addr(5)), 5);

        let other = m.alloc::<u64>(8).unwrap();
        assert!(!r.contains(other.addr(0)));
        let ranges = vec![r, TrackedRange::of("meta", other, RangeRole::ChecksumTable)];
        assert_eq!(find_range(&ranges, other.addr(3)).unwrap().name, "meta");
        assert_eq!(find_range(&ranges, arr.addr(0)).unwrap().name, "data");
    }

    #[test]
    fn roles_display_distinctly() {
        let names: Vec<String> = [
            RangeRole::Protected,
            RangeRole::ChecksumTable,
            RangeRole::ParityArena,
            RangeRole::Markers,
            RangeRole::WalEntries,
            RangeRole::WalHeader,
            RangeRole::Scratch,
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}

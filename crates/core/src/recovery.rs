//! Recovery-side helpers: verify regions against their stored checksums
//! and account for repair work.
//!
//! Recovery is kernel-specific (Section III-E: "recovery mechanisms are
//! region and workload dependent"), but every kernel's recovery does the
//! same two primitive things this module provides:
//!
//! 1. *verification* — reload a region's values from the post-crash NVMM
//!    image, recompute the checksum, and compare it with the table entry;
//! 2. *accounting* — count how many regions were checked, how many had to
//!    be recomputed, and how expensive recovery was.
//!
//! Recovery always runs with **Eager Persistency** (repairs are flushed
//! and fenced) so that a crash during recovery cannot lose progress —
//! the forward-progress argument of Section III-E.

use crate::checksum::{ChecksumKind, RunningChecksum};
use crate::table::ChecksumTable;
use lp_sim::core::CoreCtx;
use lp_sim::mem::{PArray, Scalar};

/// Counters describing one recovery pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Regions whose checksum was verified.
    pub regions_checked: u64,
    /// Regions found inconsistent (checksum mismatch or never written).
    pub regions_inconsistent: u64,
    /// Regions *recomputed* — rung 2/3 of the escalation ladder: the
    /// region's values were re-derived (from inputs or by EP re-execution)
    /// and re-persisted eagerly.
    pub recomputed_regions: u64,
    /// Lines *repaired* in place — rung 1: reconstructed from the region's
    /// XOR parity plus its surviving lines and re-verified, without
    /// recomputing anything.
    pub repaired_lines: u64,
    /// Rung-1 attempts that failed (unrepairable burst, partial line
    /// ownership, missing checksum, or a reconstruction that did not
    /// re-verify). Each failure precedes an escalation.
    pub repair_failures: u64,
    /// Transitions down the ladder: a region that rung 1 could not fix
    /// and had to fall through to recompute / re-execution.
    pub escalations: u64,
    /// Regions rebuilt because their lines intersected poisoned (media
    /// fault) NVMM — the checksum verdict was never trusted for these.
    pub regions_quarantined: u64,
    /// Cycles spent in recovery (filled by the kernel harness).
    pub cycles: u64,
}

impl RecoveryStats {
    /// Merge another pass into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.regions_checked += other.regions_checked;
        self.regions_inconsistent += other.regions_inconsistent;
        self.recomputed_regions += other.recomputed_regions;
        self.repaired_lines += other.repaired_lines;
        self.repair_failures += other.repair_failures;
        self.escalations += other.escalations;
        self.regions_quarantined += other.regions_quarantined;
        self.cycles += other.cycles;
    }
}

/// Whether any line backing elements `[start, start + count)` of `arr` is
/// in `poisoned` (a sorted list from
/// [`lp_sim::memsys::MemSystem::poisoned_lines`]). Quarantined ranges must
/// be rebuilt by recomputation regardless of what their checksums say:
/// poison reads as a fixed pattern, and a pattern can collide with a weak
/// code.
pub fn range_poisoned<T: Scalar>(
    poisoned: &[lp_sim::addr::LineAddr],
    arr: PArray<T>,
    start: usize,
    count: usize,
) -> bool {
    if poisoned.is_empty() || count == 0 {
        return false;
    }
    arr.lines_of_range(start, count)
        .any(|line| poisoned.binary_search(&line).is_ok())
}

/// Recompute the checksum of region values read through the timed context
/// and compare it with the stored table entry for `key`.
///
/// The values are the elements `indices` of `arr`, folded in the same
/// order normal execution folded them — checksum codes need not be
/// commutative, so order is part of the contract.
///
/// Returns `false` when the entry was never written (the sentinel case of
/// Section IV: the region may not have been reached before the failure).
pub fn region_consistent<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    table: &ChecksumTable,
    key: usize,
    kind: ChecksumKind,
    arr: PArray<T>,
    indices: impl Iterator<Item = usize>,
) -> bool {
    let mut ck = RunningChecksum::new(kind);
    let ops = kind.cost_ops();
    // Coalesce consecutive indices into runs and dispatch each run as one
    // batched load-fold — the per-element load/fold/compute order (and so
    // every cycle and checksum step) is identical to the element-at-a-time
    // loop; kernels' blocked iterators are long contiguous runs in disguise.
    let mut run: Option<(usize, usize)> = None; // (start, len)
    for i in indices {
        match run {
            Some((start, len)) if start + len == i => run = Some((start, len + 1)),
            Some((start, len)) => {
                ctx.load_fold(arr, start, len, ops, |v: T| ck.update(v.to_bits64()));
                run = Some((i, 1));
            }
            None => run = Some((i, 1)),
        }
    }
    if let Some((start, len)) = run {
        ctx.load_fold(arr, start, len, ops, |v: T| ck.update(v.to_bits64()));
    }
    table.matches(ctx, key, ck.value())
}

/// Recompute a checksum over values produced by a closure (for regions
/// whose values span several arrays or need address arithmetic).
pub fn recompute_checksum(kind: ChecksumKind, feed: impl FnOnce(&mut RunningChecksum)) -> u64 {
    let mut ck = RunningChecksum::new(kind);
    feed(&mut ck);
    ck.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeHandles};
    use lp_sim::config::MachineConfig;
    use lp_sim::machine::Machine;
    use lp_sim::prelude::CrashTrigger;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn consistent_region_verifies_after_drain() {
        let mut m = machine();
        let arr = m.alloc::<f64>(32).unwrap();
        let h = SchemeHandles::alloc(&mut m, Scheme::lazy_default(), 4, 1, 0).unwrap();
        let tp = h.thread(0);
        {
            let mut ctx = m.ctx(0);
            let mut rs = tp.begin(&mut ctx, 0);
            for i in 0..32 {
                tp.store(&mut ctx, &mut rs, arr, i, (i * 3) as f64);
            }
            tp.commit(&mut ctx, rs);
        }
        m.drain_caches();
        let mut ctx = m.ctx(0);
        assert!(region_consistent(
            &mut ctx,
            &h.table,
            0,
            crate::checksum::ChecksumKind::Modular,
            arr,
            0..32
        ));
    }

    #[test]
    fn crashed_region_fails_verification() {
        let mut m = machine();
        let arr = m.alloc::<f64>(32).unwrap();
        let h = SchemeHandles::alloc(&mut m, Scheme::lazy_default(), 4, 1, 0).unwrap();
        let tp = h.thread(0);
        m.set_crash_trigger(CrashTrigger::AfterMemOps(10));
        let mut plans = m.plans();
        plans[0].region(move |ctx| {
            let mut rs = tp.begin(ctx, 0);
            for i in 0..32 {
                tp.store(ctx, &mut rs, arr, i, (i * 3) as f64);
            }
            tp.commit(ctx, rs);
        });
        assert_eq!(m.run(plans), lp_sim::machine::Outcome::Crashed);
        let mut ctx = m.ctx(0);
        assert!(
            !region_consistent(
                &mut ctx,
                &h.table,
                0,
                crate::checksum::ChecksumKind::Modular,
                arr,
                0..32
            ),
            "nothing persisted, so the region must verify as inconsistent"
        );
    }

    #[test]
    fn verification_order_matters_for_adler() {
        let mut m = machine();
        let arr = m.alloc::<f64>(4).unwrap();
        let h = SchemeHandles::alloc(
            &mut m,
            Scheme::Lazy(crate::checksum::ChecksumKind::Adler32),
            2,
            1,
            0,
        )
        .unwrap();
        let tp = h.thread(0);
        {
            let mut ctx = m.ctx(0);
            let mut rs = tp.begin(&mut ctx, 0);
            for i in 0..4 {
                tp.store(&mut ctx, &mut rs, arr, i, (i + 1) as f64);
            }
            tp.commit(&mut ctx, rs);
        }
        m.drain_caches();
        let mut ctx = m.ctx(0);
        let kind = crate::checksum::ChecksumKind::Adler32;
        assert!(region_consistent(&mut ctx, &h.table, 0, kind, arr, 0..4));
        assert!(
            !region_consistent(&mut ctx, &h.table, 0, kind, arr, (0..4).rev()),
            "feeding values in the wrong order must not verify"
        );
    }

    #[test]
    fn recovery_stats_merge() {
        let mut a = RecoveryStats {
            regions_checked: 2,
            regions_inconsistent: 1,
            recomputed_regions: 1,
            repaired_lines: 2,
            repair_failures: 1,
            escalations: 1,
            regions_quarantined: 1,
            cycles: 100,
        };
        let b = RecoveryStats {
            regions_checked: 3,
            regions_inconsistent: 0,
            recomputed_regions: 0,
            repaired_lines: 1,
            repair_failures: 0,
            escalations: 0,
            regions_quarantined: 2,
            cycles: 50,
        };
        a.merge(&b);
        assert_eq!(a.regions_checked, 5);
        assert_eq!(a.regions_quarantined, 3);
        assert_eq!(a.repaired_lines, 3);
        assert_eq!(a.repair_failures, 1);
        assert_eq!(a.escalations, 1);
        assert_eq!(a.cycles, 150);
    }

    #[test]
    fn recompute_checksum_closure_form() {
        let kind = crate::checksum::ChecksumKind::Modular;
        let v = recompute_checksum(kind, |ck| {
            ck.update(1);
            ck.update(2);
        });
        let mut ck = RunningChecksum::new(kind);
        ck.update(1);
        ck.update(2);
        assert_eq!(v, ck.value());
    }
}

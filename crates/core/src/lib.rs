//! # lp-core — the Lazy Persistency runtime
//!
//! Reproduction of the software technique from *"Lazy Persistency: A
//! High-Performing and Write-Efficient Software Persistency Technique"*
//! (Alshboul, Tuck, Solihin — ISCA 2018).
//!
//! Lazy Persistency (LP) makes data in non-volatile main memory crash-
//! recoverable **without** cache-line flushes, persist barriers, or
//! logging. A program is split into associative *LP regions*; each region
//! folds every value it stores into a software [checksum](checksum) and
//! writes the checksum to a standalone persistent [table](table) — all with
//! plain stores that reach NVMM through natural cache evictions. After a
//! crash, [recovery](recovery) recomputes each region's checksum from the
//! surviving data; mismatching regions are recomputed with Eager
//! Persistency ([ep]) to guarantee forward progress.
//!
//! The crate also implements the baselines the paper compares against:
//! flush-at-region-end *EagerRecompute* ([ep]) and durable transactions
//! with write-ahead logging ([wal]), plus a uniform per-region API
//! ([scheme]) so each kernel is written once and runs under any scheme.
//!
//! # Example: one LP region, a crash, and detection
//!
//! ```
//! use lp_sim::prelude::*;
//! use lp_core::prelude::*;
//!
//! let mut m = Machine::new(MachineConfig::default().with_cores(1).with_nvmm_bytes(1 << 20));
//! let out = m.alloc::<f64>(64).unwrap();
//! let handles = SchemeHandles::alloc(&mut m, Scheme::lazy_default(), 8, 1, 0).unwrap();
//! let tp = handles.thread(0);
//!
//! // Run one region, then crash before anything is written back.
//! let mut plans = m.plans();
//! plans[0].region(move |ctx| {
//!     let mut rs = tp.begin(ctx, 0);
//!     for i in 0..64 {
//!         tp.store(ctx, &mut rs, out, i, (i as f64).sqrt());
//!     }
//!     tp.commit(ctx, rs);
//! });
//! m.set_crash_trigger(CrashTrigger::AfterMemOps(20));
//! assert_eq!(m.run(plans), Outcome::Crashed);
//!
//! // Recovery detects the inconsistent region by checksum mismatch.
//! let mut ctx = m.ctx(0);
//! let consistent = lp_core::recovery::region_consistent(
//!     &mut ctx, &handles.table, 0, ChecksumKind::Modular, out, 0..64);
//! assert!(!consistent);
//! ```

#![deny(missing_docs)]

pub mod checksum;
pub mod ep;
pub mod parity;
pub mod recovery;
pub mod scheme;
pub mod table;
pub mod track;
pub mod wal;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::checksum::{ChecksumKind, RunningChecksum};
    pub use crate::ep::{persist_range, persist_store, EagerCommitter};
    pub use crate::parity::{ParityArena, RepairVerdict};
    pub use crate::recovery::{region_consistent, RecoveryStats};
    pub use crate::scheme::{RegionSession, Scheme, SchemeHandles, ThreadPersist};
    pub use crate::table::ChecksumTable;
    pub use crate::track::{RangeRole, TrackedRange};
    pub use crate::wal::{WalArena, WalTx};
}

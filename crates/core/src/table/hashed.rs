//! The *smaller, collision-prone* checksum-table alternative Section IV
//! weighs against the collision-free design.
//!
//! The paper sizes its table so that `(ii, kk, thread)` keys map to
//! entries collision-free — no locks, ~1% space. The alternative it
//! mentions is a smaller hash table where regions may collide; colliding
//! entries evict each other, which is *safe* (a region whose entry was
//! overwritten verifies as inconsistent and is recomputed — a false
//! negative, never a false positive) but costs recovery work, and a
//! concurrent implementation on real hardware would need per-entry locks.
//! This module implements that alternative so the trade-off is measurable.
//!
//! Each slot stores the full `(key, checksum)` pair (16 bytes), so a
//! collision can never be mistaken for a match.

use lp_sim::core::CoreCtx;
use lp_sim::machine::Machine;
use lp_sim::mem::{OutOfPersistentMemory, PArray};

/// Key sentinel for never-written slots.
const EMPTY_KEY: u64 = u64::MAX;

/// A persistent checksum table smaller than its key space.
///
/// # Examples
///
/// ```
/// use lp_sim::prelude::*;
/// use lp_core::table::hashed::HashedChecksumTable;
///
/// let mut m = Machine::new(MachineConfig::default().with_cores(1).with_nvmm_bytes(1 << 20));
/// let t = HashedChecksumTable::alloc(&mut m, 8).unwrap();
/// let mut ctx = m.ctx(0);
/// t.store(&mut ctx, 42, 0xfeed);
/// assert_eq!(t.load(&mut ctx, 42), Some(0xfeed));
/// // A colliding key evicts the previous entry — detected, never confused.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedChecksumTable {
    /// Interleaved `(key, value)` pairs.
    slots: PArray<u64>,
    nslots: usize,
}

impl HashedChecksumTable {
    /// Allocate a table with `nslots` slots (each 16 bytes), all empty.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(machine: &mut Machine, nslots: usize) -> Result<Self, OutOfPersistentMemory> {
        let slots = machine.alloc::<u64>(2 * nslots.max(1))?;
        let table = HashedChecksumTable {
            slots,
            nslots: nslots.max(1),
        };
        for s in 0..table.nslots {
            machine.poke(slots, 2 * s, EMPTY_KEY);
            machine.poke(slots, 2 * s + 1, 0);
        }
        Ok(table)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.nslots
    }

    /// Whether the table has zero capacity (never true after `alloc`).
    pub fn is_empty(&self) -> bool {
        self.nslots == 0
    }

    /// Space in bytes (the quantity traded against collisions).
    pub fn bytes(&self) -> u64 {
        self.slots.bytes()
    }

    /// Fibonacci-hash a region key onto a slot.
    #[inline]
    pub fn slot_of(&self, key: usize) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.nslots
    }

    /// Timed store: lazily write `(key, value)` into the key's slot,
    /// evicting whatever was there.
    pub fn store(&self, ctx: &mut CoreCtx<'_>, key: usize, value: u64) {
        let s = self.slot_of(key);
        ctx.store(self.slots, 2 * s, key as u64);
        ctx.store(self.slots, 2 * s + 1, value);
    }

    /// Timed load: `Some(value)` only if the slot still holds *this* key.
    pub fn load(&self, ctx: &mut CoreCtx<'_>, key: usize) -> Option<u64> {
        let s = self.slot_of(key);
        let k: u64 = ctx.load(self.slots, 2 * s);
        if k != key as u64 {
            return None;
        }
        Some(ctx.load(self.slots, 2 * s + 1))
    }

    /// Timed comparison against a recomputed checksum. Collisions and
    /// never-written slots report `false` (safe: forces recomputation).
    pub fn matches(&self, ctx: &mut CoreCtx<'_>, key: usize, recomputed: u64) -> bool {
        self.load(ctx, key) == Some(recomputed)
    }

    /// Untimed durable-image read (post-crash inspection).
    pub fn peek(&self, machine: &Machine, key: usize) -> Option<u64> {
        let s = self.slot_of(key);
        if machine.peek(self.slots, 2 * s) != key as u64 {
            return None;
        }
        Some(machine.peek(self.slots, 2 * s + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = machine();
        let t = HashedChecksumTable::alloc(&mut m, 16).unwrap();
        let mut ctx = m.ctx(0);
        t.store(&mut ctx, 3, 111);
        assert_eq!(t.load(&mut ctx, 3), Some(111));
        assert!(t.matches(&mut ctx, 3, 111));
        assert!(!t.matches(&mut ctx, 3, 112));
    }

    #[test]
    fn unwritten_keys_read_none() {
        let mut m = machine();
        let t = HashedChecksumTable::alloc(&mut m, 16).unwrap();
        let mut ctx = m.ctx(0);
        for key in 0..64 {
            assert_eq!(t.load(&mut ctx, key), None);
        }
    }

    #[test]
    fn collision_evicts_but_never_confuses() {
        let mut m = machine();
        // One slot: every key collides.
        let t = HashedChecksumTable::alloc(&mut m, 1).unwrap();
        let mut ctx = m.ctx(0);
        t.store(&mut ctx, 1, 100);
        t.store(&mut ctx, 2, 200);
        // Key 2 wins the slot; key 1 must read as *absent*, not as 200.
        assert_eq!(t.load(&mut ctx, 2), Some(200));
        assert_eq!(t.load(&mut ctx, 1), None, "evicted entry must not match");
        assert!(!t.matches(&mut ctx, 1, 100));
        assert!(!t.matches(&mut ctx, 1, 200));
    }

    #[test]
    fn space_is_smaller_than_collision_free_for_large_key_spaces() {
        let mut m = machine();
        // 1024 possible keys, 64 slots: 16x smaller than 1024 8-byte
        // entries would need, at 2x per-entry width.
        let hashed = HashedChecksumTable::alloc(&mut m, 64).unwrap();
        let free = crate::table::ChecksumTable::alloc(&mut m, 1024).unwrap();
        assert!(hashed.bytes() < free.bytes() / 4);
    }

    #[test]
    fn distinct_keys_spread_over_slots() {
        let mut m = machine();
        let t = HashedChecksumTable::alloc(&mut m, 64).unwrap();
        let used: std::collections::HashSet<usize> = (0..64usize).map(|k| t.slot_of(k)).collect();
        assert!(used.len() > 32, "hash should spread keys: {}", used.len());
    }

    #[test]
    fn lazy_entries_lost_on_crash_like_the_collision_free_table() {
        let mut m = machine();
        let t = HashedChecksumTable::alloc(&mut m, 8).unwrap();
        {
            let mut ctx = m.ctx(0);
            t.store(&mut ctx, 5, 55);
        }
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert_eq!(t.peek(&m, 5), None, "lazy entry lost in crash");
    }
}

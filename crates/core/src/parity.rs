//! Per-region XOR parity lines and the rung-1 *repair* primitives of the
//! recovery escalation ladder.
//!
//! A [`crate::scheme::Scheme::LazyParity`] region maintains, alongside its
//! running checksum, one 64-byte parity line of eight `u64` lanes: every
//! store folds its bit pattern into lane `(addr / 8) % 8` — the word slot
//! the value occupies within its cache line. Because XOR is an involution,
//! recovery can *reconstruct* any single lost line of a committed region:
//! `lost_lane = parity_lane ⊕ XOR(surviving values in that lane)`. The
//! reconstruction is verified against the region checksum before a single
//! byte is written back, so a stale or partially-persisted parity line can
//! never bless wrong data — it merely fails the repair, and recovery
//! escalates to the next rung (region recompute, then EP re-execution).
//!
//! Parity lanes live in a dedicated persistent [`ParityArena`], one line
//! per region key, published *lazily* at region commit exactly like the
//! checksum table (no flushes, no fences in the failure-free path). The
//! arena starts zeroed — the XOR identity — rather than at a sentinel:
//! absence of parity is indistinguishable from wrong parity, and both are
//! rejected by the checksum verification step.
//!
//! One soundness caveat: the verification step is only probative when the
//! region checksum can actually *distinguish* a wrong reconstruction from
//! the committed data — see [`can_certify`]. Two failure shapes matter:
//!
//! * **Tautology.** Under [`ChecksumKind::Parity`] the checksum *is* the
//!   XOR of the eight parity lanes, so any single-line substitution built
//!   from the parity line folds back to the stored checksum by
//!   construction and the check certifies nothing.
//! * **Transfer cancellation.** When the region carries a *second* error —
//!   a silent single-bit flip elsewhere in the region, exactly what the
//!   media fault campaign injects alongside a poison — reconstruction
//!   XORs that flip into the rebuilt line at the same lane/bit position.
//!   A wrapping sum then changes by `+2^b` on one word and `-2^b` on the
//!   other whenever the two original bits disagree: exact cancellation,
//!   a false certificate, and two silently corrupt words (observed as
//!   corrupt states in the crashmc media campaign before Modular was
//!   refused). [`ChecksumKind::ModularParity`]'s XOR half is tautological,
//!   reducing it to Modular.
//!
//! Position-*sensitive* codes detect the transfer pattern deterministically
//! at the region sizes the kernels use: Adler-32's second accumulator
//! weights each byte by position, so the paired `±d` deltas leave a
//! residue `d·Δpos` that cannot vanish mod the prime 65521 while the
//! region is under 64 KiB; CRC-32 is GF(2)-linear and the error polynomial
//! `x^a + x^b` is never divisible by the CRC polynomial below its period
//! (≈ 2^31 bits). Rung 1 therefore refuses to certify under Parity,
//! Modular, and Modular∥Parity (the ladder escalates straight to rung 2),
//! and accepts Adler-32 (size-guarded) and CRC-32 — which is why
//! [`crate::scheme::Scheme::lazy_parity_default`] pairs the parity arena
//! with CRC-32, the "stronger checksum" Section III-D of the paper points
//! anyone worried about false negatives toward.

use crate::checksum::{ChecksumKind, RunningChecksum};
use crate::table::ChecksumTable;
use lp_sim::addr::{Addr, LineAddr};
use lp_sim::core::CoreCtx;
use lp_sim::machine::Machine;
use lp_sim::mem::{OutOfPersistentMemory, PArray, Scalar, WORDS_PER_LINE};

/// Modelled ALU ops for one parity-lane XOR fold.
pub const PARITY_FOLD_OPS: u64 = 1;

/// The parity lane a persistent address folds into: its word slot within
/// its cache line.
#[inline]
pub fn lane_of(addr: Addr) -> usize {
    (addr.0 as usize / 8) % WORDS_PER_LINE
}

/// Whether `kind` can certify a rung-1 parity reconstruction of a region
/// of `region_words` owned 8-byte words (see the module docs for the
/// derivation). Parity is tautological; Modular and Modular∥Parity fall
/// to transfer cancellation against a coexisting single-bit flip;
/// Adler-32 certifies while its byte-position weights stay distinct mod
/// 65521 (regions under 64 KiB); CRC-32 certifies at any region size the
/// simulator can hold.
pub fn can_certify(kind: ChecksumKind, region_words: usize) -> bool {
    match kind {
        ChecksumKind::Parity | ChecksumKind::Modular | ChecksumKind::ModularParity => false,
        ChecksumKind::Adler32 => region_words.saturating_mul(8) < 65_521,
        ChecksumKind::Crc32 => true,
    }
}

/// A persistent arena of per-region XOR parity lines (eight `u64` lanes —
/// one cache line — per region key), zero-initialized.
///
/// The handle is `Copy`; the lanes live in simulated persistent memory and
/// are written through the timed [`CoreCtx`] API so parity persistence is
/// lazy exactly like the data it summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityArena {
    lanes: PArray<u64>,
}

impl ParityArena {
    /// Allocate an arena with one parity line per region key, zeroed in
    /// the durable image (setup-time, untimed).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(machine: &mut Machine, keys: usize) -> Result<Self, OutOfPersistentMemory> {
        let lanes = machine.alloc::<u64>(keys.max(1) * WORDS_PER_LINE)?;
        let arena = ParityArena { lanes };
        arena.reset(machine);
        Ok(arena)
    }

    /// Re-zero every lane (untimed).
    pub fn reset(&self, machine: &mut Machine) {
        for i in 0..self.lanes.len() {
            machine.poke(self.lanes, i, 0);
        }
    }

    /// Number of region keys the arena covers.
    pub fn keys(&self) -> usize {
        self.lanes.len() / WORDS_PER_LINE
    }

    /// Space overhead in bytes.
    pub fn bytes(&self) -> u64 {
        self.lanes.bytes()
    }

    /// The backing persistent array (for address-range tracking).
    pub fn array(&self) -> PArray<u64> {
        self.lanes
    }

    /// Timed lazy store of all eight lanes of `key` (plain stores — the
    /// forward-path publication; persistence happens via natural
    /// eviction).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn store_lanes(&self, ctx: &mut CoreCtx<'_>, key: usize, lanes: &[u64; WORDS_PER_LINE]) {
        for (l, &v) in lanes.iter().enumerate() {
            ctx.store(self.lanes, key * WORDS_PER_LINE + l, v);
        }
    }

    /// Timed load of all eight lanes of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn load_lanes(&self, ctx: &mut CoreCtx<'_>, key: usize) -> [u64; WORDS_PER_LINE] {
        let mut out = [0u64; WORDS_PER_LINE];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = ctx.load(self.lanes, key * WORDS_PER_LINE + l);
        }
        out
    }

    /// Eagerly persist the parity line of `key` (flush + fence). Recovery
    /// uses this *after* the repaired data it summarizes is fenced — the
    /// R8 ordering invariant.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn persist(&self, ctx: &mut CoreCtx<'_>, key: usize) {
        ctx.clflushopt(self.lanes.addr(key * WORDS_PER_LINE));
        ctx.sfence();
    }

    /// Untimed read of the durable lanes (post-crash inspection in tests).
    pub fn peek_lanes(&self, machine: &Machine, key: usize) -> [u64; WORDS_PER_LINE] {
        let mut out = [0u64; WORDS_PER_LINE];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = machine.peek(self.lanes, key * WORDS_PER_LINE + l);
        }
        out
    }
}

/// Verdict of a rung-1 parity-repair attempt on one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairVerdict {
    /// No line of the region is poisoned — nothing for rung 1 to do.
    Clean,
    /// The offending line was reconstructed, re-verified against the
    /// region checksum, and written back durably (scrubbing the poison).
    Repaired,
    /// Reconstruction was impossible (≥ 2 lost lines, partial line
    /// ownership, missing checksum) or failed re-verification. No byte
    /// was written; the caller must escalate to rung 2.
    Failed,
}

/// One region element in checksum fold order: the persistent array it
/// lives in and its index. Regions that interleave several arrays (fft's
/// re/im pair) list their slots across arrays in store order.
pub type Slot<T> = (PArray<T>, usize);

/// The values of one region in fold order, with the elements of a target
/// line replaced by their parity reconstruction. `None` when the region
/// does not fully own the target line's eight words (a partial line can
/// never be scrubbed whole, so reconstruction is refused).
fn reconstruct<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    parity: &ParityArena,
    key: usize,
    slots: &[Slot<T>],
    target: LineAddr,
) -> Option<Vec<u64>> {
    let mut lanes = parity.load_lanes(ctx, key);
    let mut vals = Vec::with_capacity(slots.len());
    let mut owned = 0usize;
    for &(arr, i) in slots {
        let a = arr.addr(i);
        if a.line() == target {
            owned += 1;
            vals.push(None);
        } else {
            let bits = ctx.load(arr, i).to_bits64();
            lanes[lane_of(a)] ^= bits;
            vals.push(Some(bits));
        }
    }
    ctx.compute(slots.len() as u64 * PARITY_FOLD_OPS);
    if owned != WORDS_PER_LINE {
        return None;
    }
    Some(
        slots
            .iter()
            .zip(vals)
            .map(|(&(arr, i), v)| v.unwrap_or_else(|| lanes[lane_of(arr.addr(i))]))
            .collect(),
    )
}

/// Whether `bits`, folded with `kind` in order, matches the *already
/// loaded* stored table entry `stored`.
fn folds_to(kind: ChecksumKind, bits: &[u64], stored: u64) -> bool {
    let mut ck = RunningChecksum::new(kind);
    ck.update_slice(bits);
    ChecksumTable::sanitize_value(ck.value()) == stored
}

/// Durably write the elements of `target` back from `bits` (the full
/// region image): store all eight words, flush the line, fence. A full
/// dirty-line writeback scrubs poison.
fn write_back_line<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    slots: &[Slot<T>],
    bits: &[u64],
    target: LineAddr,
) {
    let mut flush_at = None;
    for (&(arr, i), &b) in slots.iter().zip(bits) {
        if arr.addr(i).line() == target {
            ctx.store(arr, i, T::from_bits64(b));
            flush_at.get_or_insert(arr.addr(i));
        }
    }
    if let Some(a) = flush_at {
        ctx.clflushopt(a);
        ctx.sfence();
    }
}

/// Rung 1 of the escalation ladder for a *poisoned* region: localize the
/// poison to one line, reconstruct that line from parity + surviving
/// lines, re-verify against the region checksum, and only then write it
/// back (flushed + fenced, scrubbing the poison).
///
/// `indices` are the region's elements of `arr` in checksum fold order;
/// `poisoned` is the sorted poisoned-line list from
/// [`lp_sim::memsys::MemSystem::poisoned_lines`]. The repair never reads
/// the poisoned line and never writes anything unless the reconstruction
/// verified — a failed attempt is side-effect free, so escalation (and
/// re-entry after a nested crash) always starts from the untouched image.
#[allow(clippy::too_many_arguments)] // the repair context: handles + region + fault set
pub fn try_poison_repair<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    table: &ChecksumTable,
    parity: &ParityArena,
    key: usize,
    kind: ChecksumKind,
    arr: PArray<T>,
    indices: &[usize],
    poisoned: &[LineAddr],
) -> RepairVerdict {
    let slots: Vec<Slot<T>> = indices.iter().map(|&i| (arr, i)).collect();
    try_poison_repair_slots(ctx, table, parity, key, kind, &slots, poisoned)
}

/// [`try_poison_repair`] for regions whose fold order interleaves several
/// arrays (fft's re/im pair): `slots` lists every region element in
/// checksum fold order.
pub fn try_poison_repair_slots<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    table: &ChecksumTable,
    parity: &ParityArena,
    key: usize,
    kind: ChecksumKind,
    slots: &[Slot<T>],
    poisoned: &[LineAddr],
) -> RepairVerdict {
    debug_assert_eq!(T::SIZE, 8, "parity lanes assume 8-byte elements");
    if poisoned.is_empty() {
        return RepairVerdict::Clean;
    }
    let mut bad: Option<LineAddr> = None;
    let mut bad_count = 0usize;
    let mut prev: Option<LineAddr> = None;
    for &(arr, i) in slots {
        let line = arr.addr(i).line();
        if prev == Some(line) {
            continue;
        }
        prev = Some(line);
        if poisoned.binary_search(&line).is_ok() && bad != Some(line) {
            bad = Some(line);
            bad_count += 1;
        }
    }
    let Some(target) = bad else {
        return RepairVerdict::Clean;
    };
    // A checksum that cannot distinguish a wrong reconstruction from the
    // committed data (tautology or transfer cancellation — module docs)
    // must not bless one: refuse and let the caller escalate.
    if !can_certify(kind, slots.len()) {
        return RepairVerdict::Failed;
    }
    // XOR parity reconstructs exactly one lost line; a burst that took two
    // region lines is beyond rung 1 by construction.
    if bad_count != 1 {
        return RepairVerdict::Failed;
    }
    let Some(stored) = table.load(ctx, key) else {
        return RepairVerdict::Failed;
    };
    let Some(bits) = reconstruct(ctx, parity, key, slots, target) else {
        return RepairVerdict::Failed;
    };
    ctx.compute(slots.len() as u64 * kind.cost_ops());
    if !folds_to(kind, &bits, stored) {
        return RepairVerdict::Failed;
    }
    write_back_line(ctx, slots, &bits, target);
    RepairVerdict::Repaired
}

/// Rung 1 of the escalation ladder for a region that *failed its checksum
/// audit* without any poisoned line (a silent media flip): scan each
/// fully-owned line as the repair candidate, reconstruct it from parity,
/// and accept the first reconstruction under which the region checksum
/// verifies. Returns `true` when a line was repaired (written back
/// durably); `false` means no single-line substitution explains the
/// mismatch and the caller must escalate to rung 2.
pub fn try_mismatch_repair<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    table: &ChecksumTable,
    parity: &ParityArena,
    key: usize,
    kind: ChecksumKind,
    arr: PArray<T>,
    indices: &[usize],
) -> bool {
    let slots: Vec<Slot<T>> = indices.iter().map(|&i| (arr, i)).collect();
    try_mismatch_repair_slots(ctx, table, parity, key, kind, &slots)
}

/// [`try_mismatch_repair`] for regions whose fold order interleaves
/// several arrays.
pub fn try_mismatch_repair_slots<T: Scalar>(
    ctx: &mut CoreCtx<'_>,
    table: &ChecksumTable,
    parity: &ParityArena,
    key: usize,
    kind: ChecksumKind,
    slots: &[Slot<T>],
) -> bool {
    debug_assert_eq!(T::SIZE, 8, "parity lanes assume 8-byte elements");
    // Under a non-certifying checksum a wrong candidate substitution can
    // verify (tautology or transfer cancellation — module docs): accepting
    // one would silently corrupt the region. Refuse; the caller escalates.
    if !can_certify(kind, slots.len()) {
        return false;
    }
    let Some(stored) = table.load(ctx, key) else {
        return false;
    };
    let mut lines: Vec<LineAddr> = slots.iter().map(|&(arr, i)| arr.addr(i).line()).collect();
    lines.sort_unstable();
    lines.dedup();
    for &target in &lines {
        let Some(bits) = reconstruct(ctx, parity, key, slots, target) else {
            continue;
        };
        ctx.compute(slots.len() as u64 * kind.cost_ops());
        if folds_to(kind, &bits, stored) {
            write_back_line(ctx, slots, &bits, target);
            return true;
        }
    }
    false
}

#[cfg(test)]
#[allow(clippy::drop_non_drop)] // drop(ctx) ends the &mut Machine borrow explicitly
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeHandles};
    use lp_sim::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    /// Run one committed LazyParity region of 32 elements and drain.
    fn committed_region(kind: ChecksumKind) -> (Machine, SchemeHandles, PArray<f64>) {
        let mut m = machine();
        let arr = m.alloc::<f64>(32).unwrap();
        let h = SchemeHandles::alloc(&mut m, Scheme::LazyParity(kind), 4, 1, 0).unwrap();
        let tp = h.thread(0);
        {
            let mut ctx = m.ctx(0);
            let mut rs = tp.begin(&mut ctx, 1);
            for i in 0..32 {
                tp.store(&mut ctx, &mut rs, arr, i, (i as f64) * 1.5 - 3.0);
            }
            tp.commit(&mut ctx, rs);
        }
        m.drain_caches();
        (m, h, arr)
    }

    #[test]
    fn arena_lanes_roundtrip_and_start_zeroed() {
        let mut m = machine();
        let p = ParityArena::alloc(&mut m, 4).unwrap();
        assert_eq!(p.keys(), 4);
        assert_eq!(p.peek_lanes(&m, 2), [0u64; 8]);
        let lanes = [1, 2, 3, 4, 5, 6, 7, 8];
        let mut ctx = m.ctx(0);
        p.store_lanes(&mut ctx, 2, &lanes);
        assert_eq!(p.load_lanes(&mut ctx, 2), lanes);
        p.persist(&mut ctx, 2);
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert_eq!(p.peek_lanes(&m, 2), lanes, "persisted lanes survive");
        assert_eq!(p.peek_lanes(&m, 0), [0u64; 8], "others stay zero");
    }

    #[test]
    fn lane_of_is_the_word_slot_within_the_line() {
        for w in 0..8 {
            assert_eq!(lane_of(Addr(640 + w * 8)), w as usize);
        }
    }

    #[test]
    fn poison_repair_reconstructs_bit_identically() {
        for kind in ChecksumKind::ALL {
            let (mut m, h, arr) = committed_region(kind);
            let before: Vec<f64> = (0..32).map(|i| m.peek(arr, i)).collect();
            let line = arr.addr(8).line();
            m.mem_mut().poison_line(line);
            let poisoned = m.mem_mut().poisoned_lines();
            assert_eq!(poisoned.len(), 1);
            let indices: Vec<usize> = (0..32).collect();
            let mut ctx = m.ctx(0);
            let v = try_poison_repair(
                &mut ctx, &h.table, &h.parity, 1, kind, arr, &indices, &poisoned,
            );
            if !can_certify(kind, 32) {
                // The checksum cannot certify an XOR reconstruction
                // (tautology or transfer cancellation): rung 1 must
                // refuse, side-effect free.
                assert_eq!(v, RepairVerdict::Failed, "{kind}");
                drop(ctx);
                assert!(m.mem().has_poisoned_lines(), "{kind}: nothing written");
                continue;
            }
            assert_eq!(v, RepairVerdict::Repaired, "{kind}");
            drop(ctx);
            assert!(!m.mem().has_poisoned_lines(), "{kind}: poison scrubbed");
            let after: Vec<f64> = (0..32).map(|i| m.peek(arr, i)).collect();
            assert_eq!(
                before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{kind}: reconstruction must be bit-identical"
            );
        }
    }

    #[test]
    fn burst_of_two_region_lines_fails_without_side_effects() {
        let (mut m, h, arr) = committed_region(ChecksumKind::Crc32);
        m.mem_mut().poison_line(arr.addr(0).line());
        m.mem_mut().poison_line(arr.addr(8).line());
        let poisoned = m.mem_mut().poisoned_lines();
        let indices: Vec<usize> = (0..32).collect();
        let mut ctx = m.ctx(0);
        let v = try_poison_repair(
            &mut ctx,
            &h.table,
            &h.parity,
            1,
            ChecksumKind::Crc32,
            arr,
            &indices,
            &poisoned,
        );
        assert_eq!(v, RepairVerdict::Failed, "XOR cannot reconstruct 2 lines");
        drop(ctx);
        assert_eq!(
            m.mem().poisoned_lines().len(),
            2,
            "failed repair writes nothing"
        );
    }

    #[test]
    fn missing_checksum_or_unpersisted_parity_refuses_repair() {
        let (mut m, h, arr) = committed_region(ChecksumKind::Crc32);
        m.mem_mut().poison_line(arr.addr(16).line());
        let poisoned = m.mem_mut().poisoned_lines();
        let indices: Vec<usize> = (0..32).collect();
        // Key 3 was never committed: no checksum entry, repair refuses.
        {
            let mut ctx = m.ctx(0);
            let v = try_poison_repair(
                &mut ctx,
                &h.table,
                &h.parity,
                3,
                ChecksumKind::Crc32,
                arr,
                &indices,
                &poisoned,
            );
            assert_eq!(v, RepairVerdict::Failed);
        }
        // Wrong parity (zeroed arena under a real checksum): the
        // reconstruction exists but fails re-verification — fail-safe.
        h.parity.reset(&mut m);
        let mut ctx = m.ctx(0);
        let v = try_poison_repair(
            &mut ctx,
            &h.table,
            &h.parity,
            1,
            ChecksumKind::Crc32,
            arr,
            &indices,
            &poisoned,
        );
        assert_eq!(v, RepairVerdict::Failed, "stale parity is self-checking");
    }

    #[test]
    fn clean_region_reports_clean() {
        // Deliberately a non-certifying kind: a region with no poisoned
        // line must report Clean (not Failed) under *any* checksum, so
        // per-region callers like cholesky can keep scanning.
        let (mut m, h, arr) = committed_region(ChecksumKind::Modular);
        let indices: Vec<usize> = (0..32).collect();
        let mut ctx = m.ctx(0);
        let v = try_poison_repair(
            &mut ctx,
            &h.table,
            &h.parity,
            1,
            ChecksumKind::Modular,
            arr,
            &indices,
            &[],
        );
        assert_eq!(v, RepairVerdict::Clean);
    }

    #[test]
    fn mismatch_repair_localizes_a_silent_flip() {
        for kind in ChecksumKind::ALL {
            let (mut m, h, arr) = committed_region(kind);
            let before: Vec<u64> = (0..32).map(|i| m.peek(arr, i).to_bits()).collect();
            // Silently corrupt one word of line 1 in the durable image.
            let garbled = f64::from_bits(before[11] ^ (1 << 17));
            m.poke(arr, 11, garbled);
            let indices: Vec<usize> = (0..32).collect();
            let mut ctx = m.ctx(0);
            assert!(
                !crate::recovery::region_consistent(
                    &mut ctx,
                    &h.table,
                    1,
                    kind,
                    arr,
                    indices.iter().copied()
                ),
                "{kind}: the flip must be detectable"
            );
            let repaired =
                try_mismatch_repair(&mut ctx, &h.table, &h.parity, 1, kind, arr, &indices);
            if !can_certify(kind, 32) {
                assert!(!repaired, "{kind}: non-certifying checksum refused");
                drop(ctx);
                let after: Vec<u64> = (0..32).map(|i| m.peek(arr, i).to_bits()).collect();
                assert_eq!(after[11], garbled.to_bits(), "{kind}: nothing written");
                continue;
            }
            assert!(repaired, "{kind}: single-line flip is repairable");
            drop(ctx);
            let after: Vec<u64> = (0..32).map(|i| m.peek(arr, i).to_bits()).collect();
            assert_eq!(before, after, "{kind}: flip repaired bit-identically");
        }
    }

    /// The soundness caveat from the module docs, demonstrated: under a
    /// pure-parity checksum a *wrong* single-line substitution still folds
    /// to the stored value, so were rung 1 to run it would bless garbage.
    /// This pins both the tautology and the refusal that defuses it.
    #[test]
    fn parity_checksum_cannot_certify_its_own_reconstruction() {
        let (mut m, h, arr) = committed_region(ChecksumKind::Parity);
        // Tear the region: corrupt words on *two* different lines, which no
        // single-line repair can explain.
        let a = m.peek(arr, 3).to_bits();
        let b = m.peek(arr, 12).to_bits();
        m.poke(arr, 3, f64::from_bits(a ^ 0xdead));
        m.poke(arr, 12, f64::from_bits(b ^ 0xbeef));
        let indices: Vec<usize> = (0..32).collect();
        let mut ctx = m.ctx(0);
        // The tautology itself: substituting line 0 from parity makes the
        // XOR fold match the stored checksum even though line 1 is corrupt.
        let stored = h.table.load(&mut ctx, 1).unwrap();
        let bits = reconstruct(
            &mut ctx,
            &h.parity,
            1,
            &to_slots(arr, &indices),
            arr.addr(0).line(),
        )
        .unwrap();
        assert!(
            folds_to(ChecksumKind::Parity, &bits, stored),
            "XOR fold of any parity substitution collapses to the lane XOR"
        );
        // The refusal that keeps the ladder sound.
        assert!(!try_mismatch_repair(
            &mut ctx,
            &h.table,
            &h.parity,
            1,
            ChecksumKind::Parity,
            arr,
            &indices
        ));
    }

    fn to_slots(arr: PArray<f64>, indices: &[usize]) -> Vec<Slot<f64>> {
        indices.iter().map(|&i| (arr, i)).collect()
    }

    /// The transfer-cancellation caveat from the module docs, demonstrated:
    /// when the region also carries a silent single-bit flip, the
    /// reconstruction of a poisoned line XORs that flip into the rebuilt
    /// word at the same lane — and a wrapping-sum checksum cannot tell
    /// (`+2^b` on the flipped word, `-2^b` on the rebuilt one, when the
    /// two original bits disagree). Were rung 1 to certify under Modular
    /// it would bless two corrupt words; `can_certify` refuses instead.
    #[test]
    fn modular_checksum_collides_with_a_transferred_flip() {
        let (mut m, h, arr) = committed_region(ChecksumKind::Modular);
        // Indices 3 and 11 are one full line apart: same parity lane.
        let w_flip = m.peek(arr, 11).to_bits();
        let w_target = m.peek(arr, 3).to_bits();
        let b = (0..64)
            .find(|&b| (w_flip >> b) & 1 != (w_target >> b) & 1)
            .unwrap();
        m.poke(arr, 11, f64::from_bits(w_flip ^ (1u64 << b)));
        let line = arr.addr(0).line();
        m.mem_mut().poison_line(line);
        let poisoned = m.mem_mut().poisoned_lines();
        let indices: Vec<usize> = (0..32).collect();
        let mut ctx = m.ctx(0);
        let stored = h.table.load(&mut ctx, 1).unwrap();
        let bits = reconstruct(&mut ctx, &h.parity, 1, &to_slots(arr, &indices), line).unwrap();
        assert_eq!(
            bits[3],
            w_target ^ (1u64 << b),
            "the flip transfers into the rebuilt line"
        );
        assert!(
            folds_to(ChecksumKind::Modular, &bits, stored),
            "the wrapping sum collides on the paired ±2^b deltas"
        );
        assert!(!can_certify(ChecksumKind::Modular, indices.len()));
        let v = try_poison_repair(
            &mut ctx,
            &h.table,
            &h.parity,
            1,
            ChecksumKind::Modular,
            arr,
            &indices,
            &poisoned,
        );
        assert_eq!(v, RepairVerdict::Failed, "refused, not falsely repaired");
    }

    #[test]
    fn mismatch_repair_refuses_two_corrupt_lines() {
        let (mut m, h, arr) = committed_region(ChecksumKind::Crc32);
        let a = m.peek(arr, 3);
        let b = m.peek(arr, 12);
        m.poke(arr, 3, a + 1.0);
        m.poke(arr, 12, b + 1.0);
        let indices: Vec<usize> = (0..32).collect();
        let mut ctx = m.ctx(0);
        assert!(
            !try_mismatch_repair(
                &mut ctx,
                &h.table,
                &h.parity,
                1,
                ChecksumKind::Crc32,
                arr,
                &indices
            ),
            "two corrupt lines exceed single-parity repair"
        );
    }
}

//! Software error-detection codes for Lazy Persistency regions
//! (Section III-D of the paper).
//!
//! A Lazy Persistency region computes a running checksum over every value it
//! stores and writes the final checksum to a persistent table. After a
//! failure, recovery recomputes the checksum from whatever data survived in
//! NVMM; a mismatch means some store (or the checksum itself) did not
//! persist, and the region must be recomputed.
//!
//! The paper evaluates four codes, all implemented here, plus a CRC-32
//! extension:
//!
//! * **Parity** — XOR of all value bit patterns: cheapest, weakest.
//! * **Modular** — wrapping sum of all value bit patterns: the paper's
//!   default (accuracy ≈ Adler-32 at a fraction of the cost).
//! * **Adler-32** — the zlib checksum over the value bytes: strongest of
//!   the paper's single codes, noticeably more expensive.
//! * **Modular ∥ Parity** — both in parallel for a lower false-negative
//!   rate at higher cost (evaluated in Figure 15(b)).
//! * **CRC-32** — the "stronger checksum" option Section III-D points
//!   anyone worried about false negatives toward.

pub mod accuracy;

/// Which error-detection code a region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChecksumKind {
    /// XOR of all stored values.
    Parity,
    /// Wrapping sum of all stored values (paper default).
    Modular,
    /// Adler-32 over the bytes of all stored values.
    Adler32,
    /// Modular and Parity computed in parallel.
    ModularParity,
    /// CRC-32 (reflected, polynomial `0xEDB88320`) over the value bytes —
    /// a stronger code than any the paper evaluates, kept as the
    /// "anyone concerned with false negatives can employ a stronger
    /// checksum" extension Section III-D invites.
    Crc32,
}

impl ChecksumKind {
    /// All kinds, in the order Figure 15(b) sweeps them (plus the CRC-32
    /// extension).
    pub const ALL: [ChecksumKind; 5] = [
        ChecksumKind::Modular,
        ChecksumKind::Parity,
        ChecksumKind::Adler32,
        ChecksumKind::ModularParity,
        ChecksumKind::Crc32,
    ];

    /// Modelled ALU operations per `update` call, charged to the simulated
    /// core so checksum choice shows up in execution time as in Figure
    /// 15(b): parity/modular are single ops, Adler-32 walks the value's
    /// bytes (amortized across SIMD lanes), and the parallel combination
    /// is the costliest (matching the paper's 3.4% vs Adler's ~1%).
    pub fn cost_ops(self) -> u64 {
        match self {
            ChecksumKind::Parity => 1,
            ChecksumKind::Modular => 1,
            ChecksumKind::Adler32 => 6,
            ChecksumKind::ModularParity => 10,
            ChecksumKind::Crc32 => 8,
        }
    }

    /// Short display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumKind::Parity => "parity",
            ChecksumKind::Modular => "modular",
            ChecksumKind::Adler32 => "adler32",
            ChecksumKind::ModularParity => "modular+parity",
            ChecksumKind::Crc32 => "crc32",
        }
    }
}

impl std::fmt::Display for ChecksumKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const ADLER_MOD: u32 = 65_521;

/// Reflected CRC-32 lookup table (polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// A running checksum over the 64-bit bit patterns of stored values.
///
/// # Examples
///
/// ```
/// use lp_core::checksum::{ChecksumKind, RunningChecksum};
/// let mut ck = RunningChecksum::new(ChecksumKind::Modular);
/// ck.update(1.0f64.to_bits());
/// ck.update(2.0f64.to_bits());
/// let saved = ck.value();
///
/// // Recomputing over the same values matches...
/// let mut again = RunningChecksum::new(ChecksumKind::Modular);
/// again.update(1.0f64.to_bits());
/// again.update(2.0f64.to_bits());
/// assert_eq!(again.value(), saved);
///
/// // ...but a lost store does not.
/// let mut lost = RunningChecksum::new(ChecksumKind::Modular);
/// lost.update(1.0f64.to_bits());
/// lost.update(0.0f64.to_bits());
/// assert_ne!(lost.value(), saved);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunningChecksum {
    /// See [`ChecksumKind::Parity`].
    Parity {
        /// Running XOR.
        x: u64,
    },
    /// See [`ChecksumKind::Modular`].
    Modular {
        /// Running wrapping sum.
        sum: u64,
    },
    /// See [`ChecksumKind::Adler32`].
    Adler32 {
        /// Adler `a` accumulator.
        a: u32,
        /// Adler `b` accumulator.
        b: u32,
    },
    /// See [`ChecksumKind::ModularParity`].
    ModularParity {
        /// Running wrapping sum.
        sum: u64,
        /// Running XOR.
        x: u64,
    },
    /// See [`ChecksumKind::Crc32`].
    Crc32 {
        /// Running CRC register (pre-inversion).
        crc: u32,
    },
}

impl RunningChecksum {
    /// Fresh checksum of the given kind (call at region entry — the
    /// `ResetCheckSum()` of Figure 8).
    pub fn new(kind: ChecksumKind) -> Self {
        match kind {
            ChecksumKind::Parity => RunningChecksum::Parity { x: 0 },
            ChecksumKind::Modular => RunningChecksum::Modular { sum: 0 },
            ChecksumKind::Adler32 => RunningChecksum::Adler32 { a: 1, b: 0 },
            ChecksumKind::ModularParity => RunningChecksum::ModularParity { sum: 0, x: 0 },
            ChecksumKind::Crc32 => RunningChecksum::Crc32 { crc: 0xFFFF_FFFF },
        }
    }

    /// The kind this checksum was created with.
    pub fn kind(&self) -> ChecksumKind {
        match self {
            RunningChecksum::Parity { .. } => ChecksumKind::Parity,
            RunningChecksum::Modular { .. } => ChecksumKind::Modular,
            RunningChecksum::Adler32 { .. } => ChecksumKind::Adler32,
            RunningChecksum::ModularParity { .. } => ChecksumKind::ModularParity,
            RunningChecksum::Crc32 { .. } => ChecksumKind::Crc32,
        }
    }

    /// Fold a stored value's 64-bit pattern into the checksum (the
    /// `UpdateCheckSum()` of Figure 8).
    #[inline]
    pub fn update(&mut self, bits: u64) {
        match self {
            RunningChecksum::Parity { x } => *x ^= bits,
            RunningChecksum::Modular { sum } => *sum = sum.wrapping_add(bits),
            RunningChecksum::Adler32 { a, b } => {
                for byte in bits.to_le_bytes() {
                    *a = (*a + byte as u32) % ADLER_MOD;
                    *b = (*b + *a) % ADLER_MOD;
                }
            }
            RunningChecksum::ModularParity { sum, x } => {
                *sum = sum.wrapping_add(bits);
                *x ^= bits;
            }
            RunningChecksum::Crc32 { crc } => {
                for byte in bits.to_le_bytes() {
                    *crc = (*crc >> 8) ^ CRC_TABLE[((*crc ^ byte as u32) & 0xff) as usize];
                }
            }
        }
    }

    /// The checksum value to persist (the `GetCheckSum()` of Figure 8).
    ///
    /// Single codes fold to 32 bits like the paper's table entries; the
    /// parallel combination packs modular in the low half and parity in
    /// the high half.
    pub fn value(&self) -> u64 {
        match self {
            RunningChecksum::Parity { x } => fold32(*x) as u64,
            RunningChecksum::Modular { sum } => {
                ((*sum as u32).wrapping_add((*sum >> 32) as u32)) as u64
            }
            RunningChecksum::Adler32 { a, b } => (((*b) << 16) | (*a & 0xffff)) as u64,
            RunningChecksum::ModularParity { sum, x } => {
                let m = (*sum as u32).wrapping_add((*sum >> 32) as u32) as u64;
                let p = fold32(*x) as u64;
                (p << 32) | m
            }
            RunningChecksum::Crc32 { crc } => (*crc ^ 0xFFFF_FFFF) as u64,
        }
    }
}

#[inline]
fn fold32(x: u64) -> u32 {
    (x as u32) ^ ((x >> 32) as u32)
}

/// Checksum a slice of `f64` values in one call (recovery-side helper).
///
/// # Examples
///
/// ```
/// use lp_core::checksum::{checksum_f64s, ChecksumKind};
/// let a = checksum_f64s(ChecksumKind::Modular, &[1.0, 2.0, 3.0]);
/// let b = checksum_f64s(ChecksumKind::Modular, &[1.0, 2.0, 3.0]);
/// assert_eq!(a, b);
/// ```
pub fn checksum_f64s(kind: ChecksumKind, values: &[f64]) -> u64 {
    let mut ck = RunningChecksum::new(kind);
    for v in values {
        ck.update(v.to_bits());
    }
    ck.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> impl Iterator<Item = ChecksumKind> {
        ChecksumKind::ALL.into_iter()
    }

    #[test]
    fn deterministic_for_same_sequence() {
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [1u64, 99, 0, u64::MAX, 42] {
                a.update(v);
                b.update(v);
            }
            assert_eq!(a.value(), b.value(), "{kind}");
        }
    }

    #[test]
    fn detects_single_changed_value() {
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [10u64, 20, 30] {
                a.update(v);
            }
            for v in [10u64, 21, 30] {
                b.update(v);
            }
            assert_ne!(a.value(), b.value(), "{kind} missed a changed value");
        }
    }

    #[test]
    fn detects_missing_value_vs_zero() {
        // A lost store typically reads back the old value (often 0).
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [7u64, 8, 9] {
                a.update(v);
            }
            for v in [7u64, 0, 9] {
                b.update(v);
            }
            assert_ne!(a.value(), b.value(), "{kind} missed a dropped value");
        }
    }

    #[test]
    fn parity_is_order_independent_modular_commutative() {
        // Associativity matters: regions may persist out of order, but the
        // *values within one region* are always folded in program order by
        // both normal execution and recovery, so order sensitivity is
        // allowed. Still, parity and modular happen to be commutative:
        let mut a = RunningChecksum::new(ChecksumKind::Modular);
        let mut b = RunningChecksum::new(ChecksumKind::Modular);
        a.update(1);
        a.update(2);
        b.update(2);
        b.update(1);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn adler32_matches_reference_for_known_input() {
        // Adler-32 of "Wikipedia" is 0x11E60398 (well-known test vector).
        // Our updates take u64s, so feed 8 bytes then 1 byte via two
        // updates is not byte-exact; instead verify against a direct
        // byte-level reference implementation on the same u64 stream.
        fn reference(words: &[u64]) -> u64 {
            let (mut a, mut b) = (1u32, 0u32);
            for w in words {
                for byte in w.to_le_bytes() {
                    a = (a + byte as u32) % 65_521;
                    b = (b + a) % 65_521;
                }
            }
            (((b) << 16) | (a & 0xffff)) as u64
        }
        let words = [0x0123_4567_89ab_cdefu64, 42, u64::MAX];
        let mut ck = RunningChecksum::new(ChecksumKind::Adler32);
        for w in words {
            ck.update(w);
        }
        assert_eq!(ck.value(), reference(&words));
    }

    #[test]
    fn modular_parity_packs_both_halves() {
        let mut ck = RunningChecksum::new(ChecksumKind::ModularParity);
        ck.update(5);
        ck.update(9);
        let v = ck.value();
        let mut m = RunningChecksum::new(ChecksumKind::Modular);
        m.update(5);
        m.update(9);
        let mut p = RunningChecksum::new(ChecksumKind::Parity);
        p.update(5);
        p.update(9);
        assert_eq!(v & 0xffff_ffff, m.value());
        assert_eq!(v >> 32, p.value());
    }

    #[test]
    fn parity_misses_duplicate_pair_but_modular_catches_it() {
        // Classic parity weakness: two identical corruptions cancel.
        let good = [3u64, 3, 5];
        let bad = [4u64, 4, 5]; // both elements corrupted identically
        let mut pg = RunningChecksum::new(ChecksumKind::Parity);
        let mut pb = RunningChecksum::new(ChecksumKind::Parity);
        let mut mg = RunningChecksum::new(ChecksumKind::Modular);
        let mut mb = RunningChecksum::new(ChecksumKind::Modular);
        for v in good {
            pg.update(v);
            mg.update(v);
        }
        for v in bad {
            pb.update(v);
            mb.update(v);
        }
        assert_eq!(pg.value(), pb.value(), "parity cancels pairs");
        assert_ne!(mg.value(), mb.value(), "modular does not");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 of the bytes 00..=07 (one little-endian u64).
        let mut ck = RunningChecksum::new(ChecksumKind::Crc32);
        ck.update(u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        // Reference computed with the bitwise definition:
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c ^= b as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
            }
            c ^ 0xFFFF_FFFF
        }
        assert_eq!(ck.value(), reference(&[0, 1, 2, 3, 4, 5, 6, 7]) as u64);
    }

    #[test]
    fn kind_roundtrip_and_cost() {
        for kind in all_kinds() {
            assert_eq!(RunningChecksum::new(kind).kind(), kind);
            assert!(kind.cost_ops() >= 1);
            assert!(!kind.name().is_empty());
        }
        assert!(ChecksumKind::Adler32.cost_ops() > ChecksumKind::Modular.cost_ops());
        assert!(ChecksumKind::ModularParity.cost_ops() > ChecksumKind::Modular.cost_ops());
    }

    #[test]
    fn empty_region_checksums_are_stable() {
        for kind in all_kinds() {
            let a = RunningChecksum::new(kind).value();
            let b = RunningChecksum::new(kind).value();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn helper_matches_manual_loop() {
        let vals = [1.5f64, -2.25, 1e300];
        let mut ck = RunningChecksum::new(ChecksumKind::Adler32);
        for v in vals {
            ck.update(v.to_bits());
        }
        assert_eq!(checksum_f64s(ChecksumKind::Adler32, &vals), ck.value());
    }
}

//! Software error-detection codes for Lazy Persistency regions
//! (Section III-D of the paper).
//!
//! A Lazy Persistency region computes a running checksum over every value it
//! stores and writes the final checksum to a persistent table. After a
//! failure, recovery recomputes the checksum from whatever data survived in
//! NVMM; a mismatch means some store (or the checksum itself) did not
//! persist, and the region must be recomputed.
//!
//! The paper evaluates four codes, all implemented here, plus a CRC-32
//! extension:
//!
//! * **Parity** — XOR of all value bit patterns: cheapest, weakest.
//! * **Modular** — wrapping sum of all value bit patterns: the paper's
//!   default (accuracy ≈ Adler-32 at a fraction of the cost).
//! * **Adler-32** — the zlib checksum over the value bytes: strongest of
//!   the paper's single codes, noticeably more expensive.
//! * **Modular ∥ Parity** — both in parallel for a lower false-negative
//!   rate at higher cost (evaluated in Figure 15(b)).
//! * **CRC-32** — the "stronger checksum" option Section III-D points
//!   anyone worried about false negatives toward.

pub mod accuracy;

/// Which error-detection code a region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChecksumKind {
    /// XOR of all stored values.
    Parity,
    /// Wrapping sum of all stored values (paper default).
    Modular,
    /// Adler-32 over the bytes of all stored values.
    Adler32,
    /// Modular and Parity computed in parallel.
    ModularParity,
    /// CRC-32 (reflected, polynomial `0xEDB88320`) over the value bytes —
    /// a stronger code than any the paper evaluates, kept as the
    /// "anyone concerned with false negatives can employ a stronger
    /// checksum" extension Section III-D invites.
    Crc32,
}

impl ChecksumKind {
    /// All kinds, in the order Figure 15(b) sweeps them (plus the CRC-32
    /// extension).
    pub const ALL: [ChecksumKind; 5] = [
        ChecksumKind::Modular,
        ChecksumKind::Parity,
        ChecksumKind::Adler32,
        ChecksumKind::ModularParity,
        ChecksumKind::Crc32,
    ];

    /// Modelled ALU operations per `update` call, charged to the simulated
    /// core so checksum choice shows up in execution time as in Figure
    /// 15(b): parity/modular are single ops, Adler-32 walks the value's
    /// bytes (amortized across SIMD lanes), and the parallel combination
    /// is the costliest (matching the paper's 3.4% vs Adler's ~1%).
    pub fn cost_ops(self) -> u64 {
        match self {
            ChecksumKind::Parity => 1,
            ChecksumKind::Modular => 1,
            ChecksumKind::Adler32 => 6,
            ChecksumKind::ModularParity => 10,
            ChecksumKind::Crc32 => 8,
        }
    }

    /// Short display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ChecksumKind::Parity => "parity",
            ChecksumKind::Modular => "modular",
            ChecksumKind::Adler32 => "adler32",
            ChecksumKind::ModularParity => "modular+parity",
            ChecksumKind::Crc32 => "crc32",
        }
    }
}

impl std::fmt::Display for ChecksumKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const ADLER_MOD: u32 = 65_521;

/// Reflected CRC-32 lookup table (polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// A running checksum over the 64-bit bit patterns of stored values.
///
/// # Examples
///
/// ```
/// use lp_core::checksum::{ChecksumKind, RunningChecksum};
/// let mut ck = RunningChecksum::new(ChecksumKind::Modular);
/// ck.update(1.0f64.to_bits());
/// ck.update(2.0f64.to_bits());
/// let saved = ck.value();
///
/// // Recomputing over the same values matches...
/// let mut again = RunningChecksum::new(ChecksumKind::Modular);
/// again.update(1.0f64.to_bits());
/// again.update(2.0f64.to_bits());
/// assert_eq!(again.value(), saved);
///
/// // ...but a lost store does not.
/// let mut lost = RunningChecksum::new(ChecksumKind::Modular);
/// lost.update(1.0f64.to_bits());
/// lost.update(0.0f64.to_bits());
/// assert_ne!(lost.value(), saved);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunningChecksum {
    /// See [`ChecksumKind::Parity`].
    Parity {
        /// Running XOR.
        x: u64,
    },
    /// See [`ChecksumKind::Modular`].
    Modular {
        /// Running wrapping sum.
        sum: u64,
    },
    /// See [`ChecksumKind::Adler32`].
    Adler32 {
        /// Adler `a` accumulator.
        a: u32,
        /// Adler `b` accumulator.
        b: u32,
    },
    /// See [`ChecksumKind::ModularParity`].
    ModularParity {
        /// Running wrapping sum.
        sum: u64,
        /// Running XOR.
        x: u64,
    },
    /// See [`ChecksumKind::Crc32`].
    Crc32 {
        /// Running CRC register (pre-inversion).
        crc: u32,
    },
}

impl RunningChecksum {
    /// Fresh checksum of the given kind (call at region entry — the
    /// `ResetCheckSum()` of Figure 8).
    pub fn new(kind: ChecksumKind) -> Self {
        match kind {
            ChecksumKind::Parity => RunningChecksum::Parity { x: 0 },
            ChecksumKind::Modular => RunningChecksum::Modular { sum: 0 },
            ChecksumKind::Adler32 => RunningChecksum::Adler32 { a: 1, b: 0 },
            ChecksumKind::ModularParity => RunningChecksum::ModularParity { sum: 0, x: 0 },
            ChecksumKind::Crc32 => RunningChecksum::Crc32 { crc: 0xFFFF_FFFF },
        }
    }

    /// The kind this checksum was created with.
    pub fn kind(&self) -> ChecksumKind {
        match self {
            RunningChecksum::Parity { .. } => ChecksumKind::Parity,
            RunningChecksum::Modular { .. } => ChecksumKind::Modular,
            RunningChecksum::Adler32 { .. } => ChecksumKind::Adler32,
            RunningChecksum::ModularParity { .. } => ChecksumKind::ModularParity,
            RunningChecksum::Crc32 { .. } => ChecksumKind::Crc32,
        }
    }

    /// Fold a stored value's 64-bit pattern into the checksum (the
    /// `UpdateCheckSum()` of Figure 8).
    #[inline]
    pub fn update(&mut self, bits: u64) {
        match self {
            RunningChecksum::Parity { x } => *x ^= bits,
            RunningChecksum::Modular { sum } => *sum = sum.wrapping_add(bits),
            RunningChecksum::Adler32 { a, b } => {
                for byte in bits.to_le_bytes() {
                    *a = (*a + byte as u32) % ADLER_MOD;
                    *b = (*b + *a) % ADLER_MOD;
                }
            }
            RunningChecksum::ModularParity { sum, x } => {
                *sum = sum.wrapping_add(bits);
                *x ^= bits;
            }
            RunningChecksum::Crc32 { crc } => {
                for byte in bits.to_le_bytes() {
                    *crc = (*crc >> 8) ^ CRC_TABLE[((*crc ^ byte as u32) & 0xff) as usize];
                }
            }
        }
    }

    /// Fold a run of 64-bit patterns into the checksum in one call — the
    /// multi-lane bulk path for recovery-side and audit-side scans.
    ///
    /// Bit-identical to calling [`RunningChecksum::update`] once per word,
    /// including across arbitrary stream splits: the carried state is the
    /// same reduced accumulator either way, so any interleaving of
    /// `update` and `update_slice` calls over the same word sequence
    /// yields the same value.
    ///
    /// * Parity / Modular (and the parallel combination) fold four
    ///   independent u64 lanes and recombine — XOR and wrapping addition
    ///   are associative and commutative mod 2⁶⁴, so recombination is
    ///   exact, not approximate.
    /// * Adler-32 uses SWAR u16-lane prefix sums to get each word's byte
    ///   sum and position-weighted byte sum in a handful of u64 ops, and
    ///   defers the modulo across a chunk: the exact integer accumulators
    ///   stay far below u64 overflow, and one reduction per chunk is
    ///   congruent to the scalar per-byte modulo chain.
    /// * CRC-32's bitwise feedback makes each byte depend on the previous
    ///   register value, so it keeps the serial table walk.
    pub fn update_slice(&mut self, words: &[u64]) {
        match self {
            RunningChecksum::Parity { x } => *x ^= xor_lanes(words),
            RunningChecksum::Modular { sum } => *sum = sum.wrapping_add(sum_lanes(words)),
            RunningChecksum::Adler32 { a, b } => adler_bulk(a, b, words),
            RunningChecksum::ModularParity { sum, x } => {
                *sum = sum.wrapping_add(sum_lanes(words));
                *x ^= xor_lanes(words);
            }
            RunningChecksum::Crc32 { crc } => {
                for &w in words {
                    for byte in w.to_le_bytes() {
                        *crc = (*crc >> 8) ^ CRC_TABLE[((*crc ^ byte as u32) & 0xff) as usize];
                    }
                }
            }
        }
    }

    /// The checksum value to persist (the `GetCheckSum()` of Figure 8).
    ///
    /// Single codes fold to 32 bits like the paper's table entries; the
    /// parallel combination packs modular in the low half and parity in
    /// the high half.
    pub fn value(&self) -> u64 {
        match self {
            RunningChecksum::Parity { x } => fold32(*x) as u64,
            RunningChecksum::Modular { sum } => {
                ((*sum as u32).wrapping_add((*sum >> 32) as u32)) as u64
            }
            RunningChecksum::Adler32 { a, b } => (((*b) << 16) | (*a & 0xffff)) as u64,
            RunningChecksum::ModularParity { sum, x } => {
                let m = (*sum as u32).wrapping_add((*sum >> 32) as u32) as u64;
                let p = fold32(*x) as u64;
                (p << 32) | m
            }
            RunningChecksum::Crc32 { crc } => (*crc ^ 0xFFFF_FFFF) as u64,
        }
    }
}

#[inline]
fn fold32(x: u64) -> u32 {
    (x as u32) ^ ((x >> 32) as u32)
}

/// XOR of all words, accumulated in four independent u64 lanes. XOR is
/// associative and commutative, so lane recombination is exact.
fn xor_lanes(words: &[u64]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = words.chunks_exact(4);
    for c in chunks.by_ref() {
        lanes[0] ^= c[0];
        lanes[1] ^= c[1];
        lanes[2] ^= c[2];
        lanes[3] ^= c[3];
    }
    let mut x = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
    for &w in chunks.remainder() {
        x ^= w;
    }
    x
}

/// Wrapping sum of all words in four independent u64 lanes — wrapping
/// addition is associative and commutative mod 2⁶⁴, so this matches the
/// sequential sum exactly.
fn sum_lanes(words: &[u64]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = words.chunks_exact(4);
    for c in chunks.by_ref() {
        lanes[0] = lanes[0].wrapping_add(c[0]);
        lanes[1] = lanes[1].wrapping_add(c[1]);
        lanes[2] = lanes[2].wrapping_add(c[2]);
        lanes[3] = lanes[3].wrapping_add(c[3]);
    }
    let mut sum = lanes[0]
        .wrapping_add(lanes[1])
        .wrapping_add(lanes[2])
        .wrapping_add(lanes[3]);
    for &w in chunks.remainder() {
        sum = sum.wrapping_add(w);
    }
    sum
}

/// Words per deferred-modulo Adler chunk. Between reductions `a` grows by
/// at most 2040 per word and `b` by `8·a + 9180`, so after `K` words
/// `b ≲ 8160·K² + 5.4e5·K`; at `K = 2²⁰` that is ≈ 9×10¹⁵, five hundred
/// times under `u64::MAX`.
const ADLER_CHUNK_WORDS: usize = 1 << 20;

/// Adler-32 over a run of little-endian u64 words with per-word SWAR byte
/// sums and chunk-deferred modulo. Exactly congruent to the per-byte
/// scalar chain: every addition is exact in u64 within a chunk, and the
/// modulo is a ring homomorphism, so reducing once per chunk lands on the
/// same residues the step-by-step reduction keeps.
fn adler_bulk(a: &mut u32, b: &mut u32, words: &[u64]) {
    let (mut au, mut bu) = (u64::from(*a), u64::from(*b));
    for chunk in words.chunks(ADLER_CHUNK_WORDS) {
        for &w in chunk {
            let (s1, ws) = adler_word_sums(w);
            bu += 8 * au + ws;
            au += s1;
        }
        au %= u64::from(ADLER_MOD);
        bu %= u64::from(ADLER_MOD);
    }
    *a = au as u32;
    *b = bu as u32;
}

/// SWAR byte sums of one little-endian word: `(Σ dᵢ, Σ (8-i)·dᵢ)` for
/// bytes `d₀..d₇` in feed order (least-significant first — the order
/// [`RunningChecksum::update`] walks `to_le_bytes`).
///
/// Even/odd bytes are spread into u16 lanes; multiplying by
/// `0x0001_0001_0001_0001` turns each lane into a prefix sum (lane sums
/// stay ≤ 4·255, so no carry crosses lanes), the top lane is the plain
/// byte sum, and the sum of all four lanes is `Σ (4-i)·vᵢ` — from which
/// both weighted sums fall out:
/// even positions `2i` have weight `8-2i = 2(4-i)`, odd positions `2i+1`
/// have weight `7-2i = 2(4-i) - 1`.
#[inline]
fn adler_word_sums(w: u64) -> (u64, u64) {
    const LO_BYTES: u64 = 0x00FF_00FF_00FF_00FF;
    const LANE_ONES: u64 = 0x0001_0001_0001_0001;
    let even = w & LO_BYTES;
    let odd = (w >> 8) & LO_BYTES;
    let pe = even.wrapping_mul(LANE_ONES);
    let po = odd.wrapping_mul(LANE_ONES);
    let se = pe >> 48; // Σ even bytes
    let so = po >> 48; // Σ odd bytes
    let s4e = sum_u16_lanes(pe); // Σ (4-i)·evenᵢ
    let s4o = sum_u16_lanes(po); // Σ (4-i)·oddᵢ
    (se + so, 2 * s4e + 2 * s4o - so)
}

#[inline]
fn sum_u16_lanes(x: u64) -> u64 {
    (x & 0xFFFF) + ((x >> 16) & 0xFFFF) + ((x >> 32) & 0xFFFF) + (x >> 48)
}

/// Checksum a slice of `f64` values in one call (recovery-side helper).
///
/// # Examples
///
/// ```
/// use lp_core::checksum::{checksum_f64s, ChecksumKind};
/// let a = checksum_f64s(ChecksumKind::Modular, &[1.0, 2.0, 3.0]);
/// let b = checksum_f64s(ChecksumKind::Modular, &[1.0, 2.0, 3.0]);
/// assert_eq!(a, b);
/// ```
pub fn checksum_f64s(kind: ChecksumKind, values: &[f64]) -> u64 {
    let mut ck = RunningChecksum::new(kind);
    // Stage bit patterns through a stack buffer so the u64-lane bulk path
    // does the folding without a heap allocation.
    let mut buf = [0u64; 256];
    for chunk in values.chunks(buf.len()) {
        for (slot, v) in buf.iter_mut().zip(chunk) {
            *slot = v.to_bits();
        }
        ck.update_slice(&buf[..chunk.len()]);
    }
    ck.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> impl Iterator<Item = ChecksumKind> {
        ChecksumKind::ALL.into_iter()
    }

    #[test]
    fn deterministic_for_same_sequence() {
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [1u64, 99, 0, u64::MAX, 42] {
                a.update(v);
                b.update(v);
            }
            assert_eq!(a.value(), b.value(), "{kind}");
        }
    }

    #[test]
    fn detects_single_changed_value() {
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [10u64, 20, 30] {
                a.update(v);
            }
            for v in [10u64, 21, 30] {
                b.update(v);
            }
            assert_ne!(a.value(), b.value(), "{kind} missed a changed value");
        }
    }

    #[test]
    fn detects_missing_value_vs_zero() {
        // A lost store typically reads back the old value (often 0).
        for kind in all_kinds() {
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for v in [7u64, 8, 9] {
                a.update(v);
            }
            for v in [7u64, 0, 9] {
                b.update(v);
            }
            assert_ne!(a.value(), b.value(), "{kind} missed a dropped value");
        }
    }

    #[test]
    fn parity_is_order_independent_modular_commutative() {
        // Associativity matters: regions may persist out of order, but the
        // *values within one region* are always folded in program order by
        // both normal execution and recovery, so order sensitivity is
        // allowed. Still, parity and modular happen to be commutative:
        let mut a = RunningChecksum::new(ChecksumKind::Modular);
        let mut b = RunningChecksum::new(ChecksumKind::Modular);
        a.update(1);
        a.update(2);
        b.update(2);
        b.update(1);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn adler32_matches_reference_for_known_input() {
        // Adler-32 of "Wikipedia" is 0x11E60398 (well-known test vector).
        // Our updates take u64s, so feed 8 bytes then 1 byte via two
        // updates is not byte-exact; instead verify against a direct
        // byte-level reference implementation on the same u64 stream.
        fn reference(words: &[u64]) -> u64 {
            let (mut a, mut b) = (1u32, 0u32);
            for w in words {
                for byte in w.to_le_bytes() {
                    a = (a + byte as u32) % 65_521;
                    b = (b + a) % 65_521;
                }
            }
            (((b) << 16) | (a & 0xffff)) as u64
        }
        let words = [0x0123_4567_89ab_cdefu64, 42, u64::MAX];
        let mut ck = RunningChecksum::new(ChecksumKind::Adler32);
        for w in words {
            ck.update(w);
        }
        assert_eq!(ck.value(), reference(&words));
    }

    #[test]
    fn modular_parity_packs_both_halves() {
        let mut ck = RunningChecksum::new(ChecksumKind::ModularParity);
        ck.update(5);
        ck.update(9);
        let v = ck.value();
        let mut m = RunningChecksum::new(ChecksumKind::Modular);
        m.update(5);
        m.update(9);
        let mut p = RunningChecksum::new(ChecksumKind::Parity);
        p.update(5);
        p.update(9);
        assert_eq!(v & 0xffff_ffff, m.value());
        assert_eq!(v >> 32, p.value());
    }

    #[test]
    fn parity_misses_duplicate_pair_but_modular_catches_it() {
        // Classic parity weakness: two identical corruptions cancel.
        let good = [3u64, 3, 5];
        let bad = [4u64, 4, 5]; // both elements corrupted identically
        let mut pg = RunningChecksum::new(ChecksumKind::Parity);
        let mut pb = RunningChecksum::new(ChecksumKind::Parity);
        let mut mg = RunningChecksum::new(ChecksumKind::Modular);
        let mut mb = RunningChecksum::new(ChecksumKind::Modular);
        for v in good {
            pg.update(v);
            mg.update(v);
        }
        for v in bad {
            pb.update(v);
            mb.update(v);
        }
        assert_eq!(pg.value(), pb.value(), "parity cancels pairs");
        assert_ne!(mg.value(), mb.value(), "modular does not");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 of the bytes 00..=07 (one little-endian u64).
        let mut ck = RunningChecksum::new(ChecksumKind::Crc32);
        ck.update(u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        // Reference computed with the bitwise definition:
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c ^= b as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
            }
            c ^ 0xFFFF_FFFF
        }
        assert_eq!(ck.value(), reference(&[0, 1, 2, 3, 4, 5, 6, 7]) as u64);
    }

    #[test]
    fn kind_roundtrip_and_cost() {
        for kind in all_kinds() {
            assert_eq!(RunningChecksum::new(kind).kind(), kind);
            assert!(kind.cost_ops() >= 1);
            assert!(!kind.name().is_empty());
        }
        assert!(ChecksumKind::Adler32.cost_ops() > ChecksumKind::Modular.cost_ops());
        assert!(ChecksumKind::ModularParity.cost_ops() > ChecksumKind::Modular.cost_ops());
    }

    #[test]
    fn empty_region_checksums_are_stable() {
        for kind in all_kinds() {
            let a = RunningChecksum::new(kind).value();
            let b = RunningChecksum::new(kind).value();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn helper_matches_manual_loop() {
        let vals = [1.5f64, -2.25, 1e300];
        let mut ck = RunningChecksum::new(ChecksumKind::Adler32);
        for v in vals {
            ck.update(v.to_bits());
        }
        assert_eq!(checksum_f64s(ChecksumKind::Adler32, &vals), ck.value());
    }

    /// Deterministic xorshift stream for the lane/scalar property tests
    /// (std-only; no test-time RNG dependency).
    fn word_stream(seed: u64, len: usize) -> Vec<u64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn lane_bulk_matches_scalar_for_random_streams() {
        // Lengths straddle the lane width (4), the SWAR word shape, and
        // off-by-one remainders; values include the byte-overflow-prone
        // all-0xFF pattern.
        for kind in all_kinds() {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 256, 1000] {
                for seed in [1u64, 0xdead_beef, 0x1234_5678_9abc_def0] {
                    let mut words = word_stream(seed ^ len as u64, len);
                    if len > 2 {
                        words[0] = u64::MAX;
                        words[len / 2] = 0;
                    }
                    let mut scalar = RunningChecksum::new(kind);
                    for &w in &words {
                        scalar.update(w);
                    }
                    let mut lane = RunningChecksum::new(kind);
                    lane.update_slice(&words);
                    assert_eq!(scalar, lane, "{kind} state diverged at len {len}");
                    assert_eq!(scalar.value(), lane.value(), "{kind} value at len {len}");
                }
            }
        }
    }

    #[test]
    fn lane_bulk_split_resume_matches_one_shot() {
        // A stream may arrive as any mix of per-word updates and bulk
        // slices; every split point must land on the same state.
        for kind in all_kinds() {
            let words = word_stream(0x5eed, 97);
            let mut oneshot = RunningChecksum::new(kind);
            oneshot.update_slice(&words);
            for split in [0usize, 1, 3, 8, 50, 96, 97] {
                let (head, tail) = words.split_at(split);
                let mut resumed = RunningChecksum::new(kind);
                resumed.update_slice(head);
                resumed.update_slice(tail);
                assert_eq!(oneshot, resumed, "{kind} split at {split}");

                let mut mixed = RunningChecksum::new(kind);
                for &w in head {
                    mixed.update(w);
                }
                mixed.update_slice(tail);
                assert_eq!(oneshot, mixed, "{kind} scalar head, bulk tail at {split}");
            }
        }
    }

    #[test]
    fn adler_deferred_modulo_survives_saturated_chunks() {
        // All-0xFF words maximize per-word growth of both accumulators —
        // the worst case for the deferred reduction's overflow headroom.
        let words = vec![u64::MAX; 10_000];
        let mut scalar = RunningChecksum::new(ChecksumKind::Adler32);
        for &w in &words {
            scalar.update(w);
        }
        let mut lane = RunningChecksum::new(ChecksumKind::Adler32);
        lane.update_slice(&words);
        assert_eq!(scalar.value(), lane.value());
    }
}

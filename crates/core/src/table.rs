//! The standalone persistent checksum table (Figure 7(b)).
//!
//! The paper stores region checksums in a standalone hash structure rather
//! than embedding them in the protected data: embedding bloats the matrix
//! by `N²·P/bsize` and breaks layout optimizations. The table is sized so
//! that region keys map to entries *collision-free* (`(N/bsize)² · P`
//! entries for tiled matrix multiplication, keyed by `ii`, `kk` and the
//! thread id), so no locks are needed — different threads always touch
//! different entries.
//!
//! Entries start as an **invalid sentinel** so recovery can distinguish
//! "region never executed" from "region executed with some checksum"
//! (Section IV discusses using NaN or −1 for this purpose).

pub mod hashed;

use lp_sim::core::CoreCtx;
use lp_sim::machine::Machine;
use lp_sim::mem::{OutOfPersistentMemory, PArray};

/// Sentinel marking a never-written entry.
pub const INVALID_ENTRY: u64 = u64::MAX;

/// A collision-free persistent table of region checksums.
///
/// The handle is `Copy`; the entries live in simulated persistent memory.
/// Writes go through the timed [`CoreCtx`] API so checksum persistence is
/// *lazy* exactly like the data it protects (Section III-D chooses lazy
/// checksums; eager-persisting them is an ablation the experiments cover).
///
/// # Examples
///
/// ```
/// use lp_sim::prelude::*;
/// use lp_core::table::ChecksumTable;
///
/// let mut m = Machine::new(MachineConfig::default().with_cores(1).with_nvmm_bytes(1 << 20));
/// let table = ChecksumTable::alloc(&mut m, 16).unwrap();
/// let mut ctx = m.ctx(0);
/// assert_eq!(table.load(&mut ctx, 3), None); // never written
/// table.store(&mut ctx, 3, 0xabcd);
/// assert_eq!(table.load(&mut ctx, 3), Some(0xabcd));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChecksumTable {
    entries: PArray<u64>,
}

impl ChecksumTable {
    /// Allocate a table with `entries` slots, all initialized to the
    /// invalid sentinel in the durable image (setup-time, untimed).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(machine: &mut Machine, entries: usize) -> Result<Self, OutOfPersistentMemory> {
        let arr = machine.alloc::<u64>(entries)?;
        let table = ChecksumTable { entries: arr };
        table.reset(machine);
        Ok(table)
    }

    /// Re-initialize every entry to the invalid sentinel (untimed).
    pub fn reset(&self, machine: &mut Machine) {
        for i in 0..self.entries.len() {
            machine.poke(self.entries, i, INVALID_ENTRY);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Space overhead in bytes (for the paper's 1%-of-matrix claim).
    pub fn bytes(&self) -> u64 {
        self.entries.bytes()
    }

    /// The backing persistent array (for address-range tracking).
    pub fn array(&self) -> PArray<u64> {
        self.entries
    }

    /// Remap a checksum value the way [`ChecksumTable::store`] does, so
    /// external tools can predict the stored bits. Public counterpart of
    /// the internal sentinel-collision remap.
    pub fn sanitize_value(value: u64) -> u64 {
        Self::sanitize(value)
    }

    /// Checksum values can collide with the sentinel; remap that single
    /// value so a stored checksum is never read back as "invalid".
    #[inline]
    fn sanitize(value: u64) -> u64 {
        if value == INVALID_ENTRY {
            INVALID_ENTRY - 1
        } else {
            value
        }
    }

    /// Timed store of a region checksum (a plain lazy store: no flush, no
    /// fence — persistence happens via natural eviction).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn store(&self, ctx: &mut CoreCtx<'_>, key: usize, value: u64) {
        ctx.store(self.entries, key, Self::sanitize(value));
    }

    /// Timed load; `None` if the entry was never written (or the write
    /// never persisted before a crash).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn load(&self, ctx: &mut CoreCtx<'_>, key: usize) -> Option<u64> {
        let v: u64 = ctx.load(self.entries, key);
        (v != INVALID_ENTRY).then_some(v)
    }

    /// Timed comparison of a recomputed checksum against the stored entry.
    /// Returns `false` for never-written entries.
    pub fn matches(&self, ctx: &mut CoreCtx<'_>, key: usize, recomputed: u64) -> bool {
        self.load(ctx, key) == Some(Self::sanitize(recomputed))
    }

    /// Eagerly persist the entry for `key` (flush + fence). Used by the
    /// eager-checksum ablation and by recovery code, which must run with
    /// Eager Persistency to guarantee forward progress.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn persist(&self, ctx: &mut CoreCtx<'_>, key: usize) {
        ctx.clflushopt(self.entries.addr(key));
        ctx.sfence();
    }

    /// Untimed read of the durable image (post-crash inspection in tests).
    pub fn peek(&self, machine: &Machine, key: usize) -> Option<u64> {
        let v = machine.peek(self.entries, key);
        (v != INVALID_ENTRY).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::prelude::CrashTrigger;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(2)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn starts_invalid_everywhere() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 32).unwrap();
        assert_eq!(t.len(), 32);
        assert_eq!(t.bytes(), 256);
        let mut ctx = m.ctx(0);
        for k in 0..32 {
            assert_eq!(t.load(&mut ctx, k), None);
        }
    }

    #[test]
    fn store_load_roundtrip_and_matches() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 8).unwrap();
        let mut ctx = m.ctx(0);
        t.store(&mut ctx, 2, 777);
        assert_eq!(t.load(&mut ctx, 2), Some(777));
        assert!(t.matches(&mut ctx, 2, 777));
        assert!(!t.matches(&mut ctx, 2, 778));
        assert!(!t.matches(&mut ctx, 3, 0));
    }

    #[test]
    fn sentinel_collision_is_remapped() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 4).unwrap();
        let mut ctx = m.ctx(0);
        t.store(&mut ctx, 0, INVALID_ENTRY);
        // Stored value is remapped, not lost.
        assert_eq!(t.load(&mut ctx, 0), Some(INVALID_ENTRY - 1));
        // matches() applies the same remap so callers never notice.
        assert!(t.matches(&mut ctx, 0, INVALID_ENTRY));
    }

    #[test]
    fn lazy_store_is_lost_on_crash_persist_survives() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 16).unwrap();
        {
            let mut ctx = m.ctx(0);
            // Keys 0 and 8 live on different cache lines (8 u64s per line),
            // so persisting one cannot drag the other along.
            t.store(&mut ctx, 0, 111); // lazy: cached only
            t.store(&mut ctx, 8, 222);
            t.persist(&mut ctx, 8); // eager: flushed + fenced
        }
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert_eq!(t.peek(&m, 0), None, "lazy entry lost in crash");
        assert_eq!(t.peek(&m, 8), Some(222), "persisted entry survived");
    }

    #[test]
    fn reset_restores_invalid_after_use() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 4).unwrap();
        {
            let mut ctx = m.ctx(0);
            t.store(&mut ctx, 0, 5);
        }
        m.drain_caches();
        assert_eq!(t.peek(&m, 0), Some(5));
        t.reset(&mut m);
        assert_eq!(t.peek(&m, 0), None);
        let mut ctx = m.ctx(0);
        assert_eq!(t.load(&mut ctx, 0), None);
    }

    #[test]
    fn distinct_threads_distinct_entries_no_interference() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 8).unwrap();
        let mut plans = m.plans();
        plans[0].region(move |ctx| t.store(ctx, 0, 10));
        plans[1].region(move |ctx| t.store(ctx, 1, 20));
        m.run(plans);
        let mut ctx = m.ctx(0);
        assert_eq!(t.load(&mut ctx, 0), Some(10));
        assert_eq!(t.load(&mut ctx, 1), Some(20));
    }

    #[test]
    fn crash_trigger_mid_table_writes() {
        let mut m = machine();
        let t = ChecksumTable::alloc(&mut m, 64).unwrap();
        m.set_crash_trigger(CrashTrigger::AfterMemOps(5));
        let mut plans = m.plans();
        plans[0].region(move |ctx| {
            for k in 0..64 {
                t.store(ctx, k, k as u64 + 1);
            }
        });
        let outcome = m.run(plans);
        assert_eq!(outcome, lp_sim::machine::Outcome::Crashed);
        // Whatever did not persist reads as invalid.
        let survivors = (0..64).filter(|&k| t.peek(&m, k).is_some()).count();
        assert!(survivors < 64);
    }
}

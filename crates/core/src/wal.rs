//! Write-ahead-logging durable transactions (the `tmm+WAL` baseline,
//! Figure 2 of the paper).
//!
//! Intel PMEM gives durability *ordering* (`clflushopt` + `sfence`) but no
//! atomic durability, so programmers build transactions from software
//! undo logging. Following Figure 2, one transaction:
//!
//! 1. appends `(address, old value)` log entries for everything it will
//!    modify, flushes the log, fences;
//! 2. durably sets `logStatus = 1` (log complete), flushes, fences;
//! 3. performs the data stores (including the per-thread progress marker),
//!    flushes them, fences;
//! 4. durably clears `logStatus`, flushes, fences.
//!
//! Four flush+fence rounds per transaction — this is what makes WAL the
//! most expensive scheme in Figure 10 (5.97× execution time, 3.83× writes).
//!
//! Recovery: a transaction interrupted with `logStatus == 1` is rolled
//! back by applying the logged old values in reverse, eagerly; execution
//! then resumes after the last durable marker.

use lp_sim::addr::Addr;
use lp_sim::core::CoreCtx;
use lp_sim::machine::Machine;
use lp_sim::mem::{OutOfPersistentMemory, PArray, Scalar};

/// Layout of the per-thread arena header (one cache line).
const H_STATUS: usize = 0;
const H_COUNT: usize = 1;
const H_MARKER: usize = 2;

/// A per-thread undo-log arena in persistent memory.
///
/// Handles are `Copy`; each simulated thread owns one arena so no
/// synchronization is needed. Only 8-byte scalars can be logged (all the
/// evaluated kernels store `f64`/`u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalArena {
    /// `(address, old bits)` pairs.
    entries: PArray<u64>,
    /// `[status, count, marker]`.
    header: PArray<u64>,
    capacity: usize,
}

impl WalArena {
    /// Allocate an arena able to log `capacity` stores per transaction.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the persistent heap is full.
    pub fn alloc(machine: &mut Machine, capacity: usize) -> Result<Self, OutOfPersistentMemory> {
        let entries = machine.alloc::<u64>(2 * capacity)?;
        let header = machine.alloc::<u64>(8)?; // one line
        let arena = WalArena {
            entries,
            header,
            capacity,
        };
        for i in 0..8 {
            machine.poke(header, i, 0);
        }
        Ok(arena)
    }

    /// Maximum stores per transaction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing array of `(address, old bits)` log pairs (for
    /// address-range tracking).
    pub fn entries_array(&self) -> PArray<u64> {
        self.entries
    }

    /// The backing `[status, count, marker]` header line (for
    /// address-range tracking).
    pub fn header_array(&self) -> PArray<u64> {
        self.header
    }

    /// Begin a transaction.
    pub fn begin(&self) -> WalTx {
        WalTx {
            arena: *self,
            logged: 0,
            pending: Vec::new(),
        }
    }

    /// The durable progress marker (`0` = no transaction committed yet,
    /// else `1 + key` of the last committed region). Timed read.
    pub fn marker(&self, ctx: &mut CoreCtx<'_>) -> u64 {
        ctx.load(self.header, H_MARKER)
    }

    /// Untimed marker read from the durable image.
    pub fn peek_marker(&self, machine: &Machine) -> u64 {
        machine.peek(self.header, H_MARKER)
    }

    /// Untimed status read from the durable image.
    pub fn peek_status(&self, machine: &Machine) -> u64 {
        machine.peek(self.header, H_STATUS)
    }

    /// Roll back an interrupted transaction, if any, using Eager
    /// Persistency (recovery must guarantee forward progress). Returns the
    /// number of undone stores.
    pub fn recover(&self, ctx: &mut CoreCtx<'_>) -> usize {
        let status: u64 = ctx.load(self.header, H_STATUS);
        if status != 1 {
            return 0;
        }
        let count = ctx.load(self.header, H_COUNT) as usize;
        let mut undone = 0;
        for j in (0..count).rev() {
            let addr = Addr(ctx.load(self.entries, 2 * j));
            let old: u64 = ctx.load(self.entries, 2 * j + 1);
            ctx.store_addr::<u64>(addr, old);
            ctx.clflushopt(addr);
            undone += 1;
        }
        ctx.sfence();
        ctx.store(self.header, H_STATUS, 0);
        ctx.clflushopt(self.header.addr(H_STATUS));
        ctx.sfence();
        undone
    }
}

/// An open durable transaction.
///
/// Stores are *staged*: [`WalTx::log_and_stage`] appends the undo record
/// and buffers the new value; nothing modifies the data arrays until
/// [`WalTx::commit`] has durably completed the log (true write-ahead
/// ordering). A staged location must not be re-read through the cache
/// within the same transaction.
#[derive(Debug)]
pub struct WalTx {
    arena: WalArena,
    logged: usize,
    /// Buffered new values: `(address, bits)`.
    pending: Vec<(Addr, u64)>,
}

impl WalTx {
    /// Log the old value of `arr[i]` and stage the new value `v`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction exceeds the arena capacity, if `i` is out
    /// of bounds, or if `T` is not an 8-byte scalar.
    pub fn log_and_stage<T: Scalar>(
        &mut self,
        ctx: &mut CoreCtx<'_>,
        arr: PArray<T>,
        i: usize,
        v: T,
    ) {
        assert_eq!(T::SIZE, 8, "WAL supports 8-byte scalars only");
        assert!(
            self.logged < self.arena.capacity,
            "WAL arena capacity ({}) exceeded",
            self.arena.capacity
        );
        let addr = arr.addr(i);
        let old: T = ctx.load(arr, i);
        // Figure 2 flushes every log entry as it is created (lines 2–7):
        // the entry must be on its way to NVMM before the fence in
        // commit step (1).
        ctx.store(self.arena.entries, 2 * self.logged, addr.0);
        ctx.clflushopt(self.arena.entries.addr(2 * self.logged));
        ctx.store(self.arena.entries, 2 * self.logged + 1, old.to_bits64());
        ctx.clflushopt(self.arena.entries.addr(2 * self.logged + 1));
        self.logged += 1;
        self.pending.push((addr, v.to_bits64()));
    }

    /// Number of staged stores.
    pub fn staged(&self) -> usize {
        self.pending.len()
    }

    /// Commit: the four flush+fence rounds of Figure 2. `marker_value`
    /// (typically `1 + region key`) is stored durably with the data so
    /// recovery knows where to resume.
    pub fn commit(mut self, ctx: &mut CoreCtx<'_>, marker_value: u64) {
        let arena = self.arena;
        // The marker is transaction data too: log its old value.
        let old_marker: u64 = ctx.load(arena.header, H_MARKER);
        assert!(self.logged < arena.capacity, "no room for marker log entry");
        ctx.store(
            arena.entries,
            2 * self.logged,
            arena.header.addr(H_MARKER).0,
        );
        ctx.clflushopt(arena.entries.addr(2 * self.logged));
        ctx.store(arena.entries, 2 * self.logged + 1, old_marker);
        ctx.clflushopt(arena.entries.addr(2 * self.logged + 1));
        self.logged += 1;

        // (1) Log complete (entries were flushed as created): persist the
        // count and wait for the whole log to be durable.
        ctx.store(arena.header, H_COUNT, self.logged as u64);
        ctx.clflushopt(arena.header.addr(H_COUNT));
        ctx.sfence();

        // (2) Durably mark the log valid.
        ctx.store(arena.header, H_STATUS, 1);
        ctx.clflushopt(arena.header.addr(H_STATUS));
        ctx.sfence();

        // (3) Apply the data stores + marker; Figure 2 flushes each
        // written value (lines 15–17).
        for &(addr, bits) in &self.pending {
            ctx.store_addr::<u64>(addr, bits);
            ctx.clflushopt(addr);
        }
        ctx.store(arena.header, H_MARKER, marker_value);
        ctx.clflushopt(arena.header.addr(H_MARKER));
        ctx.sfence();

        // (4) Retire the log.
        ctx.store(arena.header, H_STATUS, 0);
        ctx.clflushopt(arena.header.addr(H_STATUS));
        ctx.sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::prelude::CrashTrigger;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn committed_tx_is_durable() {
        let mut m = machine();
        let arr = m.alloc::<f64>(16).unwrap();
        let arena = WalArena::alloc(&mut m, 32).unwrap();
        {
            let mut ctx = m.ctx(0);
            let mut tx = arena.begin();
            for i in 0..8 {
                tx.log_and_stage(&mut ctx, arr, i, (i + 1) as f64);
            }
            assert_eq!(tx.staged(), 8);
            tx.commit(&mut ctx, 1);
        }
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        for i in 0..8 {
            assert_eq!(m.peek(arr, i), (i + 1) as f64);
        }
        assert_eq!(arena.peek_marker(&m), 1);
        assert_eq!(arena.peek_status(&m), 0);
    }

    #[test]
    fn staged_stores_do_not_touch_data_before_commit() {
        let mut m = machine();
        let arr = m.alloc::<f64>(4).unwrap();
        m.poke(arr, 0, 5.0);
        let arena = WalArena::alloc(&mut m, 8).unwrap();
        let mut ctx = m.ctx(0);
        let mut tx = arena.begin();
        tx.log_and_stage(&mut ctx, arr, 0, 9.0);
        // Before commit, the coherent view still has the old value.
        let v: f64 = ctx.load(arr, 0);
        assert_eq!(v, 5.0);
        tx.commit(&mut ctx, 1);
        let v: f64 = ctx.load(arr, 0);
        assert_eq!(v, 9.0);
    }

    #[test]
    fn crash_mid_apply_is_rolled_back() {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        for i in 0..8 {
            m.poke(arr, i, 100.0 + i as f64);
        }
        let arena = WalArena::alloc(&mut m, 16).unwrap();
        // Find the op count up to just after status=1 is durable, then
        // crash in the middle of the data-apply phase.
        m.set_crash_trigger(CrashTrigger::AfterNvmmWrites(4));
        let mut plans = m.plans();
        plans[0].region(move |ctx| {
            let mut tx = arena.begin();
            for i in 0..8 {
                tx.log_and_stage(ctx, arr, i, -1.0);
            }
            tx.commit(ctx, 1);
        });
        let outcome = m.run(plans);
        assert_eq!(outcome, lp_sim::machine::Outcome::Crashed);
        // If the log was marked valid, roll back; data must be intact.
        if arena.peek_status(&m) == 1 {
            let mut ctx = m.ctx(0);
            let undone = arena.recover(&mut ctx);
            assert!(undone > 0);
        }
        for i in 0..8 {
            assert_eq!(m.peek(arr, i), 100.0 + i as f64, "element {i}");
        }
        assert_eq!(arena.peek_marker(&m), 0, "marker rolled back/never set");
    }

    #[test]
    fn recover_is_noop_when_status_clear() {
        let mut m = machine();
        let arena = WalArena::alloc(&mut m, 8).unwrap();
        let mut ctx = m.ctx(0);
        assert_eq!(arena.recover(&mut ctx), 0);
    }

    #[test]
    fn arena_is_reusable_across_transactions() {
        let mut m = machine();
        let arr = m.alloc::<u64>(4).unwrap();
        let arena = WalArena::alloc(&mut m, 8).unwrap();
        {
            let mut ctx = m.ctx(0);
            let mut tx = arena.begin();
            tx.log_and_stage(&mut ctx, arr, 0, 1);
            tx.commit(&mut ctx, 1);
            let mut tx = arena.begin();
            tx.log_and_stage(&mut ctx, arr, 0, 2);
            tx.commit(&mut ctx, 2);
        }
        m.drain_caches();
        assert_eq!(m.peek(arr, 0), 2);
        assert_eq!(arena.peek_marker(&m), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_panics() {
        let mut m = machine();
        let arr = m.alloc::<u64>(16).unwrap();
        let arena = WalArena::alloc(&mut m, 2).unwrap();
        let mut ctx = m.ctx(0);
        let mut tx = arena.begin();
        for i in 0..3 {
            tx.log_and_stage(&mut ctx, arr, i, 0);
        }
        tx.commit(&mut ctx, 1);
    }

    #[test]
    fn tx_costs_four_fences() {
        let mut m = machine();
        let arr = m.alloc::<u64>(4).unwrap();
        let arena = WalArena::alloc(&mut m, 8).unwrap();
        let mut ctx = m.ctx(0);
        let mut tx = arena.begin();
        tx.log_and_stage(&mut ctx, arr, 0, 7);
        tx.commit(&mut ctx, 1);
        assert_eq!(ctx.core.stats.fences, 4);
        assert!(ctx.core.stats.flushes >= 5); // log, count, status x2, data, marker
    }
}

//! Violation reporting: typed findings with addresses mapped back to the
//! named [`TrackedRange`] allocations they landed in.

use lp_core::track::{find_range, TrackedRange};
use lp_sim::addr::Addr;
use lp_sim::observe::RegionId;

/// The persistency-discipline rules the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Store to persistent (protected) memory outside any begin/commit
    /// region.
    R1,
    /// Lazy Persistency store whose value was not folded into the region's
    /// running checksum (the persisted checksum disagrees with one
    /// recomputed from the observed stores).
    R2,
    /// EagerRecompute durable-marker store not preceded by flushes and an
    /// `sfence` covering every dirty line of the region.
    R3,
    /// WAL in-place store whose undo-log entry is not yet durably ordered
    /// (log-before-data violated).
    R4,
    /// Overlapping protected write sets between concurrently scheduled
    /// regions on different cores.
    R5,
    /// A committed Lazy region's line rewritten by a later region, before
    /// the earlier checksum reached NVMM, without a fresh checksum entry.
    R6,
    /// Non-idempotent recovery write: post-crash recovery stored a
    /// progress value (marker, WAL header, or checksum-table entry) while
    /// protected recovery stores it vouches for still lacked a covering
    /// flush + `sfence`, so a nested crash could persist the promise
    /// without the data and the re-entry would skip the repair.
    R7,
    /// Parity published ahead of the data it summarizes: a parity-arena
    /// line stored before every protected store of its region (forward
    /// path), or persisted by recovery while a repaired line it vouches
    /// for still lacked a covering flush + `sfence` — a crash would leave
    /// parity describing data that never reached NVMM, and a later repair
    /// would reconstruct from the wrong lanes.
    R8,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 8] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
    ];

    /// Short identifier (`"R1"` … `"R8"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
        }
    }

    /// One-line description of what the rule forbids.
    pub fn title(self) -> &'static str {
        match self {
            Rule::R1 => "protected store outside any persistency region",
            Rule::R2 => "store not folded into the region's running checksum",
            Rule::R3 => "durable marker advanced before region lines were flushed and fenced",
            Rule::R4 => "in-place store before its undo-log entry was durably ordered",
            Rule::R5 => "overlapping write sets between concurrently scheduled regions",
            Rule::R6 => "committed region's line rewritten before its checksum was durable",
            Rule::R7 => "recovery progress stored before the repairs it vouches for were durable",
            Rule::R8 => "parity line published ahead of the region data it summarizes",
        }
    }

    /// The primary `lp-lint` static rule that decides the same ordering
    /// property from source, when one exists (`"S1"`…`"S6"`). `None` for
    /// the rules that depend on runtime information — R5 needs concrete
    /// addresses and the cross-thread schedule, R6 needs eviction timing.
    pub fn static_twin(self) -> Option<&'static str> {
        self.static_twins().first().copied()
    }

    /// All `lp-lint` static rules deciding this rule's property from
    /// source. R2 has two: S2 orders the table publish after its folds,
    /// S6 demands every persisted line be folded at all.
    pub fn static_twins(self) -> &'static [&'static str] {
        match self {
            Rule::R1 => &["S5"],
            Rule::R2 => &["S2", "S6"],
            Rule::R3 => &["S1"],
            Rule::R4 => &["S3"],
            Rule::R5 | Rule::R6 => &[],
            Rule::R7 => &["S4"],
            Rule::R8 => &["S7"],
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One observed violation of a [`Rule`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The rule violated.
    pub rule: Rule,
    /// The core whose access (or commit) triggered the finding.
    pub core: usize,
    /// The core-local cycle of the triggering event.
    pub cycle: u64,
    /// The offending byte address, when the finding is tied to one.
    pub addr: Option<Addr>,
    /// The offending address mapped back to its allocation, e.g.
    /// `"tmm.c[42] (protected)"`, or `"<untracked>"`.
    pub location: String,
    /// The dynamic region in force at the event, if any.
    pub region: Option<RegionId>,
    /// The region's checksum-table / marker key, when known.
    pub key: Option<usize>,
    /// Human-readable specifics of this finding.
    pub detail: String,
}

/// Map `addr` back to a named allocation (`"name[index] (role)"`).
pub fn describe_addr(ranges: &[TrackedRange], addr: Addr) -> String {
    match find_range(ranges, addr) {
        Some(r) => format!("{}[{}] ({})", r.name, r.element_of(addr), r.role),
        None => format!("<untracked {addr}>"),
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] core {} @ cycle {}: {}",
            self.rule,
            self.core,
            self.cycle,
            self.rule.title()
        )?;
        write!(f, " — {}", self.location)?;
        if let Some(region) = self.region {
            write!(f, " in {region}")?;
            if let Some(key) = self.key {
                write!(f, " (key {key})")?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

/// The checker's verdict over one run.
#[derive(Debug, Clone, Default)]
pub struct ViolationReport {
    /// Label of the checked workload (e.g. `"TMM under LP(modular)"`).
    pub label: String,
    /// Every violation, in event order.
    pub violations: Vec<Violation>,
    /// Total events the checker observed.
    pub events_seen: u64,
    /// Whether the run ended in a simulated crash (rules stop at a crash;
    /// recovery is exercised by the recovery tests, not the sanitizer).
    pub crashed: bool,
}

impl ViolationReport {
    /// `true` when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a specific rule.
    pub fn of_rule(&self, rule: Rule) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule == rule)
    }

    /// Whether at least one violation of `rule` was found.
    pub fn flags(&self, rule: Rule) -> bool {
        self.of_rule(rule).next().is_some()
    }

    /// Per-rule counts, ordered R1..R8, rules with zero hits omitted.
    pub fn counts(&self) -> Vec<(Rule, usize)> {
        Rule::ALL
            .into_iter()
            .map(|r| (r, self.of_rule(r).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "{}: clean ({} events observed)",
                self.label, self.events_seen
            );
        }
        writeln!(
            f,
            "{}: {} violation(s) over {} events:",
            self.label,
            self.violations.len(),
            self.events_seen
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        let summary: Vec<String> = self
            .counts()
            .into_iter()
            .map(|(r, n)| format!("{r}×{n}"))
            .collect();
        write!(f, "  summary: {}", summary.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_core::track::RangeRole;

    fn ranges() -> Vec<TrackedRange> {
        vec![TrackedRange {
            name: "data".into(),
            base: Addr(128),
            bytes: 256,
            elem_bytes: 8,
            role: RangeRole::Protected,
        }]
    }

    #[test]
    fn describe_maps_and_falls_back() {
        let r = ranges();
        assert_eq!(describe_addr(&r, Addr(128 + 40)), "data[5] (protected)");
        assert!(describe_addr(&r, Addr(4096)).starts_with("<untracked"));
    }

    #[test]
    fn report_flags_and_counts() {
        let mut rep = ViolationReport {
            label: "t".into(),
            ..Default::default()
        };
        assert!(rep.is_clean());
        rep.violations.push(Violation {
            rule: Rule::R2,
            core: 0,
            cycle: 10,
            addr: Some(Addr(128)),
            location: "data[0] (protected)".into(),
            region: Some(RegionId(1)),
            key: Some(3),
            detail: "expected 1, stored 2".into(),
        });
        assert!(!rep.is_clean());
        assert!(rep.flags(Rule::R2));
        assert!(!rep.flags(Rule::R1));
        assert_eq!(rep.counts(), vec![(Rule::R2, 1)]);
        let shown = rep.to_string();
        assert!(shown.contains("R2"), "{shown}");
        assert!(shown.contains("data[0]"), "{shown}");
        assert!(shown.contains("key 3"), "{shown}");
    }

    #[test]
    fn rule_ids_and_titles_are_distinct() {
        let ids: std::collections::HashSet<_> = Rule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), Rule::ALL.len());
        let titles: std::collections::HashSet<_> = Rule::ALL.iter().map(|r| r.title()).collect();
        assert_eq!(titles.len(), Rule::ALL.len());
    }

    #[test]
    fn static_twins_are_valid_s_rules() {
        // Exactly the runtime-dependent rules lack a static twin, and
        // every twin is a well-formed S-rule id.
        for r in Rule::ALL {
            match r.static_twin() {
                Some(s) => {
                    assert!(s.starts_with('S'), "{s}");
                    let n: u32 = s[1..].parse().unwrap();
                    assert!((1..=7).contains(&n), "{s}");
                }
                None => assert!(matches!(r, Rule::R5 | Rule::R6)),
            }
            for s in r.static_twins() {
                assert!(s.starts_with('S'), "{s}");
            }
        }
        assert_eq!(Rule::R2.static_twins(), ["S2", "S6"]);
    }
}

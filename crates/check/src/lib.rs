//! # lp-check — a persistency-discipline sanitizer
//!
//! `lp-check` replays the simulator's memory-event stream (see
//! `lp_sim::observe`) against the contract of the persistency scheme in
//! force and reports violations. It enforces eight rules:
//!
//! * **R1** — store to protected persistent memory outside any
//!   begin/commit region.
//! * **R2** — Lazy Persistency store not folded into the region's running
//!   checksum (the persisted table entry disagrees with a checksum
//!   recomputed from the observed stores).
//! * **R3** — EagerRecompute durable-marker store not preceded by flushes
//!   plus an `sfence` covering every dirty line of the region.
//! * **R4** — WAL in-place store whose undo-log entry is not yet durably
//!   ordered (log-before-data violated).
//! * **R5** — overlapping protected write sets between concurrently
//!   scheduled regions on different cores.
//! * **R6** — a committed Lazy region's line rewritten by a later region,
//!   before the earlier checksum reached NVMM, without a fresh checksum
//!   entry.
//! * **R7** — post-crash recovery stored a progress value (marker, WAL
//!   header, or checksum-table entry) while protected recovery stores it
//!   vouches for still lacked a covering flush + `sfence` — a nested crash
//!   in that window would trust the promise and skip the repair.
//! * **R8** — parity published ahead of the data it summarizes: a
//!   parity-arena line stored before the region's protected stores were
//!   all issued, or persisted by recovery while a repaired line it
//!   vouches for was still unfenced.
//!
//! The checker is an observer: it cannot perturb the timing or functional
//! model, and a machine without one installed pays nothing. Because the
//! simulator models ADR (flushes are durable once accepted), some broken
//! disciplines still yield correct simulated output — `lp-check` exists to
//! flag exactly those latent bugs before real hardware does.
//!
//! Run the whole suite (clean kernels × schemes + mutation tests) with the
//! `lp-check` binary, or audit one workload programmatically via
//! [`check_kernel`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checker;
pub mod mutations;
pub mod report;

use std::sync::{Arc, Mutex};

use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;
use lp_sim::machine::Outcome;

pub use crate::checker::Checker;
pub use crate::report::{Rule, Violation, ViolationReport};

/// Outcome of auditing one kernel run.
#[derive(Debug)]
pub struct CheckedRun {
    /// The checker's verdict.
    pub report: ViolationReport,
    /// How the simulated run ended.
    pub outcome: Outcome,
    /// Whether the durable image matched the host golden reference.
    pub verified: bool,
}

/// Run `kernel` under `scheme` with the sanitizer installed and the caches
/// drained afterwards (so every pending line, checksum included, reaches
/// the durable image before verification).
pub fn check_kernel(
    kernel: KernelId,
    scale: Scale,
    cfg: &MachineConfig,
    scheme: Scheme,
) -> CheckedRun {
    let mut prepared = prepare_kernel(kernel, scale, cfg, scheme);
    let label = format!("{kernel} under {scheme}");
    let checker = Arc::new(Mutex::new(Checker::new(
        scheme,
        prepared.ranges.clone(),
        label,
    )));
    prepared.machine.set_observer(checker.clone());
    let outcome = prepared.machine.run(prepared.plans);
    prepared.machine.drain_caches();
    prepared.machine.clear_observer();
    let verified = outcome == Outcome::Completed && (prepared.verify)(&prepared.machine);
    let report = checker.lock().unwrap().report();
    CheckedRun {
        report,
        outcome,
        verified,
    }
}

/// The scheme matrix the clean-run suite audits (one representative
/// checksum kind for each Lazy variant).
pub fn default_schemes() -> [Scheme; 6] {
    use lp_core::checksum::ChecksumKind;
    [
        Scheme::Base,
        Scheme::Lazy(ChecksumKind::Modular),
        Scheme::lazy_parity_default(),
        Scheme::LazyEagerCk(ChecksumKind::Modular),
        Scheme::Eager,
        Scheme::Wal,
    ]
}

/// A machine configuration suitable for test-scale audited runs.
pub fn default_config() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(16 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmm_is_clean_and_verified_under_every_scheme() {
        let cfg = default_config();
        for scheme in default_schemes() {
            let run = check_kernel(KernelId::Tmm, Scale::Test, &cfg, scheme);
            assert!(run.report.is_clean(), "{}", run.report);
            assert!(run.verified, "TMM under {scheme} failed verification");
            assert!(run.report.events_seen > 0);
        }
    }
}

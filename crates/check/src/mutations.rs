//! Mutation tests: deliberately broken persistency disciplines the checker
//! must flag, proving each rule has teeth.
//!
//! Each mutation builds a tiny synthetic workload straight from the
//! `lp-sim`/`lp-core` primitives, breaks the discipline in exactly one way
//! (skip a fold, skip a fence, reorder WAL, …), runs it under the checker,
//! and records which rule it expects to fire. Under the simulator's ADR
//! model several of these mutants still produce correct *simulated* output
//! — the point is that the checker catches the latent discipline bug that
//! real hardware would punish.

use std::sync::{Arc, Mutex};

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use lp_core::parity::lane_of;
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_core::track::{RangeRole, TrackedRange};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, ThreadPlan};
use lp_sim::mem::PArray;
use lp_sim::prelude::CrashTrigger;

use crate::checker::Checker;
use crate::report::{Rule, ViolationReport};

/// One mutation's outcome.
#[derive(Debug)]
pub struct MutationOutcome {
    /// Mutation name (stable identifier).
    pub name: &'static str,
    /// The rule the mutation is designed to violate.
    pub expected: Rule,
    /// The checker's verdict over the mutated run.
    pub report: ViolationReport,
}

impl MutationOutcome {
    /// Whether the checker flagged the expected rule.
    pub fn flagged(&self) -> bool {
        self.report.flags(self.expected)
    }
}

/// The synthetic rig every mutation runs on: a 64-element protected array
/// plus the scheme's own structures, all tracked.
struct Rig {
    machine: Machine,
    arr: PArray<f64>,
    handles: SchemeHandles,
    ranges: Vec<TrackedRange>,
}

fn rig(scheme: Scheme, cores: usize) -> Rig {
    let mut machine = Machine::new(
        MachineConfig::default()
            .with_cores(cores)
            .with_nvmm_bytes(1 << 20),
    );
    let arr = machine.alloc::<f64>(64).expect("rig array");
    let handles = SchemeHandles::alloc(&mut machine, scheme, 16, cores, 64).expect("rig handles");
    let mut ranges = vec![TrackedRange::of("data", arr, RangeRole::Protected)];
    ranges.extend(handles.ranges());
    Rig {
        machine,
        arr,
        handles,
        ranges,
    }
}

/// Run `plans` on `machine` with a fresh checker installed; return the
/// verdict.
fn audit(
    mut machine: Machine,
    scheme: Scheme,
    ranges: Vec<TrackedRange>,
    plans: Vec<ThreadPlan<'static>>,
    label: &str,
) -> ViolationReport {
    let checker = Arc::new(Mutex::new(Checker::new(scheme, ranges, label)));
    machine.set_observer(checker.clone());
    machine.run(plans);
    machine.clear_observer();
    let report = checker.lock().unwrap().report();
    report
}

/// A Lazy region that "forgets" to fold one store into its running
/// checksum before persisting it (rule R2).
pub fn lp_skip_fold() -> MutationOutcome {
    let kind = ChecksumKind::Modular;
    let scheme = Scheme::Lazy(kind);
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let table = handles.table;
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(7);
        let mut ck = RunningChecksum::new(kind);
        for i in 0..8 {
            let v = (i + 1) as f64;
            ctx.store(arr, i, v);
            if i != 3 {
                // The forgotten UpdateCheckSum() of Figure 8.
                ck.update(v.to_bits());
            }
        }
        table.store(ctx, 7, ck.value());
        ctx.region_end();
    });
    MutationOutcome {
        name: "lp_skip_fold",
        expected: Rule::R2,
        report: audit(machine, scheme, ranges, plans, "mutation lp_skip_fold"),
    }
}

/// A store to protected memory issued before any region is opened
/// (rule R1).
pub fn store_outside_region() -> MutationOutcome {
    let kind = ChecksumKind::Modular;
    let scheme = Scheme::Lazy(kind);
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let table = handles.table;
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        // The stray store: protected data touched with no region open.
        ctx.store(arr, 0, 1.0);
        // Followed by a perfectly disciplined region elsewhere.
        ctx.region_begin(1);
        let mut ck = RunningChecksum::new(kind);
        for i in 8..16 {
            let v = i as f64;
            ctx.store(arr, i, v);
            ck.update(v.to_bits());
        }
        table.store(ctx, 1, ck.value());
        ctx.region_end();
    });
    MutationOutcome {
        name: "store_outside_region",
        expected: Rule::R1,
        report: audit(
            machine,
            scheme,
            ranges,
            plans,
            "mutation store_outside_region",
        ),
    }
}

/// An EagerRecompute region that flushes every line but advances its
/// durable marker without the covering `sfence` (rule R3).
pub fn ep_skip_fence() -> MutationOutcome {
    let scheme = Scheme::Eager;
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let markers = handles.markers;
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(2);
        for i in 0..8 {
            ctx.store(arr, i, (i + 1) as f64);
            ctx.clflushopt(arr.addr(i));
        }
        // Missing: ctx.sfence() — nothing orders the flushes before the
        // marker below.
        ctx.store(markers, 0, 3);
        ctx.clflushopt(markers.addr(0));
        ctx.sfence();
        ctx.region_end();
    });
    MutationOutcome {
        name: "ep_skip_fence",
        expected: Rule::R3,
        report: audit(machine, scheme, ranges, plans, "mutation ep_skip_fence"),
    }
}

/// An EagerRecompute region that fences but skipped the flush of one dirty
/// line (rule R3).
pub fn ep_skip_flush() -> MutationOutcome {
    let scheme = Scheme::Eager;
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let markers = handles.markers;
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(5);
        // One store per cache line (8 f64s per 64-byte line).
        for i in [0usize, 8, 16, 24] {
            ctx.store(arr, i, (i + 1) as f64);
            if i != 8 {
                // Line of arr[8] is left dirty in the cache.
                ctx.clflushopt(arr.addr(i));
            }
        }
        ctx.sfence();
        ctx.store(markers, 0, 6);
        ctx.clflushopt(markers.addr(0));
        ctx.sfence();
        ctx.region_end();
    });
    MutationOutcome {
        name: "ep_skip_flush",
        expected: Rule::R3,
        report: audit(machine, scheme, ranges, plans, "mutation ep_skip_flush"),
    }
}

/// A WAL transaction that performs its in-place data store *before* the
/// undo-log record is durably ordered (rule R4).
pub fn wal_data_before_log() -> MutationOutcome {
    let scheme = Scheme::Wal;
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let entries = handles.arenas[0].entries_array();
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(4);
        let old: f64 = ctx.load(arr, 0);
        // Reordered: data first…
        ctx.store(arr, 0, 9.0);
        // …then the log record, flushed and fenced — too late.
        ctx.store(entries, 0, arr.addr(0).0);
        ctx.clflushopt(entries.addr(0));
        ctx.store(entries, 1, old.to_bits());
        ctx.clflushopt(entries.addr(1));
        ctx.sfence();
        ctx.region_end();
    });
    MutationOutcome {
        name: "wal_data_before_log",
        expected: Rule::R4,
        report: audit(
            machine,
            scheme,
            ranges,
            plans,
            "mutation wal_data_before_log",
        ),
    }
}

/// Two regions on different cores, scheduled in the same round, writing
/// the same protected cache line (rule R5).
pub fn overlap_write_sets() -> MutationOutcome {
    let kind = ChecksumKind::Modular;
    let scheme = Scheme::Lazy(kind);
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 2);
    let table = handles.table;
    let mut plans = machine.plans();
    for (core, plan) in plans.iter_mut().enumerate() {
        plan.region(move |ctx| {
            ctx.region_begin(core);
            let mut ck = RunningChecksum::new(kind);
            // arr[0] and arr[1] share a cache line: overlapping write sets.
            let v = (core + 1) as f64;
            ctx.store(arr, core, v);
            ck.update(v.to_bits());
            table.store(ctx, core, ck.value());
            ctx.region_end();
        });
    }
    MutationOutcome {
        name: "overlap_write_sets",
        expected: Rule::R5,
        report: audit(
            machine,
            scheme,
            ranges,
            plans,
            "mutation overlap_write_sets",
        ),
    }
}

/// A later Lazy region rewrites a committed region's line before that
/// region's checksum reached NVMM — and commits without a fresh checksum
/// entry of its own (rule R6).
pub fn torn_rewrite() -> MutationOutcome {
    let kind = ChecksumKind::Modular;
    let scheme = Scheme::Lazy(kind);
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let table = handles.table;
    let mut plans = machine.plans();
    plans[0]
        .region(move |ctx| {
            // Disciplined region: data + checksum, no flush (that is LP).
            ctx.region_begin(10);
            let mut ck = RunningChecksum::new(kind);
            for i in 0..8 {
                let v = (i + 1) as f64;
                ctx.store(arr, i, v);
                ck.update(v.to_bits());
            }
            table.store(ctx, 10, ck.value());
            ctx.region_end();
        })
        .region(move |ctx| {
            // The mutant: rewrites the first region's line while that
            // checksum is still only in the cache, and records no fresh
            // checksum for the new bits.
            ctx.region_begin(11);
            ctx.store(arr, 0, -1.0);
            ctx.region_end();
        });
    MutationOutcome {
        name: "torn_rewrite",
        expected: Rule::R6,
        report: audit(machine, scheme, ranges, plans, "mutation torn_rewrite"),
    }
}

/// A crashed Eager run whose recovery persists its done-marker *before*
/// the data repairs it vouches for are flushed and fenced (rule R7): a
/// nested crash in that window would make the promise durable without
/// the repair, and the re-entry would trust it and skip the work.
pub fn recovery_marker_first() -> MutationOutcome {
    let scheme = Scheme::Eager;
    let Rig {
        mut machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let markers = handles.markers;
    let checker = Arc::new(Mutex::new(Checker::new(
        scheme,
        ranges,
        "mutation recovery_marker_first",
    )));
    machine.set_observer(checker.clone());
    // A perfectly disciplined forward region, crashed mid-way so the
    // checker enters recovery-audit mode.
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(0);
        for i in 0..8 {
            ctx.store(arr, i, (i + 1) as f64);
            ctx.clflushopt(arr.addr(i));
        }
        ctx.sfence();
        ctx.store(markers, 0, 1);
        ctx.clflushopt(markers.addr(0));
        ctx.sfence();
        ctx.region_end();
    });
    machine.set_crash_trigger(CrashTrigger::AfterMemOps(5));
    machine.run(plans);
    {
        // The mutant recovery: re-stores the data, then persists the
        // marker while the data lines are still dirty in the cache.
        let mut ctx = machine.ctx(0);
        for i in 0..8 {
            ctx.store(arr, i, (i + 1) as f64);
        }
        ctx.store(markers, 0, 1); // R7: the promise outruns the repair.
        ctx.clflushopt(markers.addr(0));
        ctx.sfence();
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
    }
    machine.clear_observer();
    let report = checker.lock().unwrap().report();
    MutationOutcome {
        name: "recovery_marker_first",
        expected: Rule::R7,
        report,
    }
}

/// A LazyParity region that publishes its parity line *before* the
/// region's protected stores are all issued (rule R8): a crash between
/// the early parity store and the remaining data stores leaves durable
/// parity summarizing data that never existed, so a later media repair
/// would reconstruct garbage and certify it.
pub fn parity_before_data() -> MutationOutcome {
    let kind = ChecksumKind::Crc32;
    let scheme = Scheme::LazyParity(kind);
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 1);
    let table = handles.table;
    let parity = handles.parity;
    let mut plans = machine.plans();
    plans[0].region(move |ctx| {
        ctx.region_begin(9);
        let mut ck = RunningChecksum::new(kind);
        let mut lanes = [0u64; 8];
        for i in 0..4 {
            let v = (i + 1) as f64;
            ctx.store(arr, i, v);
            ck.update(v.to_bits());
            lanes[lane_of(arr.addr(i))] ^= v.to_bits();
        }
        // The mutant: parity published mid-region, while half the stores
        // it will end up summarizing are still to come.
        parity.store_lanes(ctx, 9, &lanes);
        for i in 4..8 {
            let v = (i + 1) as f64;
            ctx.store(arr, i, v);
            ck.update(v.to_bits());
        }
        table.store(ctx, 9, ck.value());
        ctx.region_end();
    });
    MutationOutcome {
        name: "parity_before_data",
        expected: Rule::R8,
        report: audit(
            machine,
            scheme,
            ranges,
            plans,
            "mutation parity_before_data",
        ),
    }
}

/// Control: the same shape as the mutants but fully disciplined — the
/// checker must stay silent.
pub fn disciplined_control(scheme: Scheme) -> ViolationReport {
    let Rig {
        machine,
        arr,
        handles,
        ranges,
    } = rig(scheme, 2);
    let mut plans = machine.plans();
    for (core, plan) in plans.iter_mut().enumerate() {
        let tp = handles.thread(core);
        plan.region(move |ctx| {
            let mut rs = tp.begin(ctx, core);
            // 8 f64s per line: cores write disjoint lines.
            for i in 0..8 {
                tp.store(ctx, &mut rs, arr, core * 8 + i, (i + 1) as f64);
            }
            tp.commit(ctx, rs);
        });
    }
    audit(
        machine,
        scheme,
        ranges,
        plans,
        &format!("control under {scheme}"),
    )
}

/// Run every mutation.
pub fn run_all() -> Vec<MutationOutcome> {
    vec![
        lp_skip_fold(),
        store_outside_region(),
        ep_skip_fence(),
        ep_skip_flush(),
        wal_data_before_log(),
        overlap_write_sets(),
        torn_rewrite(),
        recovery_marker_first(),
        parity_before_data(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mutation_is_flagged_with_its_rule() {
        for outcome in run_all() {
            assert!(
                outcome.flagged(),
                "{} did not flag {}:\n{}",
                outcome.name,
                outcome.expected,
                outcome.report
            );
        }
    }

    #[test]
    fn mutations_cover_all_rules() {
        let covered: std::collections::HashSet<Rule> =
            run_all().into_iter().map(|o| o.expected).collect();
        assert_eq!(covered.len(), Rule::ALL.len());
    }

    #[test]
    fn disciplined_controls_are_clean() {
        for scheme in [
            Scheme::Base,
            Scheme::lazy_default(),
            Scheme::lazy_parity_default(),
            Scheme::LazyEagerCk(ChecksumKind::Modular),
            Scheme::Eager,
            Scheme::Wal,
        ] {
            let report = disciplined_control(scheme);
            assert!(report.is_clean(), "{report}");
            assert!(report.events_seen > 0, "{scheme}: no events observed");
        }
    }

    #[test]
    fn mutation_names_are_unique() {
        let names: std::collections::HashSet<&str> = run_all().iter().map(|o| o.name).collect();
        assert_eq!(names.len(), run_all().len());
    }
}

//! `lp-check` CLI: audit every shipped kernel under every scheme with the
//! persistency sanitizer, then run the mutation suite that proves the
//! rules fire when the discipline is broken.
//!
//! ```text
//! lp-check               # clean runs + mutation suite (test scale)
//! lp-check --kernels     # clean kernel × scheme audits only
//! lp-check --mutations   # mutation suite only
//! lp-check --verbose     # also print per-run event counts
//! ```
//!
//! Exits non-zero if any clean run reports a violation (or fails output
//! verification), or if any mutation escapes its expected rule.

use lp_check::{check_kernel, default_config, default_schemes, mutations};
use lp_kernels::driver::{KernelId, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    let only_kernels = args.iter().any(|a| a == "--kernels");
    let only_mutations = args.iter().any(|a| a == "--mutations");
    if let Some(bad) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--verbose" | "-v" | "--kernels" | "--mutations"))
    {
        eprintln!("lp-check: unknown argument `{bad}`");
        eprintln!("usage: lp-check [--kernels] [--mutations] [--verbose]");
        std::process::exit(2);
    }
    let run_kernels = only_kernels || !only_mutations;
    let run_mutations = only_mutations || !only_kernels;
    let mut failures = 0usize;

    if run_kernels {
        println!("== clean runs: kernels x schemes (test scale) ==");
        let cfg = default_config();
        for kernel in KernelId::ALL {
            for scheme in default_schemes() {
                let run = check_kernel(kernel, Scale::Test, &cfg, scheme);
                let clean = run.report.is_clean();
                let ok = clean && run.verified;
                if !ok {
                    failures += 1;
                }
                let status = match (clean, run.verified) {
                    (true, true) => "ok".to_string(),
                    (false, _) => format!("{} violation(s)", run.report.violations.len()),
                    (true, false) => "output verification FAILED".to_string(),
                };
                if verbose || !ok {
                    println!(
                        "  {:8} x {:22} {} ({} events)",
                        kernel.name(),
                        scheme.name(),
                        status,
                        run.report.events_seen
                    );
                } else {
                    println!("  {:8} x {:22} {}", kernel.name(), scheme.name(), status);
                }
                if !clean {
                    println!("{}", run.report);
                }
            }
        }
    }

    if run_mutations {
        println!("== mutation suite: broken disciplines the checker must flag ==");
        for outcome in mutations::run_all() {
            let flagged = outcome.flagged();
            if !flagged {
                failures += 1;
            }
            println!(
                "  {:24} expects {} ... {}",
                outcome.name,
                outcome.expected,
                if flagged { "flagged" } else { "MISSED" }
            );
            if verbose || !flagged {
                for v in &outcome.report.violations {
                    println!("    {v}");
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("lp-check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("lp-check: all checks passed");
}

//! The shadow-state rule engine: an [`EventSink`] that replays the
//! simulator's memory-event stream against the persistency contract of the
//! scheme in force.
//!
//! The checker is deliberately *redundant* with the scheme runtimes in
//! `lp-core` — it re-derives what each rule requires from raw stores,
//! flushes, fences, and durable writebacks, so a bug (or a deliberate
//! mutation) in the runtime shows up as a disagreement. Note that under the
//! simulator's ADR model some mutations do not corrupt the simulated
//! output (an accepted flush is already durable); the checker enforces the
//! discipline real hardware needs, not merely what this model forgives.

use std::collections::{HashMap, HashSet};

use lp_core::checksum::RunningChecksum;
use lp_core::scheme::Scheme;
use lp_core::table::ChecksumTable;
use lp_core::track::{RangeRole, TrackedRange};
use lp_sim::addr::Addr;
use lp_sim::observe::{EventSink, MemEvent, RegionId};

use crate::report::{describe_addr, Rule, Violation, ViolationReport};

/// Durability progress of one cache line relative to a reference point
/// (region start or undo-log write): stored, flushed, or flushed *and*
/// covered by a later `sfence`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineStage {
    /// Stored since the last flush of the line.
    Dirty,
    /// `clflushopt`/`clwb` issued after the last store; not yet fenced.
    Flushed,
    /// Flushed and a subsequent `sfence` retired on the issuing core.
    Fenced,
}

/// Shadow state of one open persistency region.
#[derive(Debug)]
struct OpenRegion {
    id: RegionId,
    key: usize,
    /// Checker-side recomputation of the running checksum (Lazy schemes).
    ck: Option<RunningChecksum>,
    /// Whether a checksum-table entry was stored by this region.
    ck_stored: bool,
    /// Line of the region's checksum-table entry (for R6 pending state).
    ck_line: Option<u64>,
    /// Protected lines written by the region and their flush progress
    /// (drives R3 under Eager; the key set drives R6 under Lazy).
    protected: HashMap<u64, LineStage>,
    /// Undo-log (`WalEntries`) lines written and their flush progress.
    log_lines: HashMap<u64, LineStage>,
    /// Target address → the log lines its undo record was written to.
    logged: HashMap<u64, Vec<u64>>,
    /// Target address of the last even-slot log store, awaiting its
    /// old-bits companion.
    last_log_target: Option<u64>,
    /// Lines this region rewrote that belong to an earlier committed Lazy
    /// region whose checksum is not yet durable.
    rewrites: Vec<(Addr, RegionId)>,
    /// Whether a parity-arena line was stored by this region (drives R8:
    /// parity is a summary of the region's data and must be published
    /// last, so no protected store may follow it).
    parity_stored: bool,
}

impl OpenRegion {
    fn new(id: RegionId, key: usize, scheme: Scheme) -> Self {
        OpenRegion {
            id,
            key,
            ck: match scheme {
                Scheme::Lazy(kind) | Scheme::LazyEagerCk(kind) | Scheme::LazyParity(kind) => {
                    Some(RunningChecksum::new(kind))
                }
                _ => None,
            },
            ck_stored: false,
            ck_line: None,
            protected: HashMap::new(),
            log_lines: HashMap::new(),
            logged: HashMap::new(),
            last_log_target: None,
            rewrites: Vec::new(),
            parity_stored: false,
        }
    }

    /// Promote every `Flushed` line to `Fenced` (an `sfence` retired).
    fn fence(&mut self) {
        for stage in self
            .protected
            .values_mut()
            .chain(self.log_lines.values_mut())
        {
            if *stage == LineStage::Flushed {
                *stage = LineStage::Fenced;
            }
        }
    }

    /// Record a flush of `line` issued by the owning core.
    fn flush(&mut self, line: u64) {
        for map in [&mut self.protected, &mut self.log_lines] {
            if let Some(stage) = map.get_mut(&line) {
                if *stage == LineStage::Dirty {
                    *stage = LineStage::Flushed;
                }
            }
        }
    }
}

/// A committed Lazy region whose checksum-table line has not yet reached
/// NVMM: its write set is vulnerable to torn rewrites (rule R6).
#[derive(Debug)]
struct PendingChecksum {
    region: RegionId,
    ck_line: u64,
    lines: HashSet<u64>,
}

/// The persistency-discipline sanitizer.
///
/// Install on a machine via [`lp_sim::machine::Machine::set_observer`]
/// (wrapped in `Arc<Mutex<…>>`), run the workload, then collect
/// [`Checker::report`]. See the crate docs for the rules.
#[derive(Debug)]
pub struct Checker {
    scheme: Scheme,
    ranges: Vec<TrackedRange>,
    label: String,
    violations: Vec<Violation>,
    events_seen: u64,
    crashed: bool,
    /// Open region per core (indexed by core id, grown on demand).
    open: Vec<Option<OpenRegion>>,
    /// First protected writer of each line in the current barrier epoch.
    epoch_writers: HashMap<u64, (usize, RegionId)>,
    /// Lines already reported for R5 this epoch (dedup).
    epoch_reported: HashSet<u64>,
    /// Committed Lazy regions awaiting checksum durability (R6).
    pending: Vec<PendingChecksum>,
    /// Protected lines stored by post-crash *recovery* code and their
    /// flush progress (drives R7). Cleared at every crash: unfenced
    /// recovery stores die with the caches, so a re-entry starts clean.
    rec_lines: HashMap<u64, LineStage>,
}

impl Checker {
    /// A checker for one run of `label` under `scheme`, auditing the given
    /// address ranges.
    pub fn new(scheme: Scheme, ranges: Vec<TrackedRange>, label: impl Into<String>) -> Self {
        Checker {
            scheme,
            ranges,
            label: label.into(),
            violations: Vec::new(),
            events_seen: 0,
            crashed: false,
            open: Vec::new(),
            epoch_writers: HashMap::new(),
            epoch_reported: HashSet::new(),
            pending: Vec::new(),
            rec_lines: HashMap::new(),
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Snapshot the verdict.
    pub fn report(&self) -> ViolationReport {
        ViolationReport {
            label: self.label.clone(),
            violations: self.violations.clone(),
            events_seen: self.events_seen,
            crashed: self.crashed,
        }
    }

    #[allow(clippy::too_many_arguments)] // one parameter per Violation field
    fn flag(
        &mut self,
        rule: Rule,
        core: usize,
        cycle: u64,
        addr: Option<Addr>,
        region: Option<RegionId>,
        key: Option<usize>,
        detail: String,
    ) {
        let location = match addr {
            Some(a) => describe_addr(&self.ranges, a),
            None => "<no address>".into(),
        };
        self.violations.push(Violation {
            rule,
            core,
            cycle,
            addr,
            location,
            region,
            key,
            detail,
        });
    }

    fn role_of(&self, addr: Addr) -> Option<(RangeRole, usize)> {
        self.ranges
            .iter()
            .position(|r| r.contains(addr))
            .map(|i| (self.ranges[i].role, i))
    }

    fn open_mut(&mut self, core: usize) -> &mut Option<OpenRegion> {
        if core >= self.open.len() {
            self.open.resize_with(core + 1, || None);
        }
        &mut self.open[core]
    }

    fn on_store(
        &mut self,
        core: usize,
        cycle: u64,
        addr: Addr,
        bits: u64,
        region: Option<RegionId>,
    ) {
        let role = self.role_of(addr).map(|(role, _)| role);
        if region.is_none() {
            if role == Some(RangeRole::Protected) {
                self.flag(
                    Rule::R1,
                    core,
                    cycle,
                    Some(addr),
                    None,
                    None,
                    format!("value bits {bits:#018x} written with no region open"),
                );
            }
            return;
        }
        // Move the open-region shadow state out of `self` for the duration
        // of the checks so rule code can borrow the rest of the checker
        // freely; it is put back (region still open) at the end.
        let Some(mut open) = self.open_mut(core).take() else {
            // A region id without a tracked begin cannot happen through
            // CoreCtx, which assigns ids at region_begin.
            return;
        };
        let line = addr.line().0;
        let (region_id, key) = (open.id, open.key);
        let mut findings: Vec<(Rule, String)> = Vec::new();
        match role {
            Some(RangeRole::Protected) => {
                // R5: overlapping write sets across cores in one epoch.
                match self.epoch_writers.get(&line) {
                    Some(&(other_core, other_region)) if other_core != core => {
                        if self.epoch_reported.insert(line) {
                            findings.push((
                                Rule::R5,
                                format!(
                                    "line L{line:#x} also written by core \
                                     {other_core} ({other_region}) in the same \
                                     scheduling epoch"
                                ),
                            ));
                        }
                    }
                    Some(_) => {}
                    None => {
                        self.epoch_writers.insert(line, (core, region_id));
                    }
                }
                // R8: parity summarizes the region's protected stores, so
                // a protected store after the parity publication leaves a
                // crash window where durable parity describes data that
                // never reached NVMM — a later repair would reconstruct
                // from the wrong lanes.
                if open.parity_stored {
                    findings.push((
                        Rule::R8,
                        format!(
                            "protected store of bits {bits:#018x} after the \
                             region's parity line was already published"
                        ),
                    ));
                }
                // R6: rewrite of a committed-but-not-durable Lazy line.
                if matches!(self.scheme, Scheme::Lazy(_) | Scheme::LazyParity(_)) {
                    if let Some(p) = self
                        .pending
                        .iter()
                        .find(|p| p.region != region_id && p.lines.contains(&line))
                    {
                        open.rewrites.push((addr, p.region));
                    }
                }
                // R4: WAL in-place data store must follow its durable
                // undo-log record.
                if matches!(self.scheme, Scheme::Wal) {
                    let ordered = open.logged.get(&addr.0).is_some_and(|lines| {
                        lines
                            .iter()
                            .all(|l| open.log_lines.get(l) == Some(&LineStage::Fenced))
                    });
                    if !ordered {
                        let why = if open.logged.contains_key(&addr.0) {
                            "its undo-log entry was written but not yet \
                             flushed and fenced"
                        } else {
                            "no undo-log entry records its old value"
                        };
                        findings.push((
                            Rule::R4,
                            format!("in-place store of bits {bits:#018x}: {why}"),
                        ));
                    }
                }
                // Fold for R2 and track the line for R3/R6.
                if let Some(ck) = open.ck.as_mut() {
                    ck.update(bits);
                }
                open.protected.insert(line, LineStage::Dirty);
            }
            Some(RangeRole::ChecksumTable) => {
                if let Some(ck) = open.ck.as_ref() {
                    let expected = ChecksumTable::sanitize_value(ck.value());
                    if bits != expected {
                        findings.push((
                            Rule::R2,
                            format!(
                                "persisted checksum {bits:#018x} disagrees with \
                                 {expected:#018x} recomputed from the region's \
                                 observed stores"
                            ),
                        ));
                    }
                    open.ck_stored = true;
                    open.ck_line = Some(line);
                }
            }
            Some(RangeRole::Markers) => {
                if matches!(self.scheme, Scheme::Eager) {
                    let unfenced: Vec<u64> = open
                        .protected
                        .iter()
                        .filter(|&(_, stage)| *stage != LineStage::Fenced)
                        .map(|(&l, _)| l)
                        .collect();
                    if !unfenced.is_empty() {
                        let still_dirty = open
                            .protected
                            .values()
                            .filter(|&&s| s == LineStage::Dirty)
                            .count();
                        findings.push((
                            Rule::R3,
                            format!(
                                "marker value {bits} stored while {} region \
                                 line(s) lack a covering flush+sfence ({} never \
                                 flushed), e.g. L{:#x}",
                                unfenced.len(),
                                still_dirty,
                                unfenced[0]
                            ),
                        ));
                    }
                }
            }
            Some(RangeRole::WalEntries) => {
                let idx = self
                    .ranges
                    .iter()
                    .find(|r| r.contains(addr))
                    .map_or(0, |r| r.element_of(addr));
                if idx % 2 == 0 {
                    // Even slot: the target address of a new record.
                    open.last_log_target = Some(bits);
                    open.logged.entry(bits).or_default().push(line);
                } else if let Some(target) = open.last_log_target {
                    // Odd slot: the record's old bits.
                    open.logged.entry(target).or_default().push(line);
                }
                open.log_lines.insert(line, LineStage::Dirty);
            }
            Some(RangeRole::ParityArena) => {
                open.parity_stored = true;
            }
            Some(RangeRole::WalHeader | RangeRole::Scratch) | None => {}
        }
        *self.open_mut(core) = Some(open);
        for (rule, detail) in findings {
            self.flag(rule, core, cycle, Some(addr), region, Some(key), detail);
        }
        debug_assert_eq!(Some(region_id), region);
    }

    fn on_commit(&mut self, core: usize, cycle: u64, region: RegionId, key: usize) {
        let Some(open) = self.open_mut(core).take() else {
            return;
        };
        if matches!(self.scheme, Scheme::Lazy(_) | Scheme::LazyParity(_)) {
            if !open.rewrites.is_empty() && !open.ck_stored {
                let (addr, victim) = open.rewrites[0];
                self.flag(
                    Rule::R6,
                    core,
                    cycle,
                    Some(addr),
                    Some(region),
                    Some(key),
                    format!(
                        "region rewrote {} line(s) of committed {victim} whose \
                         checksum has not reached NVMM, and committed without a \
                         fresh checksum entry",
                        open.rewrites.len()
                    ),
                );
            }
            if let Some(ck_line) = open.ck_line {
                self.pending.push(PendingChecksum {
                    region: open.id,
                    ck_line,
                    lines: open.protected.keys().copied().collect(),
                });
            }
        }
    }

    fn handle(&mut self, ev: &MemEvent) {
        match *ev {
            MemEvent::Store {
                core,
                cycle,
                addr,
                bits,
                region,
                ..
            } => self.on_store(core, cycle, addr, bits, region),
            MemEvent::Load { .. } => {}
            MemEvent::Flush { core, line, .. } => {
                if let Some(open) = self.open_mut(core).as_mut() {
                    open.flush(line.0);
                }
            }
            MemEvent::Sfence { core, .. } => {
                if let Some(open) = self.open_mut(core).as_mut() {
                    open.fence();
                }
            }
            MemEvent::LineDurable { line, .. } => {
                self.pending.retain(|p| p.ck_line != line.0);
            }
            MemEvent::Barrier { .. } => {
                self.epoch_writers.clear();
                self.epoch_reported.clear();
            }
            MemEvent::RegionBegin {
                core, region, key, ..
            } => {
                *self.open_mut(core) = Some(OpenRegion::new(region, key, self.scheme));
            }
            MemEvent::RegionCommit {
                core,
                cycle,
                region,
                key,
            } => self.on_commit(core, cycle, region, key),
            MemEvent::Crash { .. } => {
                // The run's forward rules stop here (caches are gone,
                // regions torn by design); the stream re-arms in
                // recovery-audit mode, where only R7 applies.
                self.crashed = true;
            }
        }
    }

    /// Recovery-audit mode: every event after a crash is audited against
    /// R7 alone. Recovery must converge under a nested crash, so a
    /// *progress* store — a marker, WAL header, or checksum-table entry a
    /// re-entry would trust — may only be issued once every protected
    /// line recovery has stored is flushed and fenced; otherwise the
    /// promise can become durable before the data it vouches for and the
    /// re-entry skips the repair.
    fn on_recovery_event(&mut self, ev: &MemEvent) {
        match *ev {
            MemEvent::Store {
                core,
                cycle,
                addr,
                bits,
                region,
                ..
            } => match self.role_of(addr).map(|(role, _)| role) {
                Some(RangeRole::Protected) => {
                    self.rec_lines.insert(addr.line().0, LineStage::Dirty);
                }
                Some(RangeRole::ParityArena) => {
                    // R8 in recovery: parity vouches for repaired data, so
                    // it may only be (re)published once every protected
                    // recovery store is flushed and fenced — otherwise a
                    // nested crash persists parity for data that died in
                    // the caches.
                    let mut unfenced: Vec<u64> = self
                        .rec_lines
                        .iter()
                        .filter(|&(_, stage)| *stage != LineStage::Fenced)
                        .map(|(&l, _)| l)
                        .collect();
                    if !unfenced.is_empty() {
                        unfenced.sort_unstable();
                        self.flag(
                            Rule::R8,
                            core,
                            cycle,
                            Some(addr),
                            region,
                            None,
                            format!(
                                "recovery parity line {bits:#018x} stored while \
                                 {} protected recovery line(s) lack a covering \
                                 flush+sfence, e.g. L{:#x}",
                                unfenced.len(),
                                unfenced[0]
                            ),
                        );
                    }
                }
                Some(RangeRole::Markers | RangeRole::WalHeader | RangeRole::ChecksumTable) => {
                    let mut unfenced: Vec<u64> = self
                        .rec_lines
                        .iter()
                        .filter(|&(_, stage)| *stage != LineStage::Fenced)
                        .map(|(&l, _)| l)
                        .collect();
                    if !unfenced.is_empty() {
                        unfenced.sort_unstable();
                        self.flag(
                            Rule::R7,
                            core,
                            cycle,
                            Some(addr),
                            region,
                            None,
                            format!(
                                "recovery progress value {bits:#018x} stored while                                  {} protected recovery line(s) lack a covering                                  flush+sfence, e.g. L{:#x}",
                                unfenced.len(),
                                unfenced[0]
                            ),
                        );
                    }
                }
                _ => {}
            },
            MemEvent::Flush { line, .. } => {
                if let Some(stage) = self.rec_lines.get_mut(&line.0) {
                    if *stage == LineStage::Dirty {
                        *stage = LineStage::Flushed;
                    }
                }
            }
            MemEvent::Sfence { .. } => {
                for stage in self.rec_lines.values_mut() {
                    if *stage == LineStage::Flushed {
                        *stage = LineStage::Fenced;
                    }
                }
            }
            MemEvent::Crash { .. } => self.rec_lines.clear(),
            _ => {}
        }
    }
}

impl EventSink for Checker {
    fn on_event(&mut self, ev: &MemEvent) {
        self.events_seen += 1;
        if self.crashed {
            self.on_recovery_event(ev);
        } else {
            self.handle(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_core::checksum::ChecksumKind;
    use lp_core::track::TrackedRange;
    use lp_sim::addr::LineAddr;
    use lp_sim::stats::WriteCause;

    fn ranges() -> Vec<TrackedRange> {
        vec![
            TrackedRange {
                name: "data".into(),
                base: Addr(0),
                bytes: 512,
                elem_bytes: 8,
                role: RangeRole::Protected,
            },
            TrackedRange {
                name: "ck".into(),
                base: Addr(1024),
                bytes: 64,
                elem_bytes: 8,
                role: RangeRole::ChecksumTable,
            },
            TrackedRange {
                name: "mk".into(),
                base: Addr(2048),
                bytes: 64,
                elem_bytes: 8,
                role: RangeRole::Markers,
            },
        ]
    }

    fn store(core: usize, addr: u64, bits: u64, region: Option<RegionId>) -> MemEvent {
        MemEvent::Store {
            core,
            cycle: 0,
            addr: Addr(addr),
            bits,
            size: 8,
            region,
        }
    }

    #[test]
    fn r1_fires_outside_regions_only() {
        let mut c = Checker::new(Scheme::lazy_default(), ranges(), "t");
        c.on_event(&store(0, 8, 42, None));
        assert!(c.report().flags(Rule::R1));

        let mut c = Checker::new(Scheme::lazy_default(), ranges(), "t");
        c.on_event(&MemEvent::RegionBegin {
            core: 0,
            cycle: 0,
            region: RegionId(1),
            key: 0,
        });
        c.on_event(&store(0, 8, 42, Some(RegionId(1))));
        assert!(!c.report().flags(Rule::R1));
    }

    #[test]
    fn r2_catches_a_skipped_fold() {
        let kind = ChecksumKind::Modular;
        for skip in [false, true] {
            let mut c = Checker::new(Scheme::Lazy(kind), ranges(), "t");
            c.on_event(&MemEvent::RegionBegin {
                core: 0,
                cycle: 0,
                region: RegionId(1),
                key: 2,
            });
            let mut ck = RunningChecksum::new(kind);
            for i in 0..4u64 {
                let bits = 100 + i;
                c.on_event(&store(0, i * 8, bits, Some(RegionId(1))));
                if !(skip && i == 1) {
                    ck.update(bits);
                }
            }
            let entry = ChecksumTable::sanitize_value(ck.value());
            c.on_event(&store(0, 1024 + 16, entry, Some(RegionId(1))));
            assert_eq!(c.report().flags(Rule::R2), skip, "skip={skip}");
        }
    }

    #[test]
    fn r5_needs_two_cores_in_one_epoch() {
        let mut c = Checker::new(Scheme::Base, ranges(), "t");
        for core in 0..2 {
            c.on_event(&MemEvent::RegionBegin {
                core,
                cycle: 0,
                region: RegionId(core as u64),
                key: core,
            });
        }
        // Same core twice: fine. Other core, same line: R5.
        c.on_event(&store(0, 0, 1, Some(RegionId(0))));
        c.on_event(&store(0, 8, 1, Some(RegionId(0))));
        assert!(!c.report().flags(Rule::R5));
        c.on_event(&store(1, 16, 1, Some(RegionId(1))));
        assert!(c.report().flags(Rule::R5));

        // After a barrier the epoch resets.
        let mut c = Checker::new(Scheme::Base, ranges(), "t");
        for core in 0..2 {
            c.on_event(&MemEvent::RegionBegin {
                core,
                cycle: 0,
                region: RegionId(core as u64),
                key: core,
            });
        }
        c.on_event(&store(0, 0, 1, Some(RegionId(0))));
        c.on_event(&MemEvent::Barrier { cycle: 5 });
        c.on_event(&store(1, 16, 1, Some(RegionId(1))));
        assert!(!c.report().flags(Rule::R5));
    }

    #[test]
    fn r6_pending_clears_when_checksum_line_is_durable() {
        let kind = ChecksumKind::Modular;
        for durable_first in [false, true] {
            let mut c = Checker::new(Scheme::Lazy(kind), ranges(), "t");
            // Region 1 stores data + checksum, commits.
            c.on_event(&MemEvent::RegionBegin {
                core: 0,
                cycle: 0,
                region: RegionId(1),
                key: 0,
            });
            let mut ck = RunningChecksum::new(kind);
            ck.update(7);
            c.on_event(&store(0, 0, 7, Some(RegionId(1))));
            c.on_event(&store(
                0,
                1024,
                ChecksumTable::sanitize_value(ck.value()),
                Some(RegionId(1)),
            ));
            c.on_event(&MemEvent::RegionCommit {
                core: 0,
                cycle: 1,
                region: RegionId(1),
                key: 0,
            });
            if durable_first {
                c.on_event(&MemEvent::LineDurable {
                    line: LineAddr(1024 >> 6),
                    cycle: 2,
                    cause: WriteCause::Flush,
                });
            }
            // Region 2 rewrites the same line and commits with no checksum.
            c.on_event(&MemEvent::RegionBegin {
                core: 0,
                cycle: 3,
                region: RegionId(2),
                key: 1,
            });
            c.on_event(&store(0, 8, 9, Some(RegionId(2))));
            c.on_event(&MemEvent::RegionCommit {
                core: 0,
                cycle: 4,
                region: RegionId(2),
                key: 1,
            });
            assert_eq!(
                c.report().flags(Rule::R6),
                !durable_first,
                "durable_first={durable_first}"
            );
        }
    }

    #[test]
    fn r7_fires_on_progress_before_fenced_recovery_data() {
        for disciplined in [false, true] {
            let mut c = Checker::new(Scheme::Eager, ranges(), "t");
            c.on_event(&MemEvent::Crash { cycle: 1 });
            // Recovery repairs protected data…
            c.on_event(&store(0, 8, 42, None));
            if disciplined {
                c.on_event(&MemEvent::Flush {
                    core: 0,
                    cycle: 2,
                    line: LineAddr(0),
                    keep: false,
                    region: None,
                });
                c.on_event(&MemEvent::Sfence {
                    core: 0,
                    cycle: 3,
                    region: None,
                });
            }
            // …then stores its progress marker.
            c.on_event(&store(0, 2048, 1, None));
            assert_eq!(c.report().flags(Rule::R7), !disciplined, "{disciplined}");
        }
    }

    #[test]
    fn r7_rearms_clean_after_a_nested_crash() {
        let mut c = Checker::new(Scheme::Eager, ranges(), "t");
        c.on_event(&MemEvent::Crash { cycle: 1 });
        c.on_event(&store(0, 8, 42, None)); // unfenced, but then…
        c.on_event(&MemEvent::Crash { cycle: 2 }); // …lost with the caches
        c.on_event(&store(0, 2048, 1, None));
        assert!(!c.report().flags(Rule::R7));
    }

    #[test]
    fn crash_stops_the_audit() {
        let mut c = Checker::new(Scheme::lazy_default(), ranges(), "t");
        c.on_event(&MemEvent::Crash { cycle: 9 });
        c.on_event(&store(0, 8, 42, None)); // would be R1 pre-crash
        let rep = c.report();
        assert!(rep.crashed);
        assert!(rep.is_clean());
    }
}

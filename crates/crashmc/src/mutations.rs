//! Mutation workloads: seven tiny programs, each violating exactly one
//! persistency-discipline rule, for which the model checker must find at
//! least one reachable crash state that recovery cannot repair.
//!
//! These mirror the seven `lp-check` lint mutations (same names, same
//! bug classes) but are *not* the lint rigs: a lint flags the violating
//! instruction sequence, whereas the checker must exhibit a concrete
//! post-crash NVMM image on which the scheme's recovery silently
//! corrupts data or gets stuck. Each rig therefore carries its own
//! honest recovery routine — the recovery a correct implementation of
//! the scheme would run — so every flagged state is attributable to the
//! injected discipline bug, not to sloppy recovery code.
//!
//! Every rig keeps the undetermined-line census at the interesting crash
//! points within `K = 4`, so the CI smoke budget enumerates the failing
//! subset exhaustively rather than hoping to sample it.

use lp_core::checksum::{checksum_f64s, ChecksumKind, RunningChecksum};
use lp_core::recovery::{region_consistent, RecoveryStats};
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_sim::config::MachineConfig;
use lp_sim::machine::Machine;
use lp_sim::mem::PArray;

use crate::mc::{CheckCase, PreparedCase};

const CK: ChecksumKind = ChecksumKind::Modular;

/// A fresh rig machine: `cores` cores, 1 MiB NVMM, a 64-element `f64`
/// working array (zeroed), and the scheme's support structures.
pub(crate) fn rig(cores: usize, scheme: Scheme) -> (Machine, PArray<f64>, SchemeHandles) {
    let mut machine = Machine::new(
        MachineConfig::default()
            .with_cores(cores)
            .with_nvmm_bytes(1 << 20),
    );
    let arr = machine.alloc::<f64>(64).expect("rig array");
    for i in 0..64 {
        machine.poke(arr, i, 0.0);
    }
    let handles = SchemeHandles::alloc(&mut machine, scheme, 16, cores, 64).expect("rig handles");
    (machine, arr, handles)
}

/// Eagerly persist `arr[i] = v` (store + flush; callers fence).
fn eager_store(ctx: &mut lp_sim::core::CoreCtx<'_>, arr: PArray<f64>, i: usize, v: f64) {
    ctx.store(arr, i, v);
    ctx.clflushopt(arr.addr(i));
}

/// LP region skips folding one store into its checksum: the unfolded
/// line can be lost in a crash without the recomputed checksum noticing
/// (a zero line folds to the same Modular sum), so recovery declares the
/// region consistent over corrupt data.
pub fn lp_skip_fold() -> CheckCase {
    const KEY: usize = 7;
    const VALS: [(usize, f64); 3] = [(0, 3.5), (8, -1.25), (16, 7.0)];
    CheckCase {
        name: "mut:lp_skip_fold".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Lazy(CK));
            let table = handles.table;
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.region_begin(KEY);
                let mut ck = RunningChecksum::new(CK);
                for (n, (i, v)) in VALS.into_iter().enumerate() {
                    ctx.store(arr, i, v);
                    if n < 2 {
                        ck.update(v.to_bits());
                    } // BUG: the third store is never folded
                }
                table.store(ctx, KEY, ck.value());
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    let mut ctx = m.ctx(0);
                    let idx = VALS.iter().map(|&(i, _)| i);
                    if !region_consistent(&mut ctx, &table, KEY, CK, arr, idx) {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        for (i, v) in VALS {
                            eager_store(&mut ctx, arr, i, v);
                        }
                        ctx.sfence();
                        let vs: Vec<f64> = VALS.iter().map(|&(_, v)| v).collect();
                        table.store(&mut ctx, KEY, checksum_f64s(CK, &vs));
                        table.persist(&mut ctx, KEY);
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| VALS.iter().all(|&(i, v)| m.peek(arr, i) == v)),
            }
        }),
    }
}

/// A store to protected data lands outside any region: no checksum
/// covers it, so a crash that loses its line leaves recovery nothing to
/// notice or repair.
pub fn store_outside_region() -> CheckCase {
    const KEY: usize = 1;
    CheckCase {
        name: "mut:store_outside_region".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Lazy(CK));
            let table = handles.table;
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.store(arr, 0, 5.0); // BUG: unprotected store, no region
                ctx.region_begin(KEY);
                ctx.store(arr, 8, 2.0);
                ctx.store(arr, 9, 4.0);
                table.store(ctx, KEY, checksum_f64s(CK, &[2.0, 4.0]));
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    let mut ctx = m.ctx(0);
                    if !region_consistent(&mut ctx, &table, KEY, CK, arr, [8, 9].into_iter()) {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        eager_store(&mut ctx, arr, 8, 2.0);
                        eager_store(&mut ctx, arr, 9, 4.0);
                        ctx.sfence();
                        table.store(&mut ctx, KEY, checksum_f64s(CK, &[2.0, 4.0]));
                        table.persist(&mut ctx, KEY);
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| {
                    m.peek(arr, 0) == 5.0 && m.peek(arr, 8) == 2.0 && m.peek(arr, 9) == 4.0
                }),
            }
        }),
    }
}

/// EagerRecompute region omits the fence between its data flushes and
/// the marker update: a crash can persist the marker while a data flush
/// is still in flight, so recovery trusts a region whose data never
/// arrived.
pub fn ep_skip_fence() -> CheckCase {
    const KEY: usize = 2;
    const VALS: [(usize, f64); 2] = [(0, 1.5), (8, 2.5)];
    CheckCase {
        name: "mut:ep_skip_fence".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Eager);
            let markers = handles.markers;
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.region_begin(KEY);
                for (i, v) in VALS {
                    eager_store(ctx, arr, i, v);
                }
                // BUG: no sfence before the marker — data flushes are
                // still retirable when the marker becomes durable.
                ctx.store(markers, 0, KEY as u64 + 1);
                ctx.clflushopt(markers.addr(0));
                ctx.sfence();
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    let marker = m.peek(markers, 0);
                    if marker != KEY as u64 + 1 {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        let mut ctx = m.ctx(0);
                        for (i, v) in VALS {
                            eager_store(&mut ctx, arr, i, v);
                        }
                        ctx.sfence();
                        ctx.store(markers, 0, KEY as u64 + 1);
                        ctx.clflushopt(markers.addr(0));
                        ctx.sfence();
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| VALS.iter().all(|&(i, v)| m.peek(arr, i) == v)),
            }
        }),
    }
}

/// EagerRecompute region forgets to flush one of its stores: the line
/// can sit dirty in cache while the (properly fenced) marker commits,
/// and a crash then loses data the marker vouches for.
pub fn ep_skip_flush() -> CheckCase {
    const KEY: usize = 5;
    const VALS: [(usize, f64); 3] = [(0, 1.0), (8, 2.0), (16, 3.0)];
    CheckCase {
        name: "mut:ep_skip_flush".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Eager);
            let markers = handles.markers;
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.region_begin(KEY);
                for (n, (i, v)) in VALS.into_iter().enumerate() {
                    ctx.store(arr, i, v);
                    if n != 1 {
                        ctx.clflushopt(arr.addr(i));
                    } // BUG: arr[8] is never flushed
                }
                ctx.sfence();
                ctx.store(markers, 0, KEY as u64 + 1);
                ctx.clflushopt(markers.addr(0));
                ctx.sfence();
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    let marker = m.peek(markers, 0);
                    if marker != KEY as u64 + 1 {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        let mut ctx = m.ctx(0);
                        for (i, v) in VALS {
                            eager_store(&mut ctx, arr, i, v);
                        }
                        ctx.sfence();
                        ctx.store(markers, 0, KEY as u64 + 1);
                        ctx.clflushopt(markers.addr(0));
                        ctx.sfence();
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| VALS.iter().all(|&(i, v)| m.peek(arr, i) == v)),
            }
        }),
    }
}

/// WAL transaction mutates data in place *before* its undo log is
/// durable: a crash in that window leaves modified data with no log to
/// roll it back, so the re-run double-applies the update.
pub fn wal_data_before_log() -> CheckCase {
    const KEY: usize = 4;
    const INIT: f64 = 5.0;
    const DELTA: f64 = 9.0;
    CheckCase {
        name: "mut:wal_data_before_log".into(),
        build: Box::new(|| {
            let (mut machine, arr, handles) = rig(1, Scheme::Wal);
            machine.poke(arr, 0, INIT);
            let arena = handles.arenas[0];
            let tp = handles.thread(0);
            let (log, header) = (arena.entries_array(), arena.header_array());
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                // Hand-rolled transaction mirroring `WalTx`, except the
                // in-place data store happens before the log is sealed.
                ctx.region_begin(KEY);
                let old: f64 = ctx.load(arr, 0);
                ctx.store(arr, 0, old + DELTA); // BUG: data before log
                ctx.store(log, 0, arr.addr(0).0);
                ctx.store(log, 1, old.to_bits());
                ctx.store(log, 2, header.addr(2).0); // marker's undo pair,
                ctx.store(log, 3, 0u64); // as the real commit logs it
                ctx.clflushopt(log.addr(0));
                ctx.sfence();
                ctx.store(header, 1, 2); // count
                ctx.store(header, 0, 1); // status: log sealed
                ctx.clflushopt(header.addr(0));
                ctx.sfence();
                ctx.clflushopt(arr.addr(0)); // apply phase
                ctx.store(header, 2, KEY as u64 + 1); // marker
                ctx.clflushopt(header.addr(0));
                ctx.sfence();
                ctx.store(header, 0, 0); // status: applied
                ctx.clflushopt(header.addr(0));
                ctx.sfence();
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    let mut ctx = m.ctx(0);
                    arena.recover(&mut ctx);
                    if arena.marker(&mut ctx) != KEY as u64 + 1 {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        let mut rs = tp.begin(&mut ctx, KEY);
                        let v: f64 = ctx.load(arr, 0);
                        tp.store(&mut ctx, &mut rs, arr, 0, v + DELTA);
                        tp.commit(&mut ctx, rs);
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| m.peek(arr, 0) == INIT + DELTA),
            }
        }),
    }
}

/// Two concurrent LP regions read-modify-write the *same* element: each
/// checksum is sound in isolation, but re-executing either region during
/// recovery replays a non-idempotent accumulation on top of the other's
/// surviving effect.
pub fn overlap_write_sets() -> CheckCase {
    const KEYS: [usize; 2] = [0, 8]; // distinct checksum-table lines
    const ADDS: [f64; 2] = [1.0, 2.0];
    CheckCase {
        name: "mut:overlap_write_sets".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(2, Scheme::Lazy(CK));
            let table = handles.table;
            let mut plans = machine.plans();
            for tid in 0..2 {
                plans[tid].region(move |ctx| {
                    ctx.region_begin(KEYS[tid]);
                    let v: f64 = ctx.load(arr, 0);
                    let next = v + ADDS[tid]; // BUG: both regions RMW arr[0]
                    ctx.store(arr, 0, next);
                    table.store(ctx, KEYS[tid], checksum_f64s(CK, &[next]));
                    ctx.region_end();
                });
            }
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats::default();
                    let mut ctx = m.ctx(0);
                    for tid in 0..2 {
                        st.regions_checked += 1;
                        let consistent = region_consistent(
                            &mut ctx,
                            &table,
                            KEYS[tid],
                            CK,
                            arr,
                            std::iter::once(0),
                        );
                        if !consistent {
                            st.regions_inconsistent += 1;
                            st.recomputed_regions += 1;
                            let v: f64 = ctx.load(arr, 0);
                            let next = v + ADDS[tid];
                            eager_store(&mut ctx, arr, 0, next);
                            ctx.sfence();
                            table.store(&mut ctx, KEYS[tid], checksum_f64s(CK, &[next]));
                            table.persist(&mut ctx, KEYS[tid]);
                        }
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| m.peek(arr, 0) == ADDS[0] + ADDS[1]),
            }
        }),
    }
}

/// A later region rewrites a committed region's data with a
/// sum-preserving update and no fresh checksum: the stale checksum still
/// matches the new data (Modular folds to the same value), so recovery
/// false-matches and re-executes the rewrite on already-rewritten data.
pub fn torn_rewrite() -> CheckCase {
    const K1: usize = 10;
    const K2: usize = 11;
    CheckCase {
        name: "mut:torn_rewrite".into(),
        build: Box::new(|| {
            let (mut machine, _arr, handles) = rig(1, Scheme::Lazy(CK));
            let table = handles.table;
            let vals = machine.alloc::<u64>(16).expect("u64 rig array");
            for i in 0..16 {
                machine.poke(vals, i, 0);
            }
            let mut plans = machine.plans();
            plans[0]
                .region(move |ctx| {
                    ctx.region_begin(K1);
                    ctx.store(vals, 0, 100u64);
                    ctx.store(vals, 1, 50u64);
                    let mut ck = RunningChecksum::new(CK);
                    ck.update(100);
                    ck.update(50);
                    table.store(ctx, K1, ck.value());
                    ctx.region_end();
                })
                .region(move |ctx| {
                    ctx.region_begin(K2);
                    // Wrapping arithmetic: after a crash fires mid-plan,
                    // loads return 0 while the remaining ops no-op.
                    let a: u64 = ctx.load(vals, 0);
                    let b: u64 = ctx.load(vals, 1);
                    ctx.store(vals, 0, a.wrapping_add(10)); // BUG: sum-preserving
                    ctx.store(vals, 1, b.wrapping_sub(10)); // rewrite, no fresh checksum
                    ctx.region_end();
                });
            let rebuild_k2 = move |ctx: &mut lp_sim::core::CoreCtx<'_>| {
                let a = ctx.load::<u64>(vals, 0).wrapping_add(10);
                let b = ctx.load::<u64>(vals, 1).wrapping_sub(10);
                ctx.store(vals, 0, a);
                ctx.store(vals, 1, b);
                ctx.clflushopt(vals.addr(0));
                ctx.sfence();
                let mut ck = RunningChecksum::new(CK);
                ck.update(a);
                ck.update(b);
                table.store(ctx, K2, ck.value());
                table.persist(ctx, K2);
            };
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 2,
                        ..Default::default()
                    };
                    let mut ctx = m.ctx(0);
                    // Newest-first scan, as LP recovery prescribes.
                    if region_consistent(&mut ctx, &table, K2, CK, vals, [0, 1].into_iter()) {
                        return st;
                    }
                    st.regions_inconsistent += 1;
                    st.recomputed_regions += 1;
                    if !region_consistent(&mut ctx, &table, K1, CK, vals, [0, 1].into_iter()) {
                        st.regions_inconsistent += 1;
                        st.recomputed_regions += 1;
                        ctx.store(vals, 0, 100u64);
                        ctx.store(vals, 1, 50u64);
                        ctx.clflushopt(vals.addr(0));
                        ctx.sfence();
                        let mut ck = RunningChecksum::new(CK);
                        ck.update(100);
                        ck.update(50);
                        table.store(&mut ctx, K1, ck.value());
                        table.persist(&mut ctx, K1);
                    }
                    rebuild_k2(&mut ctx);
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| m.peek(vals, 0) == 110 && m.peek(vals, 1) == 40),
            }
        }),
    }
}

/// All seven mutation cases, in `lp-check` rule order.
pub fn all() -> Vec<CheckCase> {
    vec![
        store_outside_region(),
        lp_skip_fold(),
        ep_skip_fence(),
        ep_skip_flush(),
        wal_data_before_log(),
        overlap_write_sets(),
        torn_rewrite(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{check_case, Budget, BudgetMode};

    fn budget() -> Budget {
        Budget {
            mode: BudgetMode::Exhaustive,
            k: 4,
            faults: lp_sim::fault::FaultConfig::none(),
            dedup: true,
        }
    }

    /// Every mutation must manifest as at least one corrupt-or-stuck
    /// reachable crash state — the checker's teeth.
    #[test]
    fn every_mutation_is_flagged() {
        // Recovery of a garbage image may legitimately panic ("stuck");
        // keep the test log quiet about those expected unwinds.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let reports: Vec<_> = all().iter().map(|c| check_case(c, &budget(), 42)).collect();
        std::panic::set_hook(prev);
        for r in &reports {
            assert!(
                r.flagged(),
                "{} found no corrupt/stuck state in {} states over {} points",
                r.case_name,
                r.states_checked,
                r.points_total,
            );
            assert!(
                r.consistent > 0,
                "{} should still have many recoverable states",
                r.case_name
            );
        }
    }
}

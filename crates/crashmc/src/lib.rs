//! # lp-crashmc — the crash-state model checker
//!
//! Proves a persistency scheme's recovery correct over *every* NVMM state
//! reachable from a crash, not just the handful a randomized campaign
//! happens to visit. For each workload the checker runs one snapshot
//! pass that executes the trace once and captures a COW snapshot — the
//! [`lp_sim::memsys::CrashCensus`] of maybe-durable lines plus a forked
//! NVMM base — at every selected crash point (each store, flush, fence,
//! and region commit), then forks one machine per reachable subset of
//! each census (bounded exhaustive up to `K` undetermined lines,
//! deterministic seeded sampling beyond). Repeat crash states are
//! deduplicated by content hash so recovery runs once per *distinct*
//! state. The scheme's real recovery then runs on each fork and the
//! durable output must come back bit-identical to a crash-free
//! reference — anything else is reported as silent corruption (recovery
//! "succeeded" on wrong data) or a stuck state (recovery panicked).
//!
//! Three layers:
//!
//! - [`mc`] — the engine: crash-point discovery, budget selection, census
//!   subset enumeration, fork/recover/verify classification.
//! - [`cases`] — the paper's five kernels × {LP, LP+parity, EagerRecompute, WAL}
//!   wired into the engine through [`lp_kernels::driver::prepare_kernel`].
//! - [`mutations`] — seven single-discipline-bug workloads (one per
//!   `lp-check` rule violation) for which the checker must find at least
//!   one corrupt-or-stuck crash state each, proving the model has teeth.
//!
//! See `DESIGN.md` ("Correctness tooling") for the ADR crash model and
//! the definition of "reachable state".
#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod cases;
pub mod fault_mutations;
pub mod mc;
pub mod mutations;

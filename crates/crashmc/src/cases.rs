//! The paper's kernels wired into the model checker.

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;

use crate::mc::{CheckCase, PreparedCase};

/// The recoverable schemes the checker proves (Base has no recovery and
/// LazyEagerCk is an ablation of Lazy's commit path, already covered).
pub const CLEAN_SCHEMES: [Scheme; 3] = [
    Scheme::Lazy(ChecksumKind::Modular),
    Scheme::Eager,
    Scheme::Wal,
];

/// The machine configuration every kernel case runs under.
pub fn default_config() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(4 << 20)
}

/// Build the check case for one kernel under one scheme at `scale`.
///
/// The factory re-prepares the kernel for every replay: setup is
/// deterministic (seeded inputs), so each instance traces identically.
pub fn kernel_case(kernel: KernelId, scheme: Scheme, scale: Scale) -> CheckCase {
    let cfg = default_config();
    CheckCase {
        name: format!("{kernel}/{scheme}"),
        build: Box::new(move || {
            let pk = prepare_kernel(kernel, scale, &cfg, scheme);
            PreparedCase {
                machine: pk.machine,
                plans: pk.plans,
                recover: pk.recover,
                verify: pk.verify,
            }
        }),
    }
}

/// Every kernel × clean-scheme case at `scale`, in figure order.
pub fn all_kernel_cases(scale: Scale) -> Vec<CheckCase> {
    let mut out = Vec::new();
    for kernel in KernelId::ALL {
        for scheme in CLEAN_SCHEMES {
            out.push(kernel_case(kernel, scheme, scale));
        }
    }
    out
}

//! The paper's kernels wired into the model checker.

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;

use crate::mc::{CheckCase, PreparedCase};

/// The recoverable schemes the checker proves (Base has no recovery and
/// LazyEagerCk is an ablation of Lazy's commit path, already covered).
/// LazyParity runs the full repair ladder, so media campaigns exercise
/// rung-1 parity repair alongside Lazy's recompute-only recovery.
pub const CLEAN_SCHEMES: [Scheme; 4] = [
    Scheme::Lazy(ChecksumKind::Modular),
    Scheme::LazyParity(ChecksumKind::Crc32),
    Scheme::Eager,
    Scheme::Wal,
];

/// The machine configuration every kernel case runs under.
pub fn default_config() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(4 << 20)
}

/// Build the check case for one kernel under one scheme at `scale`.
///
/// The factory re-prepares the kernel for every replay: setup is
/// deterministic (seeded inputs), so each instance traces identically.
pub fn kernel_case(kernel: KernelId, scheme: Scheme, scale: Scale) -> CheckCase {
    let cfg = default_config();
    CheckCase {
        name: format!("{kernel}/{scheme}"),
        build: Box::new(move || {
            let pk = prepare_kernel(kernel, scale, &cfg, scheme);
            // Silent bit flips are only meaningful under Lazy schemes:
            // EP/WAL trust their markers and have no checksum to notice a
            // flipped committed line (the paper's §III-C detection gap),
            // so the campaign does not charge them with flips. Poison is
            // not silent — every scheme must quarantine and rebuild.
            let flip_lines = match scheme {
                Scheme::Lazy(_) | Scheme::LazyEagerCk(_) | Scheme::LazyParity(_) => pk.flip_lines,
                _ => Vec::new(),
            };
            PreparedCase {
                machine: pk.machine,
                plans: pk.plans,
                recover: pk.recover,
                verify: pk.verify,
                flip_lines,
                poison_lines: pk.poison_lines,
            }
        }),
    }
}

/// Every kernel × clean-scheme case at `scale`, in figure order.
pub fn all_kernel_cases(scale: Scale) -> Vec<CheckCase> {
    let mut out = Vec::new();
    for kernel in KernelId::ALL {
        for scheme in CLEAN_SCHEMES {
            out.push(kernel_case(kernel, scheme, scale));
        }
    }
    out
}

//! Fault-campaign mutation rigs: three tiny programs, each violating one
//! hardening rule that only a specific *fault class* can expose. The
//! clean ADR crash model finds nothing wrong with them — every rig is
//! paired with the [`FaultConfig`] the campaign must enable for the
//! checker to exhibit a corrupt state. They are the fault subsystem's
//! teeth, the same way [`crate::mutations`] is the clean checker's.
//!
//! * [`torn_blind_word`] — a checksum that skips a word sharing a line
//!   with a folded one; only *torn* (word-granular) persists can split
//!   the line and slip the skipped word past the audit.
//! * [`poison_pattern_collision`] — a recovery that audits by checksum
//!   alone, skipping the poison quarantine; only *media* faults can make
//!   the poison pattern collide with a stored Modular sum.
//! * [`marker_first_recovery`] — a recovery that persists its progress
//!   marker before the data it vouches for; only a *nested* crash in
//!   that window makes the re-entry skip work the marker claims done.

use lp_core::checksum::{checksum_f64s, ChecksumKind, RunningChecksum};
use lp_core::recovery::{region_consistent, RecoveryStats};
use lp_core::scheme::Scheme;
use lp_sim::fault::FaultConfig;
use lp_sim::mem::POISON_WORD;

use crate::mc::{CheckCase, PreparedCase};
use crate::mutations::rig;

const CK: ChecksumKind = ChecksumKind::Modular;

/// Four value pairs, each pair sharing one cache line (8 f64s per line).
const PAIRS: [(usize, f64, f64); 4] = [
    (0, 3.5, 4.25),
    (8, -1.5, 2.0),
    (16, 9.0, -0.75),
    (24, 6.5, 1.25),
];

/// Each region checksums only the *first* word of its pair. Under
/// line-granular crashes the audit is accidentally sound: both words
/// live on one line, so they are lost or kept together and the folded
/// word always witnesses the loss. A torn persist can keep the folded
/// word and drop its neighbour — the weak checksum matches over data
/// that is half stale.
pub fn torn_blind_word() -> (CheckCase, FaultConfig) {
    let case = CheckCase {
        name: "fmut:torn_blind_word".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Lazy(CK));
            let table = handles.table;
            let mut plans = machine.plans();
            for (key, (i, a, b)) in PAIRS.into_iter().enumerate() {
                plans[0].region(move |ctx| {
                    ctx.region_begin(key);
                    ctx.store(arr, i, a);
                    ctx.store(arr, i + 1, b); // BUG: never folded, same line
                    let mut ck = RunningChecksum::new(CK);
                    ck.update(a.to_bits());
                    table.store(ctx, key, ck.value());
                    ctx.region_end();
                });
            }
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats::default();
                    let mut ctx = m.ctx(0);
                    for (key, (i, a, b)) in PAIRS.into_iter().enumerate() {
                        st.regions_checked += 1;
                        // The audit mirrors the commit-side bug: it folds
                        // only the first word, so it cannot see the other.
                        let consistent =
                            region_consistent(&mut ctx, &table, key, CK, arr, std::iter::once(i));
                        if consistent {
                            continue;
                        }
                        st.regions_inconsistent += 1;
                        st.recomputed_regions += 1;
                        ctx.store(arr, i, a);
                        ctx.store(arr, i + 1, b);
                        ctx.clflushopt(arr.addr(i));
                        ctx.sfence();
                        table.store(&mut ctx, key, checksum_f64s(CK, &[a]));
                        table.persist(&mut ctx, key);
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| {
                    PAIRS
                        .into_iter()
                        .all(|(i, a, b)| m.peek(arr, i) == a && m.peek(arr, i + 1) == b)
                }),
            }
        }),
    };
    let faults = FaultConfig {
        torn: true,
        ..FaultConfig::none()
    };
    (case, faults)
}

/// Eight `u64` values on one line whose Modular sum equals the sum of
/// eight poison words. Honest recovery quarantines poisoned lines before
/// trusting any checksum; this recovery skips the quarantine, the poison
/// pattern folds to the stored sum, and the audit blesses unreadable
/// data.
pub fn poison_pattern_collision() -> (CheckCase, FaultConfig) {
    const KEY: usize = 3;
    // Wrapping sum = 8 * POISON_WORD: a weak sum cannot tell these from
    // a fully poisoned line.
    const VALS: [u64; 8] = [
        POISON_WORD,
        POISON_WORD,
        POISON_WORD,
        POISON_WORD,
        POISON_WORD,
        POISON_WORD,
        POISON_WORD.wrapping_add(5),
        POISON_WORD.wrapping_sub(5),
    ];
    let case = CheckCase {
        name: "fmut:poison_pattern_collision".into(),
        build: Box::new(|| {
            let (mut machine, _arr, handles) = rig(1, Scheme::Lazy(CK));
            let table = handles.table;
            let vals = machine.alloc::<u64>(8).expect("u64 rig array");
            for i in 0..8 {
                machine.poke(vals, i, 0);
            }
            let poison_lines = vec![vals.addr(0).line()];
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.region_begin(KEY);
                let mut ck = RunningChecksum::new(CK);
                for (i, v) in VALS.into_iter().enumerate() {
                    ctx.store(vals, i, v);
                    ck.update(v);
                }
                table.store(ctx, KEY, ck.value());
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    // BUG: no `poisoned_lines()` quarantine — the audit
                    // reads the poison pattern as if it were data.
                    let mut ctx = m.ctx(0);
                    if !region_consistent(&mut ctx, &table, KEY, CK, vals, 0..8) {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        let mut ck = RunningChecksum::new(CK);
                        for (i, v) in VALS.into_iter().enumerate() {
                            ctx.store(vals, i, v);
                            ck.update(v);
                        }
                        ctx.clflushopt(vals.addr(0));
                        ctx.sfence();
                        table.store(&mut ctx, KEY, ck.value());
                        table.persist(&mut ctx, KEY);
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines,
                verify: Box::new(move |m| (0..8).all(|i| m.peek(vals, i) == VALS[i])),
            }
        }),
    };
    let faults = FaultConfig {
        media: true,
        ..FaultConfig::none()
    };
    (case, faults)
}

/// An EP-style recovery that persists its done-marker *before* re-doing
/// the data it vouches for. Under single-crash exploration the whole
/// recovery is atomic and the bug invisible; a nested crash between the
/// marker flush and the last data flush makes the re-entry trust the
/// marker and skip the repair.
pub fn marker_first_recovery() -> (CheckCase, FaultConfig) {
    const KEY: usize = 6;
    const VALS: [(usize, f64); 4] = [(0, 7.0), (8, 5.5), (16, -2.25), (24, 11.0)];
    let case = CheckCase {
        name: "fmut:marker_first_recovery".into(),
        build: Box::new(|| {
            let (machine, arr, handles) = rig(1, Scheme::Eager);
            let markers = handles.markers;
            let mut plans = machine.plans();
            plans[0].region(move |ctx| {
                ctx.region_begin(KEY);
                for (i, v) in VALS {
                    ctx.store(arr, i, v);
                    ctx.clflushopt(arr.addr(i));
                }
                ctx.sfence();
                ctx.store(markers, 0, KEY as u64 + 1);
                ctx.clflushopt(markers.addr(0));
                ctx.sfence();
                ctx.region_end();
            });
            PreparedCase {
                machine,
                plans,
                recover: Box::new(move |m| {
                    let mut st = RecoveryStats {
                        regions_checked: 1,
                        ..Default::default()
                    };
                    if m.peek(markers, 0) != KEY as u64 + 1 {
                        st.regions_inconsistent = 1;
                        st.recomputed_regions = 1;
                        let mut ctx = m.ctx(0);
                        // BUG: the marker becomes durable before the data
                        // it promises; a crash in between convinces the
                        // next attempt there is nothing left to repair.
                        ctx.store(markers, 0, KEY as u64 + 1);
                        ctx.clflushopt(markers.addr(0));
                        ctx.sfence();
                        for (i, v) in VALS {
                            ctx.store(arr, i, v);
                            ctx.clflushopt(arr.addr(i));
                        }
                        ctx.sfence();
                    }
                    st
                }),
                flip_lines: Vec::new(),
                poison_lines: Vec::new(),
                verify: Box::new(move |m| VALS.iter().all(|&(i, v)| m.peek(arr, i) == v)),
            }
        }),
    };
    let faults = FaultConfig {
        nested: true,
        nested_bound: FaultConfig::DEFAULT_NESTED_BOUND,
        ..FaultConfig::none()
    };
    (case, faults)
}

/// All three fault-mutation rigs with the fault class each one needs.
pub fn all() -> Vec<(CheckCase, FaultConfig)> {
    vec![
        torn_blind_word(),
        poison_pattern_collision(),
        marker_first_recovery(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{check_case, Budget, BudgetMode};

    fn budget(faults: FaultConfig) -> Budget {
        Budget {
            mode: BudgetMode::Exhaustive,
            k: 4,
            faults,
            dedup: true,
        }
    }

    /// Every fault-mutation rig must be flagged *with* its fault class
    /// and clean *without* it — the corruption is attributable to the
    /// fault model, not to a latently broken rig.
    #[test]
    fn every_fault_mutation_is_flagged_only_under_its_fault() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let with: Vec<_> = all()
            .iter()
            .map(|(c, f)| check_case(c, &budget(*f), 42))
            .collect();
        let without: Vec<_> = all()
            .iter()
            .map(|(c, _)| check_case(c, &budget(FaultConfig::none()), 42))
            .collect();
        std::panic::set_hook(prev);
        for r in &with {
            assert!(
                r.flagged(),
                "{} found no corrupt/stuck state in {} states under its fault class",
                r.case_name,
                r.states_checked,
            );
        }
        for r in &without {
            assert!(
                r.clean(),
                "{} must be clean under the fault-free crash model \
                 ({} corrupt, {} stuck)",
                r.case_name,
                r.corrupt,
                r.stuck,
            );
        }
    }
}

//! `lp-crashmc` — prove recovery correct over every reachable crash
//! state, or print the states where it is not.

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_crashmc::cases::{all_kernel_cases, kernel_case, CLEAN_SCHEMES};
use lp_crashmc::mc::{check_cases, Budget, BudgetMode, CheckCase, McReport};
use lp_crashmc::mutations;
use lp_kernels::driver::{KernelId, Scale};
use lp_sim::par::available_threads;

const USAGE: &str = "\
lp-crashmc: exhaustive crash-state model checker for the persistency schemes

USAGE:
  lp-crashmc [OPTIONS]               check kernels x {LP, EP, WAL}
  lp-crashmc --mutations [OPTIONS]   check the seven discipline mutations
                                     (each must yield >= 1 corrupt/stuck state)

OPTIONS:
  --budget MODE     exhaustive | sampled | smoke      [default: sampled]
  --points N        crash points per case under sampled [default: 48]
  --k K             census bound: up to 2^K states per crash point [default: 4]
  --seed S          seed for every sampling decision  [default: 42]
  --kernel NAME     tmm | cholesky | conv2d | gauss | fft | all [default: all]
  --scheme NAME     lazy | eager | wal | all          [default: all]
  --scale NAME      micro | test                      [default: micro]
  --threads N       host worker threads for the exploration
                    [default: the machine's available parallelism]
                    Reports are byte-identical at any thread count.
  --list            list the cases that would run, then exit
  --help            this text

EXIT STATUS:
  0  all explored states recovered consistently (or, with --mutations,
     every mutation was flagged); 1 otherwise.";

struct Args {
    budget: Budget,
    seed: u64,
    kernel: Option<KernelId>,
    scheme: Option<Scheme>,
    scale: Scale,
    threads: usize,
    mutations: bool,
    list: bool,
}

fn parse_args() -> Args {
    let mut budget_mode = None;
    let mut points = 48usize;
    let mut out = Args {
        budget: Budget {
            mode: BudgetMode::Sampled(48),
            k: 4,
        },
        seed: 42,
        kernel: None,
        scheme: None,
        scale: Scale::Micro,
        threads: available_threads(),
        mutations: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget" => {
                budget_mode = Some(match value(&mut args, "--budget").as_str() {
                    "exhaustive" => BudgetMode::Exhaustive,
                    "sampled" => BudgetMode::Sampled(points),
                    "smoke" => BudgetMode::Smoke,
                    other => {
                        eprintln!("unknown budget {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                });
            }
            "--points" => {
                points = value(&mut args, "--points").parse().unwrap_or_else(|_| {
                    eprintln!("--points needs a number");
                    std::process::exit(2);
                });
            }
            "--k" => {
                out.budget.k = value(&mut args, "--k").parse().unwrap_or_else(|_| {
                    eprintln!("--k needs a number");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                out.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--kernel" => {
                out.kernel = match value(&mut args, "--kernel").as_str() {
                    "all" => None,
                    "tmm" => Some(KernelId::Tmm),
                    "cholesky" => Some(KernelId::Cholesky),
                    "conv2d" => Some(KernelId::Conv2d),
                    "gauss" => Some(KernelId::Gauss),
                    "fft" => Some(KernelId::Fft),
                    other => {
                        eprintln!("unknown kernel {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--scheme" => {
                out.scheme = match value(&mut args, "--scheme").as_str() {
                    "all" => None,
                    "lazy" => Some(Scheme::Lazy(ChecksumKind::Modular)),
                    "eager" => Some(Scheme::Eager),
                    "wal" => Some(Scheme::Wal),
                    other => {
                        eprintln!("unknown scheme {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                out.scale = match value(&mut args, "--scale").as_str() {
                    "micro" => Scale::Micro,
                    "test" => Scale::Test,
                    other => {
                        eprintln!("unknown scale {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                out.threads = value(&mut args, "--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
                if out.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            "--mutations" => out.mutations = true,
            "--list" => out.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(mode) = budget_mode {
        out.budget.mode = if let BudgetMode::Sampled(_) = mode {
            BudgetMode::Sampled(points)
        } else {
            mode
        };
    } else {
        out.budget.mode = BudgetMode::Sampled(points);
    }
    out
}

fn select_cases(args: &Args) -> Vec<CheckCase> {
    if args.mutations {
        return mutations::all();
    }
    match (args.kernel, args.scheme) {
        (None, None) => all_kernel_cases(args.scale),
        (k, s) => {
            let kernels: Vec<_> = k.map_or_else(|| KernelId::ALL.to_vec(), |k| vec![k]);
            let schemes: Vec<_> = s.map_or_else(|| CLEAN_SCHEMES.to_vec(), |s| vec![s]);
            let mut out = Vec::new();
            for &kernel in &kernels {
                for &scheme in &schemes {
                    out.push(kernel_case(kernel, scheme, args.scale));
                }
            }
            out
        }
    }
}

fn print_report(r: &McReport, expect_flagged: bool) {
    let verdict = match (expect_flagged, r.flagged()) {
        (false, false) => "CLEAN",
        (false, true) => "FAIL",
        (true, true) => "FLAGGED",
        (true, false) => "MISSED",
    };
    println!("{}  {}", r.summary_line(), verdict);
    for ex in &r.examples {
        println!(
            "    {:?} at op {} (census {}, subset {})",
            ex.class, ex.op, ex.census, ex.subset
        );
    }
}

fn main() {
    let args = parse_args();
    let cases = select_cases(&args);
    if args.list {
        for c in &cases {
            println!("{}", c.name);
        }
        return;
    }
    println!(
        "lp-crashmc: {} case(s), budget {:?}, k {}, seed {}",
        cases.len(),
        args.budget.mode,
        args.budget.k,
        args.seed
    );

    // Recovery legitimately panics on some corrupt images ("stuck"
    // states); the checker catches those unwinds, so keep the default
    // hook from spamming the report.
    std::panic::set_hook(Box::new(|_| {}));
    let started = std::time::Instant::now();
    let reports: Vec<McReport> = check_cases(&cases, &args.budget, args.seed, args.threads);
    let elapsed = started.elapsed();
    let _ = std::panic::take_hook();

    // Timing goes to stderr so stdout stays byte-identical across thread
    // counts (the determinism contract the tests pin down).
    let explored: u64 = reports.iter().map(|r| r.states_checked).sum();
    eprintln!(
        "lp-crashmc: {} states in {:.2}s on {} thread(s) ({:.0} states/sec)",
        explored,
        elapsed.as_secs_f64(),
        args.threads,
        explored as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    let mut failed = false;
    for r in &reports {
        print_report(r, args.mutations);
        failed |= if args.mutations {
            !r.flagged()
        } else {
            r.flagged()
        };
    }
    let states: u64 = reports.iter().map(|r| r.states_checked).sum();
    if args.mutations {
        let flagged = reports.iter().filter(|r| r.flagged()).count();
        println!(
            "{}/{} mutations flagged across {} crash states",
            flagged,
            reports.len(),
            states
        );
    } else {
        println!(
            "{} crash states explored, {} corrupt, {} stuck",
            states,
            reports.iter().map(|r| r.corrupt).sum::<u64>(),
            reports.iter().map(|r| r.stuck).sum::<u64>(),
        );
    }
    if failed {
        std::process::exit(1);
    }
}

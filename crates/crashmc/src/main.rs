//! `lp-crashmc` — prove recovery correct over every reachable crash
//! state, or print the states where it is not.

use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_crashmc::cases::{all_kernel_cases, kernel_case, CLEAN_SCHEMES};
use lp_crashmc::mc::{check_cases, Budget, BudgetMode, CheckCase, McReport};
use lp_crashmc::{fault_mutations, mutations};
use lp_kernels::driver::{KernelId, Scale};
use lp_sim::fault::FaultConfig;
use lp_sim::par::available_threads;

const USAGE: &str = "\
lp-crashmc: exhaustive crash-state model checker for the persistency schemes

USAGE:
  lp-crashmc [OPTIONS]                   check kernels x {LP, EP, WAL}
  lp-crashmc --mutations [OPTIONS]       check the seven discipline mutations
                                         (each must yield >= 1 corrupt/stuck state)
  lp-crashmc --fault-mutations [OPTIONS] check the three fault-model mutations,
                                         each under the fault class it needs

OPTIONS:
  --budget MODE     exhaustive | sampled | smoke      [default: sampled]
  --points N        crash points per case under sampled [default: 48]
  --k K             census bound: up to 2^K states per crash point [default: 4]
  --seed S          seed for every sampling decision  [default: 42]
  --faults LIST     comma-separated fault classes injected on top of the
                    clean ADR crash model: torn, media, media-burst, nested
                    (e.g. --faults torn,media,nested)  [default: none]
                    media-burst widens each poison draw to two adjacent
                    lines: single-line poisons are repairable from parity
                    under lazy-parity, bursts must escalate to recompute
  --nested-bound K  crashes injected per recovery before the final
                    crash-free attempt (with nested)  [default: 2]
  --kernel NAME     tmm | cholesky | conv2d | gauss | fft | all [default: all]
  --scheme NAME     lazy | lazy-parity | eager | wal | all [default: all]
  --scale NAME      micro | test                      [default: micro]
  --threads N       host worker threads for the exploration
                    [default: the machine's available parallelism]
                    Reports (stdout and JSON) are byte-identical at any
                    thread count.
  --dedup on|off    skip recovery on crash states whose dedup key was
                    already judged at the same point  [default: on]
                    Counting is unaffected: reports are byte-identical
                    either way, off only costs wall-clock.
  --report PATH     write a JSON campaign report (states, verdicts, and
                    per-class fault tallies) to PATH
  --list            list the cases that would run, then exit
  --help            this text

EXIT STATUS:
  0  all explored states recovered consistently (or, with --mutations,
     every mutation was flagged); 1 otherwise.";

struct Args {
    budget: Budget,
    seed: u64,
    kernel: Option<KernelId>,
    scheme: Option<Scheme>,
    scale: Scale,
    threads: usize,
    mutations: bool,
    fault_mutations: bool,
    report: Option<String>,
    list: bool,
}

fn parse_args() -> Args {
    let mut budget_mode = None;
    let mut points = 48usize;
    let mut nested_bound: Option<u32> = None;
    let mut out = Args {
        budget: Budget {
            mode: BudgetMode::Sampled(48),
            k: 4,
            faults: FaultConfig::none(),
            dedup: true,
        },
        seed: 42,
        kernel: None,
        scheme: None,
        scale: Scale::Micro,
        threads: available_threads(),
        mutations: false,
        fault_mutations: false,
        report: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget" => {
                budget_mode = Some(match value(&mut args, "--budget").as_str() {
                    "exhaustive" => BudgetMode::Exhaustive,
                    "sampled" => BudgetMode::Sampled(points),
                    "smoke" => BudgetMode::Smoke,
                    other => {
                        eprintln!("unknown budget {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                });
            }
            "--points" => {
                points = value(&mut args, "--points").parse().unwrap_or_else(|_| {
                    eprintln!("--points needs a number");
                    std::process::exit(2);
                });
            }
            "--k" => {
                out.budget.k = value(&mut args, "--k").parse().unwrap_or_else(|_| {
                    eprintln!("--k needs a number");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                out.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--kernel" => {
                out.kernel = match value(&mut args, "--kernel").as_str() {
                    "all" => None,
                    "tmm" => Some(KernelId::Tmm),
                    "cholesky" => Some(KernelId::Cholesky),
                    "conv2d" => Some(KernelId::Conv2d),
                    "gauss" => Some(KernelId::Gauss),
                    "fft" => Some(KernelId::Fft),
                    other => {
                        eprintln!("unknown kernel {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--scheme" => {
                out.scheme = match value(&mut args, "--scheme").as_str() {
                    "all" => None,
                    "lazy" => Some(Scheme::Lazy(ChecksumKind::Modular)),
                    "lazy-parity" => Some(Scheme::LazyParity(ChecksumKind::Crc32)),
                    "eager" => Some(Scheme::Eager),
                    "wal" => Some(Scheme::Wal),
                    other => {
                        eprintln!("unknown scheme {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                out.scale = match value(&mut args, "--scale").as_str() {
                    "micro" => Scale::Micro,
                    "test" => Scale::Test,
                    other => {
                        eprintln!("unknown scale {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                out.threads = value(&mut args, "--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
                if out.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            "--faults" => {
                out.budget.faults = FaultConfig::parse(&value(&mut args, "--faults"))
                    .unwrap_or_else(|e| {
                        eprintln!("{e}\n\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--nested-bound" => {
                nested_bound = Some(value(&mut args, "--nested-bound").parse().unwrap_or_else(
                    |_| {
                        eprintln!("--nested-bound needs a number");
                        std::process::exit(2);
                    },
                ));
            }
            "--dedup" => {
                out.budget.dedup = match value(&mut args, "--dedup").as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("--dedup takes on|off, got {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--report" => out.report = Some(value(&mut args, "--report")),
            "--mutations" => out.mutations = true,
            "--fault-mutations" => out.fault_mutations = true,
            "--list" => out.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(mode) = budget_mode {
        out.budget.mode = if let BudgetMode::Sampled(_) = mode {
            BudgetMode::Sampled(points)
        } else {
            mode
        };
    } else {
        out.budget.mode = BudgetMode::Sampled(points);
    }
    if let Some(b) = nested_bound {
        out.budget.faults.nested_bound = b;
    }
    out
}

fn select_cases(args: &Args) -> Vec<CheckCase> {
    if args.mutations {
        return mutations::all();
    }
    match (args.kernel, args.scheme) {
        (None, None) => all_kernel_cases(args.scale),
        (k, s) => {
            let kernels: Vec<_> = k.map_or_else(|| KernelId::ALL.to_vec(), |k| vec![k]);
            let schemes: Vec<_> = s.map_or_else(|| CLEAN_SCHEMES.to_vec(), |s| vec![s]);
            let mut out = Vec::new();
            for &kernel in &kernels {
                for &scheme in &schemes {
                    out.push(kernel_case(kernel, scheme, args.scale));
                }
            }
            out
        }
    }
}

fn print_report(r: &McReport, expect_flagged: bool) {
    let verdict = match (expect_flagged, r.flagged()) {
        (false, false) => "CLEAN",
        (false, true) => "FAIL",
        (true, true) => "FLAGGED",
        (true, false) => "MISSED",
    };
    println!("{}  {}", r.summary_line(), verdict);
    if r.faults != "none" {
        println!("{}", r.tally.summary_line());
    }
    for ex in &r.examples {
        println!(
            "    {:?} at op {} (census {}, subset {})",
            ex.class, ex.op, ex.census, ex.subset
        );
    }
}

/// Minimal JSON string escaping (the report emits only ASCII names).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn tally_json(t: &lp_crashmc::mc::FaultTally) -> String {
    format!(
        concat!(
            "{{\"torn_states\":{},\"torn_words_dropped\":{},",
            "\"flips\":{},\"flips_detected\":{},\"flips_benign\":{},\"flips_missed\":{},",
            "\"poisons\":{},\"bursts\":{},\"poisons_detected\":{},\"poisons_scrubbed\":{},",
            "\"repaired_lines\":{},\"repair_failures\":{},\"escalations\":{},",
            "\"nested_crashes\":{},\"retries\":{},\"retry_exhausted\":{}}}"
        ),
        t.torn_states,
        t.torn_words_dropped,
        t.flips,
        t.flips_detected,
        t.flips_benign,
        t.flips_missed,
        t.poisons,
        t.bursts,
        t.poisons_detected,
        t.poisons_scrubbed,
        t.repaired_lines,
        t.repair_failures,
        t.escalations,
        t.nested_crashes,
        t.retries,
        t.retry_exhausted,
    )
}

/// Serialize the campaign deterministically (no timing, no thread count,
/// so the file is byte-identical at any parallelism).
fn campaign_json(reports: &[McReport], seed: u64) -> String {
    let mut cases = Vec::new();
    let mut total = lp_crashmc::mc::FaultTally::default();
    let (mut states, mut consistent, mut corrupt, mut stuck) = (0u64, 0u64, 0u64, 0u64);
    let (mut dedup_hits, mut replay_saved) = (0u64, 0u64);
    for r in reports {
        total.merge(&r.tally);
        states += r.states_checked;
        consistent += r.consistent;
        corrupt += r.corrupt;
        stuck += r.stuck;
        dedup_hits += r.dedup_hits;
        replay_saved += r.replay_saved_ops;
        cases.push(format!(
            concat!(
                "    {{\"case\":\"{}\",\"mode\":\"{}\",\"k\":{},\"faults\":\"{}\",",
                "\"points_total\":{},\"points_visited\":{},\"max_census\":{},",
                "\"states\":{},\"consistent\":{},\"corrupt\":{},\"stuck\":{},",
                "\"dedup_hits\":{},\"dedup_rate\":{:.4},\"replay_saved_ops\":{},",
                "\"tally\":{}}}"
            ),
            json_escape(&r.case_name),
            json_escape(&r.mode),
            r.k,
            json_escape(&r.faults),
            r.points_total,
            r.points.len(),
            r.max_census,
            r.states_checked,
            r.consistent,
            r.corrupt,
            r.stuck,
            r.dedup_hits,
            r.dedup_hits as f64 / (r.states_checked.max(1)) as f64,
            r.replay_saved_ops,
            tally_json(&r.tally),
        ));
    }
    format!(
        concat!(
            "{{\n  \"tool\": \"lp-crashmc\",\n  \"seed\": {},\n  \"cases\": [\n{}\n  ],\n",
            "  \"total\": {{\"states\":{},\"consistent\":{},\"corrupt\":{},\"stuck\":{},",
            "\"dedup_hits\":{},\"dedup_rate\":{:.4},\"replay_saved_ops\":{},",
            "\"tally\":{}}}\n}}\n"
        ),
        seed,
        cases.join(",\n"),
        states,
        consistent,
        corrupt,
        stuck,
        dedup_hits,
        dedup_hits as f64 / (states.max(1)) as f64,
        replay_saved,
        tally_json(&total),
    )
}

fn main() {
    let args = parse_args();
    if args.fault_mutations {
        let rigs = fault_mutations::all();
        if args.list {
            for (c, f) in &rigs {
                println!("{}  [--faults {}]", c.name, f);
            }
            return;
        }
        println!(
            "lp-crashmc: {} fault-mutation rig(s), budget {:?}, k {}, seed {}",
            rigs.len(),
            args.budget.mode,
            args.budget.k,
            args.seed
        );
        std::panic::set_hook(Box::new(|_| {}));
        // Each rig runs under the fault class it was written to need,
        // with the CLI's --nested-bound honoured where nesting applies.
        let reports: Vec<McReport> = rigs
            .into_iter()
            .map(|(case, mut faults)| {
                if faults.nested && args.budget.faults.nested_bound > 0 {
                    faults.nested_bound = args.budget.faults.nested_bound;
                }
                let budget = Budget {
                    faults,
                    ..args.budget
                };
                check_cases(&[case], &budget, args.seed, args.threads).remove(0)
            })
            .collect();
        let _ = std::panic::take_hook();
        let mut failed = false;
        for r in &reports {
            print_report(r, true);
            failed |= !r.flagged();
        }
        let flagged = reports.iter().filter(|r| r.flagged()).count();
        println!(
            "{}/{} fault mutations flagged across {} crash states",
            flagged,
            reports.len(),
            reports.iter().map(|r| r.states_checked).sum::<u64>(),
        );
        if let Some(path) = &args.report {
            write_report(path, &campaign_json(&reports, args.seed));
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    let cases = select_cases(&args);
    if args.list {
        for c in &cases {
            println!("{}", c.name);
        }
        return;
    }
    println!(
        "lp-crashmc: {} case(s), budget {:?}, k {}, seed {}",
        cases.len(),
        args.budget.mode,
        args.budget.k,
        args.seed
    );

    // Recovery legitimately panics on some corrupt images ("stuck"
    // states); the checker catches those unwinds, so keep the default
    // hook from spamming the report.
    std::panic::set_hook(Box::new(|_| {}));
    let started = std::time::Instant::now();
    let reports: Vec<McReport> = check_cases(&cases, &args.budget, args.seed, args.threads);
    let elapsed = started.elapsed();
    let _ = std::panic::take_hook();

    // Timing goes to stderr so stdout stays byte-identical across thread
    // counts (the determinism contract the tests pin down).
    let explored: u64 = reports.iter().map(|r| r.states_checked).sum();
    eprintln!(
        "lp-crashmc: {} states in {:.2}s on {} thread(s) ({:.0} states/sec)",
        explored,
        elapsed.as_secs_f64(),
        args.threads,
        explored as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    let mut failed = false;
    for r in &reports {
        print_report(r, args.mutations);
        failed |= if args.mutations {
            !r.flagged()
        } else {
            r.flagged()
        };
    }
    let states: u64 = reports.iter().map(|r| r.states_checked).sum();
    if args.mutations {
        let flagged = reports.iter().filter(|r| r.flagged()).count();
        println!(
            "{}/{} mutations flagged across {} crash states",
            flagged,
            reports.len(),
            states
        );
    } else {
        println!(
            "{} crash states explored, {} corrupt, {} stuck",
            states,
            reports.iter().map(|r| r.corrupt).sum::<u64>(),
            reports.iter().map(|r| r.stuck).sum::<u64>(),
        );
    }
    if let Some(path) = &args.report {
        write_report(path, &campaign_json(&reports, args.seed));
    }
    if failed {
        std::process::exit(1);
    }
}

/// Write the JSON campaign report, creating parent directories.
fn write_report(path: &str, json: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("lp-crashmc: campaign report written to {path}"),
        Err(e) => {
            eprintln!("lp-crashmc: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

//! The model-checking engine: replay to a crash point, enumerate the
//! reachable NVMM states, run real recovery on each, classify.
//!
//! # Parallel exploration
//!
//! The engine decomposes a run into independent *work units* — one per
//! `(case, crash point, subset chunk)` — and fans them across host
//! threads with [`lp_sim::par::par_map`]. Every unit rebuilds its case
//! from the (`Send + Sync`) factory, replays to its crash point, and
//! draws every stochastic choice from an [`Rng64::new_stream`] keyed by
//! that unit alone, so no state is shared between workers. Results merge
//! strictly in unit order, which makes the reports byte-identical at any
//! thread count (see DESIGN.md, "Parallel execution model").

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use lp_core::recovery::RecoveryStats;
use lp_sim::addr::{LineAddr, LINE_BYTES};
use lp_sim::fault::{draw_word_masks, flip_bit, FaultConfig};
use lp_sim::machine::{Machine, Outcome, ThreadPlan};
use lp_sim::memsys::CrashTrigger;
use lp_sim::observe::{EventSink, MemEvent};
use lp_sim::par::par_map;
use lp_sim::rng::Rng64;

/// Salt mixed into the seed for the fault-injection RNG streams, so fault
/// placement is independent of (but as reproducible as) subset sampling.
const FAULT_SALT: u64 = 0xFA17_0A75_11EC_7ED5;

/// One freshly-built, never-run instance of a checked workload.
///
/// The machine is *not* clonable (plans hold `FnOnce` region closures),
/// so the checker rebuilds the case from its factory for every replay;
/// determinism of the simulator guarantees each rebuild behaves
/// identically.
pub struct PreparedCase {
    /// The machine with the workload's data initialized.
    pub machine: Machine,
    /// One plan per logical core.
    pub plans: Vec<ThreadPlan<'static>>,
    /// The scheme's real crash recovery (run on a forked post-crash
    /// image before `verify`).
    pub recover: Box<dyn Fn(&mut Machine) -> RecoveryStats + Send + Sync>,
    /// Checks the durable image against the crash-free expectation.
    pub verify: Box<dyn Fn(&Machine) -> bool + Send + Sync>,
    /// Lines the fault campaign may silently bit-flip (empty disables
    /// flips for this case; only Lazy schemes detect silent corruption).
    pub flip_lines: Vec<LineAddr>,
    /// Lines the fault campaign may poison (empty disables poison).
    pub poison_lines: Vec<LineAddr>,
}

/// A checkable workload: a name plus a factory producing fresh,
/// identically-behaving instances.
///
/// The factory is `Send + Sync` so any worker thread can rebuild the
/// case; in practice factories capture only plain configuration data.
pub struct CheckCase {
    /// Display name (`TMM/LP(modular)`, `mut:ep_skip_fence`, ...).
    pub name: String,
    /// Builds one fresh instance per replay.
    pub build: Box<dyn Fn() -> PreparedCase + Send + Sync>,
}

/// How many crash points to visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMode {
    /// Every discovered crash point.
    Exhaustive,
    /// A deterministic seeded sample of this many points (first and last
    /// always included).
    Sampled(usize),
    /// A fixed tiny sample for CI gates.
    Smoke,
}

/// Points visited under [`BudgetMode::Smoke`].
pub const SMOKE_POINTS: usize = 12;

/// The checker's exploration budget.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Crash-point selection policy.
    pub mode: BudgetMode,
    /// Census-size bound: up to `2^k` subsets per crash point. Censuses
    /// with at most `k` undetermined lines are enumerated exhaustively;
    /// larger ones are sampled (empty and full subsets always included).
    pub k: u32,
    /// Fault classes injected on top of the clean ADR crash model.
    pub faults: FaultConfig,
}

impl Budget {
    fn mode_name(&self) -> String {
        match self.mode {
            BudgetMode::Exhaustive => "exhaustive".into(),
            BudgetMode::Sampled(n) => format!("sampled({n})"),
            BudgetMode::Smoke => format!("smoke({SMOKE_POINTS})"),
        }
    }
}

/// Verdict for one materialized post-crash state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// Recovery restored the crash-free output exactly.
    Consistent,
    /// Recovery finished but the durable output is wrong.
    Corrupt,
    /// Recovery panicked (could not make progress on this image).
    Stuck,
}

/// Per-class fault bookkeeping for one campaign (additive across work
/// units; merged strictly in unit order, so byte-identical at any host
/// thread count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// States materialized with torn (word-granular) line persists.
    pub torn_states: u64,
    /// 8-byte words of selected census entries dropped by torn masks.
    pub torn_words_dropped: u64,
    /// Silent single-bit flips injected into post-crash images.
    pub flips: u64,
    /// Flip states where recovery reported at least one inconsistent or
    /// quarantined region (it noticed damage and repaired).
    pub flips_detected: u64,
    /// Flip states recovery reported nothing for, yet the output still
    /// verified (the flipped line was overwritten by replay).
    pub flips_benign: u64,
    /// Flip states with neither detection nor a correct output — real
    /// undetected corruption (must stay zero for a sound scheme).
    pub flips_missed: u64,
    /// Poisoned (unreadable) lines injected into post-crash images.
    pub poisons: u64,
    /// Poison states recovery quarantined (regions_quarantined > 0).
    pub poisons_detected: u64,
    /// Poison states whose image held no poisoned line after recovery —
    /// every poisoned line was rebuilt and scrubbed.
    pub poisons_scrubbed: u64,
    /// Crashes injected *during* recovery that actually fired.
    pub nested_crashes: u64,
    /// Recovery re-entries forced by nested crashes.
    pub retries: u64,
    /// States that consumed the full nested-crash bound before the final
    /// crash-free attempt converged.
    pub retry_exhausted: u64,
}

impl FaultTally {
    /// Fold another tally into this one (all counters are additive).
    pub fn merge(&mut self, o: &FaultTally) {
        self.torn_states += o.torn_states;
        self.torn_words_dropped += o.torn_words_dropped;
        self.flips += o.flips;
        self.flips_detected += o.flips_detected;
        self.flips_benign += o.flips_benign;
        self.flips_missed += o.flips_missed;
        self.poisons += o.poisons;
        self.poisons_detected += o.poisons_detected;
        self.poisons_scrubbed += o.poisons_scrubbed;
        self.nested_crashes += o.nested_crashes;
        self.retries += o.retries;
        self.retry_exhausted += o.retry_exhausted;
    }

    /// One indented summary line for fault-campaign tables.
    pub fn summary_line(&self) -> String {
        format!(
            "    faults: torn {} ({} words)  flips {} (det {} benign {} missed {})  \
             poison {} (det {} scrubbed {})  nested {} (retries {} exhausted {})",
            self.torn_states,
            self.torn_words_dropped,
            self.flips,
            self.flips_detected,
            self.flips_benign,
            self.flips_missed,
            self.poisons,
            self.poisons_detected,
            self.poisons_scrubbed,
            self.nested_crashes,
            self.retries,
            self.retry_exhausted,
        )
    }
}

/// One bad state, kept as a reproducible example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadState {
    /// The crash point (memory-operation index the crash fired after).
    pub op: u64,
    /// Census size at that point.
    pub census: usize,
    /// The selected subset, as a bit string (`entries[i]` = char `i`).
    pub subset: String,
    /// What went wrong.
    pub class: StateClass,
}

/// The outcome of checking one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McReport {
    /// The case's display name.
    pub case_name: String,
    /// Seed every sampling decision derived from.
    pub seed: u64,
    /// Census-size bound used.
    pub k: u32,
    /// Budget mode description.
    pub mode: String,
    /// Crash points discovered in the workload.
    pub points_total: usize,
    /// Crash points actually visited (the selected list).
    pub points: Vec<u64>,
    /// Largest census met at any visited point.
    pub max_census: usize,
    /// Post-crash states materialized and recovered.
    pub states_checked: u64,
    /// States whose recovery restored the reference output.
    pub consistent: u64,
    /// States with silent corruption after recovery.
    pub corrupt: u64,
    /// States on which recovery panicked.
    pub stuck: u64,
    /// The fault classes this campaign injected (display form).
    pub faults: String,
    /// Per-class fault bookkeeping (all zero when `faults` is "none").
    pub tally: FaultTally,
    /// Up to [`Self::MAX_EXAMPLES`] reproducible bad states.
    pub examples: Vec<BadState>,
}

impl McReport {
    /// How many bad-state examples a report retains.
    pub const MAX_EXAMPLES: usize = 4;

    /// `true` when every explored state recovered consistently.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.stuck == 0
    }

    /// `true` when at least one corrupt-or-stuck state was found (what a
    /// mutation run must produce).
    pub fn flagged(&self) -> bool {
        !self.clean()
    }

    /// One summary line for tables.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} points {:>5}/{:<5} states {:>7}  corrupt {:>5}  stuck {:>3}  max-census {:>3}",
            self.case_name,
            self.points.len(),
            self.points_total,
            self.states_checked,
            self.corrupt,
            self.stuck,
            self.max_census,
        )
    }
}

/// Counts memory operations from the event stream and records which
/// operation indices are crash-point candidates.
///
/// The simulator emits exactly one `Store`/`Load`/`Flush`/`Sfence` event
/// per timed memory operation (the same call sites that advance the
/// `mem_ops` crash clock), so the running event count *is* the operation
/// index `CrashTrigger::AfterMemOps` fires on. Loads advance the clock
/// but are skipped as candidates: a crash after a load exposes no NVMM
/// write the preceding candidate did not already expose.
#[derive(Default)]
struct CrashPointScout {
    op: u64,
    candidates: Vec<u64>,
}

impl EventSink for CrashPointScout {
    fn on_event(&mut self, ev: &MemEvent) {
        match ev {
            MemEvent::Store { .. } | MemEvent::Flush { .. } | MemEvent::Sfence { .. } => {
                self.op += 1;
                self.candidates.push(self.op);
            }
            MemEvent::Load { .. } => self.op += 1,
            // The commit itself is not a timed op; crash right after its
            // last constituent op (already pushed — kept for clarity and
            // in case a scheme commits with zero ops).
            MemEvent::RegionCommit { .. } if self.op > 0 => {
                self.candidates.push(self.op);
            }
            _ => {}
        }
    }
}

/// Discover every crash-point candidate of `case` via one observed clean
/// run.
fn discover_points(case: &CheckCase) -> Vec<u64> {
    let mut inst = (case.build)();
    let scout = Arc::new(Mutex::new(CrashPointScout::default()));
    inst.machine.set_observer(scout.clone());
    let plans = std::mem::take(&mut inst.plans);
    let out = inst.machine.run(plans);
    inst.machine.clear_observer();
    assert_eq!(
        out,
        Outcome::Completed,
        "{}: discovery run crashed",
        case.name
    );
    let mut pts = scout.lock().unwrap().candidates.clone();
    pts.dedup();
    pts
}

/// Apply the budget to the candidate list (deterministic in `seed`).
fn select_points(candidates: &[u64], budget: &Budget, seed: u64) -> Vec<u64> {
    let cap = match budget.mode {
        BudgetMode::Exhaustive => return candidates.to_vec(),
        BudgetMode::Sampled(n) => n.max(2),
        BudgetMode::Smoke => SMOKE_POINTS,
    };
    if candidates.len() <= cap {
        return candidates.to_vec();
    }
    // First and last always; the rest via a partial Fisher-Yates shuffle
    // of the interior indices so the sample is without replacement.
    let mut idx: Vec<usize> = (1..candidates.len() - 1).collect();
    let mut rng = Rng64::new_stream(seed, u64::MAX);
    let take = (cap - 2).min(idx.len());
    for i in 0..take {
        let j = i + rng.below(idx.len() - i);
        idx.swap(i, j);
    }
    let mut sel = vec![candidates[0], *candidates.last().expect("nonempty")];
    sel.extend(idx[..take].iter().map(|&i| candidates[i]));
    sel.sort_unstable();
    sel.dedup();
    sel
}

/// Enumerate the census subsets to materialize at one crash point:
/// all `2^m` when `m <= k`, else the empty and full subsets plus
/// `2^k - 2` seeded random ones (stream = the crash point, so every
/// point's sample is independent yet reproducible from `seed`).
fn enumerate_subsets(m: usize, k: u32, seed: u64, point: u64) -> Vec<Vec<bool>> {
    if (m as u32) <= k {
        return (0..(1u64 << m))
            .map(|mask| (0..m).map(|i| mask >> i & 1 == 1).collect())
            .collect();
    }
    let mut out = vec![vec![false; m], vec![true; m]];
    let mut rng = Rng64::new_stream(seed, point);
    for _ in 0..(1usize << k).saturating_sub(2) {
        out.push((0..m).map(|_| rng.chance(0.5)).collect());
    }
    out
}

fn subset_string(sel: &[bool]) -> String {
    sel.iter().map(|&s| if s { '1' } else { '0' }).collect()
}

/// One case's exploration plan (reference verified, points selected).
struct CasePlan {
    points_total: usize,
    points: Vec<u64>,
}

/// One flattened unit of exploration work, independent of all others.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    case: usize,
    point: u64,
    chunk: usize,
}

/// The counts and examples one work unit contributes to its case report.
#[derive(Debug, Default)]
struct UnitResult {
    census: usize,
    states_checked: u64,
    consistent: u64,
    corrupt: u64,
    stuck: u64,
    tally: FaultTally,
    examples: Vec<BadState>,
}

/// Subset-list slices per crash point. With the default census bound
/// (`k = 4` ⇒ at most 16 subsets) every point is a single unit, exactly
/// mirroring the sequential walk; a large `k` splits one heavy point's
/// subset list across several units so its recovery replays can
/// themselves fan out. Capped so the unit list stays small even for
/// extreme `k`.
fn chunks_per_point(k: u32) -> usize {
    const SUBSETS_PER_UNIT: usize = 64;
    (1usize << k.min(16)).div_ceil(SUBSETS_PER_UNIT).max(1)
}

/// Verify the crash-free reference run and select this case's crash
/// points (phase 1 of the engine; parallel over cases).
fn plan_case(case: &CheckCase, budget: &Budget, seed: u64) -> CasePlan {
    // Crash-free reference: the workload must complete and verify on its
    // own before any crash state is judged against it.
    let mut reference = (case.build)();
    let plans = std::mem::take(&mut reference.plans);
    assert_eq!(
        reference.machine.run(plans),
        Outcome::Completed,
        "{}: reference run did not complete",
        case.name
    );
    reference.machine.drain_caches();
    assert!(
        (reference.verify)(&reference.machine),
        "{}: crash-free reference run failed verification",
        case.name
    );

    let candidates = discover_points(case);
    let points = select_points(&candidates, budget, seed);
    CasePlan {
        points_total: candidates.len(),
        points,
    }
}

/// Execute one work unit: rebuild the case, replay to the crash point,
/// materialize this unit's slice of the census subsets, run real
/// recovery on each, classify (phase 2; parallel over units).
fn run_unit(case: &CheckCase, budget: &Budget, seed: u64, unit: WorkUnit) -> UnitResult {
    let mut out = UnitResult::default();
    let mut inst = (case.build)();
    inst.machine.set_adr_tracking(true);
    inst.machine
        .set_crash_trigger(CrashTrigger::AfterMemOps(unit.point));
    let plans = std::mem::take(&mut inst.plans);
    if inst.machine.run(plans) != Outcome::Crashed {
        // The candidate list came from an identical replay, so this
        // only happens for a point past the last op; skip defensively.
        return out;
    }
    let census = inst
        .machine
        .take_crash_census()
        .expect("ADR tracking was enabled");
    out.census = census.entries.len();

    let subsets = enumerate_subsets(census.entries.len(), budget.k, seed, unit.point);
    let per = subsets.len().div_ceil(chunks_per_point(budget.k));
    let start = (unit.chunk * per).min(subsets.len());
    let end = (start + per).min(subsets.len());
    // Every fault decision for this unit comes from one salted stream
    // keyed by the unit alone, never from shared state, so campaigns stay
    // byte-identical at any host thread count.
    let faults = budget.faults;
    let unit_stream = (unit.case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ unit.point.wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ unit.chunk as u64;
    let mut frng = Rng64::new_stream(seed ^ FAULT_SALT, unit_stream);
    for sel in &subsets[start..end] {
        let image = if faults.torn {
            // ADR is word-atomic, not line-atomic: each selected entry
            // persists only the words its drawn mask keeps.
            let masks = draw_word_masks(&mut frng, sel.len());
            out.tally.torn_states += 1;
            for (i, &s) in sel.iter().enumerate() {
                if s {
                    out.tally.torn_words_dropped += u64::from(masks[i].count_zeros());
                }
            }
            census.materialize_subset_torn(sel, &masks)
        } else {
            census.materialize_subset(sel)
        };
        let mut post = inst.machine.fork_with_image(image);
        let (mut injected_flip, mut injected_poison) = (false, false);
        if faults.media {
            if !inst.flip_lines.is_empty() {
                let line = inst.flip_lines[frng.below(inst.flip_lines.len())];
                let bit = frng.below(LINE_BYTES * 8);
                flip_bit(post.mem_mut().nvmm_mut(), line, bit);
                out.tally.flips += 1;
                injected_flip = true;
            }
            if !inst.poison_lines.is_empty() {
                let line = inst.poison_lines[frng.below(inst.poison_lines.len())];
                post.mem_mut().poison_line(line);
                out.tally.poisons += 1;
                injected_poison = true;
            }
        }

        // Recovery, with up to `nested_bound` crashes injected *during*
        // it; the attempt after the bound runs crash-free, so a
        // convergent (idempotent) recovery always terminates the loop.
        // An injected crash is not a panic: the machine's `crashed` flag
        // rises and subsequent ops no-op, so `recover` returns normally
        // and the flag tells the attempts apart from genuine stuckness.
        let recover = &inst.recover;
        let verify = &inst.verify;
        let bound = if faults.nested {
            faults.nested_bound
        } else {
            0
        };
        let mut state_retries = 0u64;
        let mut converged: Option<RecoveryStats> = None;
        let mut stuck = false;
        for attempt in 0..=bound {
            if attempt < bound {
                // Log-uniform offset: dense coverage of the first few
                // recovery ops (short hardening windows) while still
                // reaching deep into long kernel replays.
                let magnitude = frng.below(13);
                let offset = 1 + frng.below(1usize << magnitude);
                let at = post.mem().mem_ops() + offset as u64;
                post.set_crash_trigger(CrashTrigger::AfterMemOps(at));
            }
            let r = catch_unwind(AssertUnwindSafe(|| recover(&mut post)));
            if post.mem().crashed() {
                out.tally.nested_crashes += 1;
                out.tally.retries += 1;
                state_retries += 1;
                post.mem_mut().acknowledge_crash();
                continue;
            }
            post.clear_crash_trigger();
            match r {
                Ok(stats) => converged = Some(stats),
                Err(_) => stuck = true,
            }
            break;
        }
        if bound > 0 && state_retries == u64::from(bound) {
            out.tally.retry_exhausted += 1;
        }

        let class = if let (false, Some(stats)) = (stuck, converged) {
            let detected = stats.regions_inconsistent > 0 || stats.regions_quarantined > 0;
            let verdict = catch_unwind(AssertUnwindSafe(|| {
                post.drain_caches();
                verify(&post)
            }));
            let verified = matches!(verdict, Ok(true));
            if injected_flip {
                if detected {
                    out.tally.flips_detected += 1;
                } else if verified {
                    out.tally.flips_benign += 1;
                } else {
                    out.tally.flips_missed += 1;
                }
            }
            if injected_poison {
                if stats.regions_quarantined > 0 {
                    out.tally.poisons_detected += 1;
                }
                if post.mem().poisoned_lines().is_empty() {
                    out.tally.poisons_scrubbed += 1;
                }
            }
            match verdict {
                Ok(true) => StateClass::Consistent,
                Ok(false) => StateClass::Corrupt,
                Err(_) => StateClass::Stuck,
            }
        } else {
            StateClass::Stuck
        };
        out.states_checked += 1;
        match class {
            StateClass::Consistent => out.consistent += 1,
            StateClass::Corrupt => out.corrupt += 1,
            StateClass::Stuck => out.stuck += 1,
        }
        if class != StateClass::Consistent && out.examples.len() < McReport::MAX_EXAMPLES {
            out.examples.push(BadState {
                op: unit.point,
                census: census.entries.len(),
                subset: subset_string(sel),
                class,
            });
        }
    }
    out
}

/// Model-check every case under `budget` across up to `threads` host
/// threads, deriving every sampling decision from `seed`.
///
/// Reports are byte-identical at any thread count: work units draw from
/// per-unit RNG streams and merge strictly in `(case, point, chunk)`
/// order, so parallelism changes only the wall-clock.
///
/// # Panics
///
/// Panics if any crash-free reference run fails to complete and verify —
/// that means the *workload* is broken, not its recovery.
pub fn check_cases(
    cases: &[CheckCase],
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> Vec<McReport> {
    // Phase 1: reference + crash-point discovery, parallel over cases.
    let plans = par_map(threads, cases, |_, case| plan_case(case, budget, seed));

    // Phase 2: flatten the exploration into independent (case, point,
    // chunk) units and fan them across workers. Dynamic claiming in
    // `par_map` load-balances the heavy points.
    let mut units = Vec::new();
    for (ci, plan) in plans.iter().enumerate() {
        for &point in &plan.points {
            for chunk in 0..chunks_per_point(budget.k) {
                units.push(WorkUnit {
                    case: ci,
                    point,
                    chunk,
                });
            }
        }
    }
    let results = par_map(threads, &units, |_, &u| {
        run_unit(&cases[u.case], budget, seed, u)
    });

    // Phase 3: deterministic merge, strictly in unit order.
    let mut reports: Vec<McReport> = plans
        .iter()
        .zip(cases)
        .map(|(plan, case)| McReport {
            case_name: case.name.clone(),
            seed,
            k: budget.k,
            mode: budget.mode_name(),
            points_total: plan.points_total,
            points: plan.points.clone(),
            max_census: 0,
            states_checked: 0,
            consistent: 0,
            corrupt: 0,
            stuck: 0,
            faults: budget.faults.to_string(),
            tally: FaultTally::default(),
            examples: Vec::new(),
        })
        .collect();
    for (u, r) in units.iter().zip(results) {
        let rep = &mut reports[u.case];
        rep.max_census = rep.max_census.max(r.census);
        rep.states_checked += r.states_checked;
        rep.consistent += r.consistent;
        rep.corrupt += r.corrupt;
        rep.stuck += r.stuck;
        rep.tally.merge(&r.tally);
        for ex in r.examples {
            if rep.examples.len() < McReport::MAX_EXAMPLES {
                rep.examples.push(ex);
            }
        }
    }
    reports
}

/// Model-check one case under `budget` on the calling thread, deriving
/// every sampling decision from `seed`.
///
/// # Panics
///
/// Panics if the crash-free reference run fails to complete and verify —
/// that means the *workload* is broken, not its recovery.
pub fn check_case(case: &CheckCase, budget: &Budget, seed: u64) -> McReport {
    check_cases(std::slice::from_ref(case), budget, seed, 1)
        .pop()
        .expect("one case in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_enumeration_is_exhaustive_within_k() {
        let subs = enumerate_subsets(3, 4, 1, 1);
        assert_eq!(subs.len(), 8);
        let distinct: std::collections::BTreeSet<_> = subs.iter().cloned().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn subset_sampling_is_seeded_and_anchored() {
        let a = enumerate_subsets(10, 3, 7, 42);
        let b = enumerate_subsets(10, 3, 7, 42);
        assert_eq!(a, b, "same (seed, point) must sample the same subsets");
        assert_eq!(a.len(), 8);
        assert!(a.contains(&vec![false; 10]), "empty subset always present");
        assert!(a.contains(&vec![true; 10]), "full subset always present");
        let c = enumerate_subsets(10, 3, 7, 43);
        assert_ne!(a, c, "a different crash point samples differently");
    }

    #[test]
    fn point_selection_keeps_endpoints_and_is_deterministic() {
        let cands: Vec<u64> = (1..=100).collect();
        let budget = Budget {
            mode: BudgetMode::Sampled(10),
            k: 4,
            faults: FaultConfig::none(),
        };
        let a = select_points(&cands, &budget, 5);
        let b = select_points(&cands, &budget, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0], 1);
        assert_eq!(*a.last().unwrap(), 100);
        let c = select_points(&cands, &budget, 6);
        assert_ne!(a, c, "seed changes the interior sample");
        let exhaustive = select_points(
            &cands,
            &Budget {
                mode: BudgetMode::Exhaustive,
                k: 4,
                faults: FaultConfig::none(),
            },
            5,
        );
        assert_eq!(exhaustive, cands);
    }

    #[test]
    fn sampled_reports_are_deterministic_per_seed() {
        let case = crate::mutations::lp_skip_fold();
        let budget = Budget {
            mode: BudgetMode::Sampled(6),
            k: 3,
            faults: FaultConfig::none(),
        };
        let a = check_case(&case, &budget, 9);
        let b = check_case(&case, &budget, 9);
        assert_eq!(a.points, b.points);
        assert_eq!(
            (a.states_checked, a.consistent, a.corrupt, a.stuck),
            (b.states_checked, b.consistent, b.corrupt, b.stuck),
        );
        let c = check_case(&case, &budget, 10);
        assert_eq!(
            c.points.first(),
            a.points.first(),
            "the first crash point is always visited"
        );
    }
}

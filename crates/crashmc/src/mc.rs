//! The model-checking engine: snapshot the census at every crash point in
//! one forward pass, enumerate the reachable NVMM states, run real
//! recovery on each new state, classify.
//!
//! # Snapshot-resume exploration
//!
//! The engine runs each case forward exactly twice. The first run is the
//! crash-free *reference*: it must complete and verify, and it records
//! every crash-point candidate natively (no observer on the hot path).
//! The second run arms census snapshots at the selected points and
//! captures, at each one, the same [`lp_sim::memsys::CrashCensus`] a
//! crash there would have — the simulator is deterministic and an armed
//! crash has no effect before it fires, so the machine state at op `p` is
//! identical either way (asserted by the sim crate's own tests). Workers
//! then *resume* from a snapshot by materializing a census subset into a
//! COW NVMM fork ([`Machine::fork_with_image`]) instead of rebuilding the
//! case and replaying ops `0..p` per point, which the previous engine
//! spent O(points × trace) redundant simulation on.
//!
//! # Crash-state deduplication
//!
//! Distinct census subsets frequently materialize the *same* durable
//! image (entries that duplicate each other or the floor). Every state is
//! fingerprinted — a 128-bit FNV over its touched lines plus its pending
//! fault draws — and a repeat fingerprint at the same crash point replays
//! the memoized verdict instead of re-running recovery. Duplicates still
//! count in the census totals, and the hit counting is defined by subset
//! order alone ("seen at an earlier subset of this point"), so reports
//! are byte-identical whether deduplication is on or off and at any
//! thread count; `--dedup off` only forfeits the wall-clock savings.
//!
//! # Parallel exploration
//!
//! The engine decomposes a run into independent *work units* — one per
//! `(case, crash point, subset range)`, ranges sized to the thread count
//! — and fans them across host threads with
//! [`lp_sim::par::par_map_collect`], which accumulates results
//! worker-locally and merges once at the end. Every stochastic choice is
//! drawn from an [`Rng64::new_stream`] keyed by the individual *state*
//! `(case, point, subset index)`, never by the unit, so re-chunking the
//! work (more threads, fewer subsets per unit) cannot move a fault draw.
//! Results merge strictly in unit order, which makes the reports
//! byte-identical at any thread count (see DESIGN.md, "Parallel
//! execution model" and "Snapshot-resume and crash-state dedup").

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use lp_core::recovery::RecoveryStats;
use lp_sim::addr::{LineAddr, LINE_BYTES};
use lp_sim::fault::{draw_word_masks_into, flip_bit, FaultConfig};
use lp_sim::machine::{Machine, Outcome, ThreadPlan};
use lp_sim::mem::Nvmm;
use lp_sim::memsys::CrashCensus;
use lp_sim::memsys::CrashTrigger;
use lp_sim::par::{par_map, par_map_collect};
use lp_sim::rng::Rng64;

/// Salt mixed into the seed for the fault-injection RNG streams, so fault
/// placement is independent of (but as reproducible as) subset sampling.
const FAULT_SALT: u64 = 0xFA17_0A75_11EC_7ED5;

/// One freshly-built, never-run instance of a checked workload.
///
/// The machine is *not* clonable (plans hold `FnOnce` region closures),
/// so the checker rebuilds the case from its factory for each of its two
/// forward passes; determinism of the simulator guarantees each rebuild
/// behaves identically.
pub struct PreparedCase {
    /// The machine with the workload's data initialized.
    pub machine: Machine,
    /// One plan per logical core.
    pub plans: Vec<ThreadPlan<'static>>,
    /// The scheme's real crash recovery (run on a forked post-crash
    /// image before `verify`).
    pub recover: Box<dyn Fn(&mut Machine) -> RecoveryStats + Send + Sync>,
    /// Checks the durable image against the crash-free expectation.
    pub verify: Box<dyn Fn(&Machine) -> bool + Send + Sync>,
    /// Lines the fault campaign may silently bit-flip (empty disables
    /// flips for this case; only Lazy schemes detect silent corruption).
    pub flip_lines: Vec<LineAddr>,
    /// Lines the fault campaign may poison (empty disables poison).
    pub poison_lines: Vec<LineAddr>,
}

/// A checkable workload: a name plus a factory producing fresh,
/// identically-behaving instances.
///
/// The factory is `Send + Sync` so any worker thread can rebuild the
/// case; in practice factories capture only plain configuration data.
pub struct CheckCase {
    /// Display name (`TMM/LP(modular)`, `mut:ep_skip_fence`, ...).
    pub name: String,
    /// Builds one fresh instance per forward pass.
    pub build: Box<dyn Fn() -> PreparedCase + Send + Sync>,
}

/// How many crash points to visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMode {
    /// Every discovered crash point.
    Exhaustive,
    /// A deterministic seeded sample of this many points (first and last
    /// always included).
    Sampled(usize),
    /// A fixed tiny sample for CI gates.
    Smoke,
}

/// Points visited under [`BudgetMode::Smoke`].
pub const SMOKE_POINTS: usize = 12;

/// The checker's exploration budget.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Crash-point selection policy.
    pub mode: BudgetMode,
    /// Census-size bound: up to `2^k` subsets per crash point. Censuses
    /// with at most `k` undetermined lines are enumerated exhaustively;
    /// larger ones are sampled (empty and full subsets always included).
    pub k: u32,
    /// Fault classes injected on top of the clean ADR crash model.
    pub faults: FaultConfig,
    /// Skip recovery on states whose dedup key was already judged at the
    /// same crash point (`true` everywhere except A/B validation runs).
    /// Reports are byte-identical either way; `false` only costs time.
    pub dedup: bool,
}

impl Budget {
    fn mode_name(&self) -> String {
        match self.mode {
            BudgetMode::Exhaustive => "exhaustive".into(),
            BudgetMode::Sampled(n) => format!("sampled({n})"),
            BudgetMode::Smoke => format!("smoke({SMOKE_POINTS})"),
        }
    }
}

/// Verdict for one materialized post-crash state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// Recovery restored the crash-free output exactly.
    Consistent,
    /// Recovery finished but the durable output is wrong.
    Corrupt,
    /// Recovery panicked (could not make progress on this image).
    Stuck,
}

/// Per-class fault bookkeeping for one campaign (additive across work
/// units; merged strictly in unit order, so byte-identical at any host
/// thread count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// States materialized with torn (word-granular) line persists.
    pub torn_states: u64,
    /// 8-byte words of selected census entries dropped by torn masks.
    pub torn_words_dropped: u64,
    /// Silent single-bit flips injected into post-crash images.
    pub flips: u64,
    /// Flip states where recovery reported at least one inconsistent or
    /// quarantined region (it noticed damage and repaired).
    pub flips_detected: u64,
    /// Flip states recovery reported nothing for, yet the output still
    /// verified (the flipped line was overwritten by replay).
    pub flips_benign: u64,
    /// Flip states with neither detection nor a correct output — real
    /// undetected corruption (must stay zero for a sound scheme).
    pub flips_missed: u64,
    /// Poisoned (unreadable) lines injected into post-crash images.
    pub poisons: u64,
    /// Poison draws widened to two adjacent lines (media bursts). Each
    /// burst also counts twice in `poisons` (one per poisoned line).
    pub bursts: u64,
    /// Poison states recovery quarantined or repaired in place
    /// (regions_quarantined > 0 or repaired_lines > 0).
    pub poisons_detected: u64,
    /// Poison states whose image held no poisoned line after recovery —
    /// every poisoned line was rebuilt and scrubbed.
    pub poisons_scrubbed: u64,
    /// Crashes injected *during* recovery that actually fired.
    pub nested_crashes: u64,
    /// Recovery re-entries forced by nested crashes.
    pub retries: u64,
    /// States that consumed the full nested-crash bound before the final
    /// crash-free attempt converged.
    pub retry_exhausted: u64,
    /// Lines rebuilt in place from the parity arena (repair-ladder rung 1)
    /// across all converged recoveries.
    pub repaired_lines: u64,
    /// Rung-1 repair attempts that refused or failed verification.
    pub repair_failures: u64,
    /// Regions that fell from rung 1 to rung 2 (recompute/quarantine)
    /// after a failed repair attempt.
    pub escalations: u64,
}

impl FaultTally {
    /// Fold another tally into this one (all counters are additive).
    pub fn merge(&mut self, o: &FaultTally) {
        self.torn_states += o.torn_states;
        self.torn_words_dropped += o.torn_words_dropped;
        self.flips += o.flips;
        self.flips_detected += o.flips_detected;
        self.flips_benign += o.flips_benign;
        self.flips_missed += o.flips_missed;
        self.poisons += o.poisons;
        self.bursts += o.bursts;
        self.poisons_detected += o.poisons_detected;
        self.poisons_scrubbed += o.poisons_scrubbed;
        self.nested_crashes += o.nested_crashes;
        self.retries += o.retries;
        self.retry_exhausted += o.retry_exhausted;
        self.repaired_lines += o.repaired_lines;
        self.repair_failures += o.repair_failures;
        self.escalations += o.escalations;
    }

    /// One indented summary line for fault-campaign tables.
    pub fn summary_line(&self) -> String {
        format!(
            "    faults: torn {} ({} words)  flips {} (det {} benign {} missed {})  \
             poison {} (bursts {} det {} scrubbed {})  \
             repair {} (failed {} escalated {})  nested {} (retries {} exhausted {})",
            self.torn_states,
            self.torn_words_dropped,
            self.flips,
            self.flips_detected,
            self.flips_benign,
            self.flips_missed,
            self.poisons,
            self.bursts,
            self.poisons_detected,
            self.poisons_scrubbed,
            self.repaired_lines,
            self.repair_failures,
            self.escalations,
            self.nested_crashes,
            self.retries,
            self.retry_exhausted,
        )
    }
}

/// One bad state, kept as a reproducible example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadState {
    /// The crash point (memory-operation index the crash fired after).
    pub op: u64,
    /// Census size at that point.
    pub census: usize,
    /// The selected subset, as a bit string (`entries[i]` = char `i`).
    pub subset: String,
    /// What went wrong.
    pub class: StateClass,
}

/// The outcome of checking one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McReport {
    /// The case's display name.
    pub case_name: String,
    /// Seed every sampling decision derived from.
    pub seed: u64,
    /// Census-size bound used.
    pub k: u32,
    /// Budget mode description.
    pub mode: String,
    /// Crash points discovered in the workload.
    pub points_total: usize,
    /// Crash points actually visited (the selected list).
    pub points: Vec<u64>,
    /// Largest census met at any visited point.
    pub max_census: usize,
    /// Post-crash states materialized and judged (deduplicated states
    /// included — a duplicate is judged by memo replay).
    pub states_checked: u64,
    /// States whose recovery restored the reference output.
    pub consistent: u64,
    /// States with silent corruption after recovery.
    pub corrupt: u64,
    /// States on which recovery panicked.
    pub stuck: u64,
    /// States whose dedup key had already been met at an earlier subset
    /// of the same crash point. Independent of thread count and of the
    /// `--dedup` setting (the flag controls skipping, not counting).
    pub dedup_hits: u64,
    /// Simulated memory ops the snapshot-resume pass saved versus
    /// replaying each visited crash point from op 0 (Σ points − one
    /// trace), i.e. the redundant work the previous engine performed.
    pub replay_saved_ops: u64,
    /// The fault classes this campaign injected (display form).
    pub faults: String,
    /// Per-class fault bookkeeping (all zero when `faults` is "none").
    pub tally: FaultTally,
    /// Up to [`Self::MAX_EXAMPLES`] reproducible bad states.
    pub examples: Vec<BadState>,
}

impl McReport {
    /// How many bad-state examples a report retains.
    pub const MAX_EXAMPLES: usize = 4;

    /// `true` when every explored state recovered consistently.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.stuck == 0
    }

    /// `true` when at least one corrupt-or-stuck state was found (what a
    /// mutation run must produce).
    pub fn flagged(&self) -> bool {
        !self.clean()
    }

    /// One summary line for tables.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} points {:>5}/{:<5} states {:>7}  corrupt {:>5}  stuck {:>3}  max-census {:>3}  dedup {:>6}",
            self.case_name,
            self.points.len(),
            self.points_total,
            self.states_checked,
            self.corrupt,
            self.stuck,
            self.max_census,
            self.dedup_hits,
        )
    }
}

/// Apply the budget to the candidate list (deterministic in `seed`).
fn select_points(candidates: &[u64], budget: &Budget, seed: u64) -> Vec<u64> {
    let cap = match budget.mode {
        BudgetMode::Exhaustive => return candidates.to_vec(),
        BudgetMode::Sampled(n) => n.max(2),
        BudgetMode::Smoke => SMOKE_POINTS,
    };
    if candidates.len() <= cap {
        return candidates.to_vec();
    }
    // First and last always; the rest via a partial Fisher-Yates shuffle
    // of the interior indices so the sample is without replacement.
    let mut idx: Vec<usize> = (1..candidates.len() - 1).collect();
    let mut rng = Rng64::new_stream(seed, u64::MAX);
    let take = (cap - 2).min(idx.len());
    for i in 0..take {
        let j = i + rng.below(idx.len() - i);
        idx.swap(i, j);
    }
    let mut sel = vec![candidates[0], *candidates.last().expect("nonempty")];
    sel.extend(idx[..take].iter().map(|&i| candidates[i]));
    sel.sort_unstable();
    sel.dedup();
    sel
}

/// Enumerate the census subsets to materialize at one crash point:
/// all `2^m` when `m <= k`, else the empty and full subsets plus
/// `2^k - 2` seeded random ones (stream = the crash point, so every
/// point's sample is independent yet reproducible from `seed`).
fn enumerate_subsets(m: usize, k: u32, seed: u64, point: u64) -> Vec<Vec<bool>> {
    if (m as u32) <= k {
        return (0..(1u64 << m))
            .map(|mask| (0..m).map(|i| mask >> i & 1 == 1).collect())
            .collect();
    }
    let mut out = vec![vec![false; m], vec![true; m]];
    let mut rng = Rng64::new_stream(seed, point);
    for _ in 0..(1usize << k).saturating_sub(2) {
        out.push((0..m).map(|_| rng.chance(0.5)).collect());
    }
    out
}

/// How many subsets [`enumerate_subsets`] yields for an `m`-entry census,
/// computable without enumerating (used to slice work units).
fn subset_count(m: usize, k: u32) -> usize {
    if (m as u32) <= k {
        1usize << m
    } else {
        1usize << k
    }
}

fn subset_string(sel: &[bool]) -> String {
    sel.iter().map(|&s| if s { '1' } else { '0' }).collect()
}

/// One case, prepared for exploration: reference verified, crash points
/// selected, and a census snapshot captured at every selected point by a
/// single forward pass. Shared read-only across workers; each worker
/// resumes a state by forking `machine` with a materialized image.
struct CaseRuntime {
    /// The snapshot-pass machine (completed run; forked per state for its
    /// config and heap layout, never mutated again).
    machine: Machine,
    /// The case's real crash recovery.
    recover: Box<dyn Fn(&mut Machine) -> RecoveryStats + Send + Sync>,
    /// The case's output check.
    verify: Box<dyn Fn(&Machine) -> bool + Send + Sync>,
    /// Lines the fault campaign may silently bit-flip.
    flip_lines: Vec<LineAddr>,
    /// Lines the fault campaign may poison.
    poison_lines: Vec<LineAddr>,
    /// Crash-point candidates discovered (before budget selection).
    points_total: usize,
    /// The selected crash points, ascending.
    points: Vec<u64>,
    /// The census at each selected point (parallel to `points`).
    censuses: Vec<CrashCensus>,
    /// Total memory ops in one forward pass of the trace.
    trace_ops: u64,
}

/// One flattened unit of exploration work — a contiguous range of subset
/// indices at one crash point — independent of all others.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    case: usize,
    point_idx: usize,
    start: usize,
    end: usize,
}

/// The counts and examples one work unit contributes to its case report.
#[derive(Debug, Default)]
struct UnitResult {
    census: usize,
    states_checked: u64,
    consistent: u64,
    corrupt: u64,
    stuck: u64,
    dedup_hits: u64,
    tally: FaultTally,
    examples: Vec<BadState>,
}

/// Subsets judged per work unit: fewer when more workers are available,
/// so even a default-bound census (`k = 4` ⇒ 16 subsets) splits across
/// an 8-thread host instead of leaving most workers idle — the previous
/// fixed 64-subsets-per-unit floor made every point a single unit and
/// starved wide hosts on the kernel matrix. The floor of 8 keeps the
/// per-unit preamble (hash-only pass over earlier subsets) amortized.
fn subsets_per_unit(threads: usize) -> usize {
    (64 / threads.max(1)).max(8)
}

/// The fault/sampling RNG stream for one state, keyed by `(case, point,
/// subset index)` — never by the work unit — so re-chunking the subset
/// ranges (a different `--threads`) cannot move any draw.
fn state_rng(seed: u64, case: usize, point: u64, subset_idx: usize) -> Rng64 {
    let stream = (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ point.wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ (subset_idx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    Rng64::new_stream(seed ^ FAULT_SALT, stream)
}

/// Verify the crash-free reference run, select this case's crash points,
/// and capture a census snapshot at each (phase 1; parallel over cases).
fn prepare_case(case: &CheckCase, budget: &Budget, seed: u64) -> CaseRuntime {
    // Crash-free reference: the workload must complete and verify on its
    // own before any crash state is judged against it. The same run
    // records every crash-point candidate natively (no observer, no
    // second discovery pass).
    let mut reference = (case.build)();
    reference.machine.set_candidate_tracking(true);
    let plans = std::mem::take(&mut reference.plans);
    assert_eq!(
        reference.machine.run(plans),
        Outcome::Completed,
        "{}: reference run did not complete",
        case.name
    );
    let candidates = reference.machine.take_crash_candidates();
    reference.machine.drain_caches();
    assert!(
        (reference.verify)(&reference.machine),
        "{}: crash-free reference run failed verification",
        case.name
    );
    let points = select_points(&candidates, budget, seed);

    // Snapshot pass: one more forward run, capturing at every selected
    // point the census a crash there would have seen. This replaces the
    // previous engine's rebuild-and-replay per (point, chunk) unit.
    let mut inst = (case.build)();
    inst.machine.set_adr_tracking(true);
    inst.machine.set_snapshot_points(&points);
    let plans = std::mem::take(&mut inst.plans);
    assert_eq!(
        inst.machine.run(plans),
        Outcome::Completed,
        "{}: snapshot run did not complete",
        case.name
    );
    let snapshots = inst.machine.take_snapshots();
    let trace_ops = inst.machine.mem().mem_ops();
    assert_eq!(
        snapshots.len(),
        points.len(),
        "{}: every candidate point lies within the trace",
        case.name
    );
    CaseRuntime {
        machine: inst.machine,
        recover: inst.recover,
        verify: inst.verify,
        flip_lines: inst.flip_lines,
        poison_lines: inst.poison_lines,
        points_total: candidates.len(),
        points,
        censuses: snapshots.into_iter().map(|(_, c)| c).collect(),
        trace_ops,
    }
}

/// One materialized post-crash state: the image (torn persists and any
/// bit flip already applied) plus the fault draws that produced it.
struct Materialized {
    image: Nvmm,
    torn_words_dropped: u64,
    flip_line: Option<LineAddr>,
    poison_line: Option<LineAddr>,
    /// Second poisoned line of a media burst (an address-adjacent
    /// repairable neighbour of `poison_line`), when `burst` is on and
    /// such a neighbour exists.
    poison_partner: Option<LineAddr>,
}

/// Materialize the post-crash image for one census subset, drawing every
/// fault decision for this state from `frng` (draw order is part of the
/// determinism contract: torn masks, flip line, flip bit, poison line;
/// the burst partner is derived from the poison draw, not drawn, so
/// enabling `burst` does not shift any stream).
fn materialize_state(
    census: &CrashCensus,
    sel: &[bool],
    faults: &FaultConfig,
    flip_lines: &[LineAddr],
    poison_lines: &[LineAddr],
    frng: &mut Rng64,
    scratch: &mut UnitScratch,
) -> Materialized {
    let (mut image, torn_words_dropped) = if faults.torn {
        // ADR is word-atomic, not line-atomic: each selected entry
        // persists only the words its drawn mask keeps.
        draw_word_masks_into(frng, sel.len(), &mut scratch.masks);
        let masks = &scratch.masks;
        let mut dropped = 0u64;
        for (i, &s) in sel.iter().enumerate() {
            if s {
                dropped += u64::from(masks[i].count_zeros());
            }
        }
        (census.materialize_subset_torn(sel, masks), dropped)
    } else {
        (census.materialize_subset(sel), 0)
    };
    let mut flip_line = None;
    let mut poison_line = None;
    if faults.media {
        if !flip_lines.is_empty() {
            let line = flip_lines[frng.below(flip_lines.len())];
            let bit = frng.below(LINE_BYTES * 8);
            flip_bit(&mut image, line, bit);
            flip_line = Some(line);
        }
        if !poison_lines.is_empty() {
            poison_line = Some(poison_lines[frng.below(poison_lines.len())]);
        }
    }
    // A burst takes out the drawn line plus an address-adjacent
    // repairable neighbour (next line first, previous as fallback).
    // Restricting the partner to `poison_lines` keeps the campaign's
    // contract that every poisoned line is rebuildable by recovery;
    // a line with no such neighbour degenerates to a single poison.
    let poison_partner = match poison_line {
        Some(line) if faults.burst => {
            let next = LineAddr(line.0 + 1);
            let prev = LineAddr(line.0.wrapping_sub(1));
            if poison_lines.contains(&next) {
                Some(next)
            } else if line.0 > 0 && poison_lines.contains(&prev) {
                Some(prev)
            } else {
                None
            }
        }
        _ => None,
    };
    Materialized {
        image,
        torn_words_dropped,
        flip_line,
        poison_line,
        poison_partner,
    }
}

/// Two independent FNV-1a lanes over the same bytes: a 128-bit-effective
/// fingerprint, std-only, cheap enough to run on every state.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xaf63_bd4c_8601_b7df,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01B3);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Allocation arena reused across every state a work unit replays: the
/// torn-mask draw buffer and the dedup-key line list are cleared and
/// refilled per state instead of reallocated (the materialized images
/// themselves are cheap COW overlay forks and are not pooled).
#[derive(Default)]
struct UnitScratch {
    masks: Vec<u8>,
    lines: Vec<LineAddr>,
}

/// The dedup key of one state: a fingerprint of every line the census (or
/// a fault) may have touched in the materialized image, the pending
/// poison draw, and — when nested-crash injection is live — the exact
/// remaining fault-RNG stream. Two states with equal keys are judged
/// identically (same image, same recovery-time randomness), so a repeat
/// key can replay the memoized verdict; the RNG fingerprint keeps states
/// with different pending draws apart even when their images collide.
fn state_key(
    census: &CrashCensus,
    mat: &Materialized,
    rng_fp: Option<u64>,
    scratch: &mut UnitScratch,
) -> (u64, u64) {
    let lines = &mut scratch.lines;
    lines.clear();
    lines.extend(census.entries.iter().map(|e| e.line));
    if let Some(l) = mat.flip_line {
        lines.push(l);
    }
    lines.sort_unstable();
    lines.dedup();
    let mut h = Fnv2::new();
    let mut buf = [0u8; LINE_BYTES];
    for &line in lines.iter() {
        h.write_u64(line.0);
        mat.image.read_line(line, &mut buf);
        h.write(&buf);
    }
    h.write_u64(mat.poison_line.map_or(u64::MAX, |l| l.0));
    h.write_u64(mat.poison_partner.map_or(u64::MAX, |l| l.0));
    match rng_fp {
        Some(fp) => {
            h.write_u64(1);
            h.write_u64(fp);
        }
        None => h.write_u64(0),
    }
    (h.a, h.b)
}

/// Everything judging one state produces — memoized by dedup so a repeat
/// state replays the verdict (class counters *and* recovery-side fault
/// bookkeeping) without running recovery again.
#[derive(Debug, Clone, Copy)]
struct StateOutcome {
    class: StateClass,
    flip_detected: bool,
    flip_benign: bool,
    flip_missed: bool,
    poison_detected: bool,
    poison_scrubbed: bool,
    nested_crashes: u64,
    retries: u64,
    retry_exhausted: bool,
    repaired_lines: u64,
    repair_failures: u64,
    escalations: u64,
}

/// Resume one materialized state (fork the snapshot machine with its
/// image), run real recovery with nested-crash injection, and classify.
fn judge_state(
    rt: &CaseRuntime,
    mat: Materialized,
    faults: &FaultConfig,
    frng: &mut Rng64,
) -> StateOutcome {
    let Materialized {
        image,
        flip_line,
        poison_line,
        poison_partner,
        ..
    } = mat;
    let mut post = rt.machine.fork_with_image(image);
    if let Some(line) = poison_line {
        post.mem_mut().poison_line(line);
    }
    if let Some(partner) = poison_partner {
        post.mem_mut().poison_line(partner);
    }
    let mut out = StateOutcome {
        class: StateClass::Stuck,
        flip_detected: false,
        flip_benign: false,
        flip_missed: false,
        poison_detected: false,
        poison_scrubbed: false,
        nested_crashes: 0,
        retries: 0,
        retry_exhausted: false,
        repaired_lines: 0,
        repair_failures: 0,
        escalations: 0,
    };

    // Recovery, with up to `nested_bound` crashes injected *during* it;
    // the attempt after the bound runs crash-free, so a convergent
    // (idempotent) recovery always terminates the loop. An injected
    // crash is not a panic: the machine's `crashed` flag rises and
    // subsequent ops no-op, so `recover` returns normally and the flag
    // tells the attempts apart from genuine stuckness.
    let recover = &rt.recover;
    let verify = &rt.verify;
    let bound = if faults.nested {
        faults.nested_bound
    } else {
        0
    };
    let mut state_retries = 0u64;
    let mut converged: Option<RecoveryStats> = None;
    let mut stuck = false;
    for attempt in 0..=bound {
        if attempt < bound {
            // Log-uniform offset: dense coverage of the first few
            // recovery ops (short hardening windows) while still
            // reaching deep into long kernel replays.
            let magnitude = frng.below(13);
            let offset = 1 + frng.below(1usize << magnitude);
            let at = post.mem().mem_ops() + offset as u64;
            post.set_crash_trigger(CrashTrigger::AfterMemOps(at));
        }
        let r = catch_unwind(AssertUnwindSafe(|| recover(&mut post)));
        if post.mem().crashed() {
            out.nested_crashes += 1;
            out.retries += 1;
            state_retries += 1;
            post.mem_mut().acknowledge_crash();
            continue;
        }
        post.clear_crash_trigger();
        match r {
            Ok(stats) => converged = Some(stats),
            Err(_) => stuck = true,
        }
        break;
    }
    if bound > 0 && state_retries == u64::from(bound) {
        out.retry_exhausted = true;
    }

    out.class = if let (false, Some(stats)) = (stuck, converged) {
        // Repair-ladder bookkeeping from the converged (final) attempt —
        // interrupted nested attempts may repair lines that the re-entry
        // then re-verifies, so only the attempt whose image survives is
        // charged, keeping counts independent of the nested draw depth.
        out.repaired_lines = stats.repaired_lines;
        out.repair_failures = stats.repair_failures;
        out.escalations = stats.escalations;
        let detected = stats.regions_inconsistent > 0 || stats.regions_quarantined > 0;
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            post.drain_caches();
            verify(&post)
        }));
        let verified = matches!(verdict, Ok(true));
        if flip_line.is_some() {
            if detected {
                out.flip_detected = true;
            } else if verified {
                out.flip_benign = true;
            } else {
                out.flip_missed = true;
            }
        }
        if poison_line.is_some() {
            if stats.regions_quarantined > 0 || stats.repaired_lines > 0 {
                out.poison_detected = true;
            }
            if !post.mem().has_poisoned_lines() {
                out.poison_scrubbed = true;
            }
        }
        match verdict {
            Ok(true) => StateClass::Consistent,
            Ok(false) => StateClass::Corrupt,
            Err(_) => StateClass::Stuck,
        }
    } else {
        StateClass::Stuck
    };
    out
}

/// Execute one work unit: materialize this range of the crash point's
/// census subsets from the snapshot (no replay), judge each new state,
/// replay memoized verdicts for duplicates (phase 2; parallel over
/// units).
///
/// The subsets *before* `unit.start` get a hash-only preamble pass so
/// "seen at an earlier subset of this point" — the definition of a dedup
/// hit — is a property of subset order, not of how the ranges were
/// chunked across threads. A duplicate whose first occurrence fell in an
/// earlier unit is still counted as a hit but re-judged here (its
/// verdict is identical by construction; only wall-clock is lost).
fn run_unit(rt: &CaseRuntime, budget: &Budget, seed: u64, unit: &WorkUnit) -> UnitResult {
    let mut out = UnitResult::default();
    let census = &rt.censuses[unit.point_idx];
    let point = rt.points[unit.point_idx];
    out.census = census.entries.len();
    let subsets = enumerate_subsets(census.entries.len(), budget.k, seed, point);
    let faults = budget.faults;
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut memo: HashMap<(u64, u64), StateOutcome> = HashMap::new();
    let mut scratch = UnitScratch::default();
    for (idx, sel) in subsets.iter().enumerate().take(unit.end) {
        let mut frng = state_rng(seed, unit.case, point, idx);
        let mat = materialize_state(
            census,
            sel,
            &faults,
            &rt.flip_lines,
            &rt.poison_lines,
            &mut frng,
            &mut scratch,
        );
        // The fingerprint pins the recovery-time draws; without nested
        // injection recovery consumes no randomness, so images alone
        // decide equality and dedup can actually fire.
        let fp = faults.nested.then(|| frng.fingerprint());
        let key = state_key(census, &mat, fp, &mut scratch);
        if idx < unit.start {
            seen.insert(key);
            continue;
        }
        let duplicate = !seen.insert(key);
        out.states_checked += 1;
        if faults.torn {
            out.tally.torn_states += 1;
            out.tally.torn_words_dropped += mat.torn_words_dropped;
        }
        if mat.flip_line.is_some() {
            out.tally.flips += 1;
        }
        if mat.poison_line.is_some() {
            out.tally.poisons += 1;
        }
        if mat.poison_partner.is_some() {
            out.tally.poisons += 1;
            out.tally.bursts += 1;
        }
        if duplicate {
            out.dedup_hits += 1;
        }
        let outcome = match memo.get(&key) {
            Some(o) if duplicate && budget.dedup => *o,
            _ => {
                let o = judge_state(rt, mat, &faults, &mut frng);
                memo.insert(key, o);
                o
            }
        };
        out.tally.flips_detected += u64::from(outcome.flip_detected);
        out.tally.flips_benign += u64::from(outcome.flip_benign);
        out.tally.flips_missed += u64::from(outcome.flip_missed);
        out.tally.poisons_detected += u64::from(outcome.poison_detected);
        out.tally.poisons_scrubbed += u64::from(outcome.poison_scrubbed);
        out.tally.nested_crashes += outcome.nested_crashes;
        out.tally.retries += outcome.retries;
        out.tally.retry_exhausted += u64::from(outcome.retry_exhausted);
        out.tally.repaired_lines += outcome.repaired_lines;
        out.tally.repair_failures += outcome.repair_failures;
        out.tally.escalations += outcome.escalations;
        match outcome.class {
            StateClass::Consistent => out.consistent += 1,
            StateClass::Corrupt => out.corrupt += 1,
            StateClass::Stuck => out.stuck += 1,
        }
        if outcome.class != StateClass::Consistent && out.examples.len() < McReport::MAX_EXAMPLES {
            out.examples.push(BadState {
                op: point,
                census: census.entries.len(),
                subset: subset_string(sel),
                class: outcome.class,
            });
        }
    }
    out
}

/// Model-check every case under `budget` across up to `threads` host
/// threads, deriving every sampling decision from `seed`.
///
/// Reports are byte-identical at any thread count and either `--dedup`
/// setting: every stochastic draw comes from a per-state RNG stream,
/// dedup hits are defined by subset order alone, and results merge
/// strictly in `(case, point, subset range)` order — parallelism and
/// memoization change only the wall-clock.
///
/// # Panics
///
/// Panics if any crash-free reference run fails to complete and verify —
/// that means the *workload* is broken, not its recovery.
pub fn check_cases(
    cases: &[CheckCase],
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> Vec<McReport> {
    // Phase 1: reference + point selection + census snapshots, parallel
    // over cases. Two forward passes per case, total — the old engine
    // ran 2 + (points × chunks) passes.
    let runtimes = par_map(threads, cases, |_, case| prepare_case(case, budget, seed));

    // Phase 2: flatten the exploration into independent (case, point,
    // subset range) units and fan them across workers with worker-local
    // accumulation. Range width adapts to the thread count so even small
    // censuses produce enough units to keep every worker busy.
    let per = subsets_per_unit(threads);
    let mut units = Vec::new();
    for (ci, rt) in runtimes.iter().enumerate() {
        for (pi, census) in rt.censuses.iter().enumerate() {
            let n = subset_count(census.entries.len(), budget.k);
            let mut start = 0;
            while start < n {
                let end = (start + per).min(n);
                units.push(WorkUnit {
                    case: ci,
                    point_idx: pi,
                    start,
                    end,
                });
                start = end;
            }
        }
    }
    let results = par_map_collect(threads, &units, |_, u| {
        run_unit(&runtimes[u.case], budget, seed, u)
    });

    // Phase 3: deterministic merge, strictly in unit order.
    let mut reports: Vec<McReport> = runtimes
        .iter()
        .zip(cases)
        .map(|(rt, case)| McReport {
            case_name: case.name.clone(),
            seed,
            k: budget.k,
            mode: budget.mode_name(),
            points_total: rt.points_total,
            points: rt.points.clone(),
            max_census: 0,
            states_checked: 0,
            consistent: 0,
            corrupt: 0,
            stuck: 0,
            dedup_hits: 0,
            replay_saved_ops: rt.points.iter().sum::<u64>().saturating_sub(rt.trace_ops),
            faults: budget.faults.to_string(),
            tally: FaultTally::default(),
            examples: Vec::new(),
        })
        .collect();
    for (u, r) in units.iter().zip(results) {
        let rep = &mut reports[u.case];
        rep.max_census = rep.max_census.max(r.census);
        rep.states_checked += r.states_checked;
        rep.consistent += r.consistent;
        rep.corrupt += r.corrupt;
        rep.stuck += r.stuck;
        rep.dedup_hits += r.dedup_hits;
        rep.tally.merge(&r.tally);
        for ex in r.examples {
            if rep.examples.len() < McReport::MAX_EXAMPLES {
                rep.examples.push(ex);
            }
        }
    }
    reports
}

/// Model-check one case under `budget` on the calling thread, deriving
/// every sampling decision from `seed`.
///
/// # Panics
///
/// Panics if the crash-free reference run fails to complete and verify —
/// that means the *workload* is broken, not its recovery.
pub fn check_case(case: &CheckCase, budget: &Budget, seed: u64) -> McReport {
    check_cases(std::slice::from_ref(case), budget, seed, 1)
        .pop()
        .expect("one case in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::config::MachineConfig;
    use lp_sim::memsys::{CensusEntry, CensusOrigin};

    #[test]
    fn subset_enumeration_is_exhaustive_within_k() {
        let subs = enumerate_subsets(3, 4, 1, 1);
        assert_eq!(subs.len(), 8);
        assert_eq!(subset_count(3, 4), 8);
        let distinct: std::collections::BTreeSet<_> = subs.iter().cloned().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn subset_sampling_is_seeded_and_anchored() {
        let a = enumerate_subsets(10, 3, 7, 42);
        let b = enumerate_subsets(10, 3, 7, 42);
        assert_eq!(a, b, "same (seed, point) must sample the same subsets");
        assert_eq!(a.len(), 8);
        assert_eq!(subset_count(10, 3), 8);
        assert!(a.contains(&vec![false; 10]), "empty subset always present");
        assert!(a.contains(&vec![true; 10]), "full subset always present");
        let c = enumerate_subsets(10, 3, 7, 43);
        assert_ne!(a, c, "a different crash point samples differently");
    }

    #[test]
    fn point_selection_keeps_endpoints_and_is_deterministic() {
        let cands: Vec<u64> = (1..=100).collect();
        let budget = Budget {
            mode: BudgetMode::Sampled(10),
            k: 4,
            faults: FaultConfig::none(),
            dedup: true,
        };
        let a = select_points(&cands, &budget, 5);
        let b = select_points(&cands, &budget, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0], 1);
        assert_eq!(*a.last().unwrap(), 100);
        let c = select_points(&cands, &budget, 6);
        assert_ne!(a, c, "seed changes the interior sample");
        let exhaustive = select_points(
            &cands,
            &Budget {
                mode: BudgetMode::Exhaustive,
                k: 4,
                faults: FaultConfig::none(),
                dedup: true,
            },
            5,
        );
        assert_eq!(exhaustive, cands);
    }

    #[test]
    fn unit_width_adapts_to_threads() {
        assert_eq!(subsets_per_unit(1), 64);
        assert_eq!(subsets_per_unit(2), 32);
        assert_eq!(subsets_per_unit(4), 16);
        assert_eq!(subsets_per_unit(8), 8);
        assert_eq!(subsets_per_unit(64), 8, "floor keeps preambles cheap");
        // A k=4 census (16 subsets) now yields 2 units on an 8-thread
        // host instead of 1 — the fix for the starved kernel matrix.
        assert_eq!(16usize.div_ceil(subsets_per_unit(8)), 2);
    }

    #[test]
    fn sampled_reports_are_deterministic_per_seed() {
        let case = crate::mutations::lp_skip_fold();
        let budget = Budget {
            mode: BudgetMode::Sampled(6),
            k: 3,
            faults: FaultConfig::none(),
            dedup: true,
        };
        let a = check_case(&case, &budget, 9);
        let b = check_case(&case, &budget, 9);
        assert_eq!(a.points, b.points);
        assert_eq!(
            (a.states_checked, a.consistent, a.corrupt, a.stuck),
            (b.states_checked, b.consistent, b.corrupt, b.stuck),
        );
        let c = check_case(&case, &budget, 10);
        assert_eq!(
            c.points.first(),
            a.points.first(),
            "the first crash point is always visited"
        );
    }

    /// A synthetic one-point runtime whose census holds two entries with
    /// identical line and data, so three of the four subsets materialize
    /// the very same image.
    fn synthetic_runtime() -> CaseRuntime {
        let machine = Machine::new(MachineConfig::default().with_nvmm_bytes(1 << 16));
        let base = machine.nvmm_fork();
        let mut data = [0u8; LINE_BYTES];
        data[0] = 7;
        let entry = CensusEntry {
            line: LineAddr(1),
            data,
            origin: CensusOrigin::DirtyL2,
        };
        CaseRuntime {
            machine,
            recover: Box::new(|_| RecoveryStats::default()),
            verify: Box::new(|_| true),
            flip_lines: Vec::new(),
            poison_lines: Vec::new(),
            points_total: 1,
            points: vec![5],
            censuses: vec![CrashCensus {
                base,
                entries: vec![entry.clone(), entry],
            }],
            trace_ops: 10,
        }
    }

    #[test]
    fn dedup_counts_duplicate_images_and_keeps_reports_identical() {
        let rt = synthetic_runtime();
        let budget = Budget {
            mode: BudgetMode::Exhaustive,
            k: 4,
            faults: FaultConfig::none(),
            dedup: true,
        };
        let unit = WorkUnit {
            case: 0,
            point_idx: 0,
            start: 0,
            end: 4,
        };
        let on = run_unit(&rt, &budget, 1, &unit);
        assert_eq!(on.states_checked, 4, "duplicates still count");
        assert_eq!(
            on.dedup_hits, 2,
            "{{e0}}, {{e1}}, {{e0,e1}} share one image"
        );
        let off = run_unit(
            &rt,
            &Budget {
                dedup: false,
                ..budget
            },
            1,
            &unit,
        );
        assert_eq!(off.states_checked, on.states_checked);
        assert_eq!(
            off.dedup_hits, on.dedup_hits,
            "the flag never changes counts"
        );
        assert_eq!(off.consistent, on.consistent);
    }

    #[test]
    fn chunked_units_agree_with_one_unit() {
        let rt = synthetic_runtime();
        let budget = Budget {
            mode: BudgetMode::Exhaustive,
            k: 4,
            faults: FaultConfig::none(),
            dedup: true,
        };
        let unit = |start, end| WorkUnit {
            case: 0,
            point_idx: 0,
            start,
            end,
        };
        let whole = run_unit(&rt, &budget, 1, &unit(0, 4));
        let a = run_unit(&rt, &budget, 1, &unit(0, 2));
        let b = run_unit(&rt, &budget, 1, &unit(2, 4));
        assert_eq!(whole.states_checked, a.states_checked + b.states_checked);
        assert_eq!(
            whole.dedup_hits,
            a.dedup_hits + b.dedup_hits,
            "hit counting must not depend on the chunk partition"
        );
        assert_eq!(whole.consistent, a.consistent + b.consistent);
    }

    #[test]
    fn dedup_never_caches_across_differing_fault_draws() {
        let rt = synthetic_runtime();
        let budget = Budget {
            mode: BudgetMode::Exhaustive,
            k: 4,
            faults: FaultConfig {
                nested: true,
                nested_bound: 1,
                ..FaultConfig::none()
            },
            dedup: true,
        };
        let unit = WorkUnit {
            case: 0,
            point_idx: 0,
            start: 0,
            end: 4,
        };
        let r = run_unit(&rt, &budget, 1, &unit);
        assert_eq!(r.states_checked, 4);
        assert_eq!(
            r.dedup_hits, 0,
            "identical images with distinct fault-RNG streams never share a key"
        );
    }
}

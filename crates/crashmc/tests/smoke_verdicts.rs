//! Pins the crashmc smoke verdicts for the kernel matrix: the explored
//! crash points, state counts, verdict classes, and dedup hits must be
//! byte-identical across simulator hot-path changes (the crash census,
//! snapshot-resume materialization, and recovery replay all ride on the
//! memory system, so any semantic drift there shows up here).
//!
//! Regenerate (only for intentional exploration-model changes) with:
//!
//! ```text
//! LP_INVARIANCE_BLESS=1 cargo test -p lp-crashmc --test smoke_verdicts
//! ```

use lp_core::scheme::Scheme;
use lp_crashmc::cases::kernel_case;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_kernels::driver::{KernelId, Scale};
use lp_sim::fault::FaultConfig;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/smoke_verdicts.txt")
}

#[test]
fn kernel_matrix_smoke_verdicts_pinned() {
    let cases: Vec<_> = KernelId::ALL
        .iter()
        .flat_map(|&k| {
            [Scheme::lazy_default(), Scheme::Eager, Scheme::Wal]
                .into_iter()
                .map(move |s| kernel_case(k, s, Scale::Micro))
        })
        .collect();
    let budget = Budget {
        mode: BudgetMode::Smoke,
        k: 3,
        faults: FaultConfig::none(),
        dedup: true,
    };
    let reports = check_cases(&cases, &budget, 42, 2);
    let mut lines = Vec::new();
    for r in &reports {
        let points: Vec<String> = r
            .points
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        lines.push(format!(
            "{} points=[{}] states={} consistent={} corrupt={} stuck={} dedup={} max_census={}",
            r.case_name,
            points.join(","),
            r.states_checked,
            r.consistent,
            r.corrupt,
            r.stuck,
            r.dedup_hits,
            r.max_census,
        ));
    }
    let actual = format!("{}\n", lines.join("\n"));
    let path = golden_path();
    if std::env::var_os("LP_INVARIANCE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir goldens");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with LP_INVARIANCE_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "crashmc smoke verdicts drifted — the hot-path overhaul must keep \
         census/recovery semantics byte-identical"
    );
}

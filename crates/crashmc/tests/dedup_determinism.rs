//! The dedup contract: `--dedup` controls whether recovery is *re-run*
//! on repeat crash states, never what the report says. Reports must be
//! byte-identical for `--dedup on` vs `--dedup off`, at every thread
//! count, with and without fault injection — memoization and
//! parallelism may only change the wall-clock.

use lp_crashmc::cases::kernel_case;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode, McReport};
use lp_kernels::driver::{KernelId, Scale};
use lp_sim::fault::FaultConfig;

fn budget(dedup: bool, faults: FaultConfig) -> Budget {
    Budget {
        mode: BudgetMode::Sampled(8),
        k: 3,
        faults,
        dedup,
    }
}

/// Render a report set the way `lp-crashmc` prints it, so the comparison
/// covers exactly what a user would diff.
fn render(reports: &[McReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.summary_line());
        out.push('\n');
        out.push_str(&r.tally.summary_line());
        out.push('\n');
        for ex in &r.examples {
            out.push_str(&format!(
                "    {:?} at op {} (census {}, subset {})\n",
                ex.class, ex.op, ex.census, ex.subset
            ));
        }
    }
    out
}

#[test]
fn reports_are_byte_identical_across_dedup_settings_and_thread_counts() {
    let cases = || {
        vec![
            kernel_case(
                KernelId::Tmm,
                lp_core::scheme::Scheme::lazy_default(),
                Scale::Micro,
            ),
            kernel_case(KernelId::Gauss, lp_core::scheme::Scheme::Wal, Scale::Micro),
        ]
    };
    let baseline = check_cases(&cases(), &budget(true, FaultConfig::none()), 42, 1);
    for threads in [1usize, 2, 4, 8] {
        for dedup in [true, false] {
            let got = check_cases(&cases(), &budget(dedup, FaultConfig::none()), 42, threads);
            assert_eq!(
                baseline, got,
                "report diverged at threads={threads} dedup={dedup}"
            );
            assert_eq!(render(&baseline), render(&got));
        }
    }
}

#[test]
fn fault_campaign_reports_are_byte_identical_across_dedup_and_threads() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases = || {
        vec![kernel_case(
            KernelId::Cholesky,
            lp_core::scheme::Scheme::lazy_default(),
            Scale::Micro,
        )]
    };
    let faults = FaultConfig::parse("torn,media,nested").unwrap();
    let baseline = check_cases(&cases(), &budget(true, faults), 7, 1);
    for threads in [1usize, 2, 4, 8] {
        for dedup in [true, false] {
            let got = check_cases(&cases(), &budget(dedup, faults), 7, threads);
            assert_eq!(
                baseline, got,
                "faulted report diverged at threads={threads} dedup={dedup}"
            );
        }
    }
    std::panic::set_hook(prev);
}

#[test]
fn dedup_savings_are_reported() {
    let reports = check_cases(
        &[kernel_case(
            KernelId::Tmm,
            lp_core::scheme::Scheme::lazy_default(),
            Scale::Micro,
        )],
        &budget(true, FaultConfig::none()),
        42,
        2,
    );
    let r = &reports[0];
    assert!(
        r.replay_saved_ops > 0,
        "snapshot-resume must save replay work on a multi-point case"
    );
    assert!(r.dedup_hits <= r.states_checked);
}

//! The parallel exploration engine's determinism contract: the same
//! `--seed` produces identical reports at any thread count.

use lp_crashmc::cases::kernel_case;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_crashmc::mutations;
use lp_kernels::driver::{KernelId, Scale};

fn budget() -> Budget {
    Budget {
        mode: BudgetMode::Sampled(8),
        k: 3,
    }
}

/// Render a report set the way `lp-crashmc` prints it, so the comparison
/// covers exactly what a user would diff.
fn render(reports: &[lp_crashmc::mc::McReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.summary_line());
        out.push('\n');
        for ex in &r.examples {
            out.push_str(&format!(
                "    {:?} at op {} (census {}, subset {})\n",
                ex.class, ex.op, ex.census, ex.subset
            ));
        }
    }
    out
}

#[test]
fn kernel_reports_are_byte_identical_across_thread_counts() {
    let cases = vec![
        kernel_case(
            KernelId::Tmm,
            lp_core::scheme::Scheme::lazy_default(),
            Scale::Micro,
        ),
        kernel_case(
            KernelId::Gauss,
            lp_core::scheme::Scheme::Eager,
            Scale::Micro,
        ),
    ];
    let seq = check_cases(&cases, &budget(), 42, 1);
    let par = check_cases(&cases, &budget(), 42, 8);
    assert_eq!(seq, par, "structured reports must match exactly");
    assert_eq!(render(&seq), render(&par), "rendered reports must match");
}

#[test]
fn mutation_reports_are_byte_identical_and_still_flagged() {
    // Recovery legitimately panics on some corrupt images; silence the
    // default hook as the binary does.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases = mutations::all();
    let seq = check_cases(&cases, &budget(), 7, 1);
    let par = check_cases(&cases, &budget(), 7, 8);
    std::panic::set_hook(prev);
    assert_eq!(seq, par);
    for r in &par {
        assert!(r.flagged(), "{} must stay flagged in parallel", r.case_name);
    }
}

#[test]
fn chunked_subset_exploration_matches_unchunked_counts() {
    // k = 8 forces multiple subset chunks per crash point; totals and
    // examples must still match the single-threaded walk.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases = vec![mutations::all().remove(0)];
    let b = Budget {
        mode: BudgetMode::Sampled(4),
        k: 8,
    };
    let seq = check_cases(&cases, &b, 3, 1);
    let par = check_cases(&cases, &b, 3, 6);
    std::panic::set_hook(prev);
    assert_eq!(seq, par);
}

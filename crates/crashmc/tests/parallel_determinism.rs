//! The parallel exploration engine's determinism contract: the same
//! `--seed` produces identical reports at any thread count.

use lp_crashmc::cases::kernel_case;
use lp_crashmc::mc::{check_cases, Budget, BudgetMode};
use lp_crashmc::mutations;
use lp_kernels::driver::{KernelId, Scale};
use lp_sim::fault::FaultConfig;

fn budget() -> Budget {
    Budget {
        mode: BudgetMode::Sampled(8),
        k: 3,
        faults: FaultConfig::none(),
        dedup: true,
    }
}

/// Render a report set the way `lp-crashmc` prints it, so the comparison
/// covers exactly what a user would diff.
fn render(reports: &[lp_crashmc::mc::McReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.summary_line());
        out.push('\n');
        for ex in &r.examples {
            out.push_str(&format!(
                "    {:?} at op {} (census {}, subset {})\n",
                ex.class, ex.op, ex.census, ex.subset
            ));
        }
    }
    out
}

#[test]
fn kernel_reports_are_byte_identical_across_thread_counts() {
    let cases = vec![
        kernel_case(
            KernelId::Tmm,
            lp_core::scheme::Scheme::lazy_default(),
            Scale::Micro,
        ),
        kernel_case(
            KernelId::Gauss,
            lp_core::scheme::Scheme::Eager,
            Scale::Micro,
        ),
    ];
    let seq = check_cases(&cases, &budget(), 42, 1);
    let par = check_cases(&cases, &budget(), 42, 8);
    assert_eq!(seq, par, "structured reports must match exactly");
    assert_eq!(render(&seq), render(&par), "rendered reports must match");
}

#[test]
fn mutation_reports_are_byte_identical_and_still_flagged() {
    // Recovery legitimately panics on some corrupt images; silence the
    // default hook as the binary does.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases = mutations::all();
    let seq = check_cases(&cases, &budget(), 7, 1);
    let par = check_cases(&cases, &budget(), 7, 8);
    std::panic::set_hook(prev);
    assert_eq!(seq, par);
    for r in &par {
        assert!(r.flagged(), "{} must stay flagged in parallel", r.case_name);
    }
}

#[test]
fn faulted_reports_are_byte_identical_across_thread_counts() {
    // Fault RNG streams are keyed by (case, point, subset index), so
    // torn masks, flip positions, and nested-crash offsets must not move
    // when the work is spread (and re-chunked) across threads.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let b = Budget {
        faults: FaultConfig::parse("torn,media,nested").unwrap(),
        ..budget()
    };
    let cases = vec![
        kernel_case(
            KernelId::Cholesky,
            lp_core::scheme::Scheme::Wal,
            Scale::Micro,
        ),
        kernel_case(
            KernelId::Fft,
            lp_core::scheme::Scheme::lazy_default(),
            Scale::Micro,
        ),
    ];
    let seq = check_cases(&cases, &b, 42, 1);
    let par = check_cases(&cases, &b, 42, 8);
    std::panic::set_hook(prev);
    assert_eq!(seq, par, "faulted structured reports must match exactly");
    for r in &par {
        assert!(
            r.clean(),
            "{} must survive the fault campaign ({} corrupt, {} stuck)",
            r.case_name,
            r.corrupt,
            r.stuck,
        );
        assert!(r.tally.torn_states > 0 && r.tally.poisons > 0);
    }
}

#[test]
fn chunked_subset_exploration_matches_unchunked_counts() {
    // k = 8 forces multiple subset chunks per crash point; totals and
    // examples must still match the single-threaded walk.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cases = vec![mutations::all().remove(0)];
    let b = Budget {
        mode: BudgetMode::Sampled(4),
        k: 8,
        faults: FaultConfig::none(),
        dedup: true,
    };
    let seq = check_cases(&cases, &b, 3, 1);
    let par = check_cases(&cases, &b, 3, 6);
    std::panic::set_hook(prev);
    assert_eq!(seq, par);
}

//! Physical addresses and cache-line addresses in the simulated NVMM space.

use std::fmt;

/// Log2 of the cache line size. All caches in the hierarchy use 64-byte
/// lines, matching Table II of the paper.
pub const LINE_SHIFT: u32 = 6;
/// Cache line size in bytes (64 B).
pub const LINE_BYTES: usize = 1 << LINE_SHIFT;

/// A byte address in the simulated physical (NVMM) address space.
///
/// Addresses are plain offsets into the NVMM image; there is no virtual
/// memory in the simulator. `Addr` is a newtype so that byte addresses,
/// line addresses, and array indices cannot be mixed up.
///
/// # Examples
///
/// ```
/// use lp_sim::addr::{Addr, LineAddr};
/// let a = Addr(130);
/// assert_eq!(a.line(), LineAddr(2));
/// assert_eq!(a.line_offset(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> usize {
        (self.0 & (LINE_BYTES as u64 - 1)) as usize
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line address: the byte address divided by the 64-byte line size.
///
/// # Examples
///
/// ```
/// use lp_sim::addr::{Addr, LineAddr};
/// let l = LineAddr(3);
/// assert_eq!(l.base(), Addr(192));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first byte of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Tag for a cache with `set_count` sets (power of two).
    #[inline]
    pub fn tag(self, set_bits: u32) -> u64 {
        self.0 >> set_bits
    }

    /// Set index for a cache with `1 << set_bits` sets.
    #[inline]
    pub fn set_index(self, set_bits: u32) -> usize {
        (self.0 & ((1u64 << set_bits) - 1)) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Iterator over the distinct line addresses covering a byte range.
///
/// # Examples
///
/// ```
/// use lp_sim::addr::{lines_covering, Addr, LineAddr};
/// let v: Vec<LineAddr> = lines_covering(Addr(60), 8).collect();
/// assert_eq!(v, vec![LineAddr(0), LineAddr(1)]);
/// ```
pub fn lines_covering(start: Addr, bytes: u64) -> impl Iterator<Item = LineAddr> {
    let first = start.line().0;
    let last = if bytes == 0 {
        first
    } else {
        Addr(start.0 + bytes - 1).line().0
    };
    (first..=last).map(LineAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_addr() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(128).line_offset(), 0);
        assert_eq!(Addr(129).line_offset(), 1);
    }

    #[test]
    fn line_base_roundtrip() {
        for i in [0u64, 1, 5, 1000] {
            let l = LineAddr(i);
            assert_eq!(l.base().line(), l);
        }
    }

    #[test]
    fn tag_and_set() {
        // 4 sets -> 2 set bits.
        let l = LineAddr(0b1011);
        assert_eq!(l.set_index(2), 0b11);
        assert_eq!(l.tag(2), 0b10);
    }

    #[test]
    fn covering_lines() {
        let v: Vec<_> = lines_covering(Addr(0), 64).collect();
        assert_eq!(v, vec![LineAddr(0)]);
        let v: Vec<_> = lines_covering(Addr(0), 65).collect();
        assert_eq!(v, vec![LineAddr(0), LineAddr(1)]);
        let v: Vec<_> = lines_covering(Addr(10), 0).collect();
        assert_eq!(v, vec![LineAddr(0)]);
        let v: Vec<_> = lines_covering(Addr(200), 200).collect();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{}", LineAddr(2)), "L0x2");
    }
}

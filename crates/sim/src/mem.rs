//! The NVMM image, typed persistent arrays, and a bump allocator.
//!
//! The non-volatile main memory is modelled as a flat byte array. Only data
//! that has been written back from the cache hierarchy (naturally evicted,
//! flushed, cleaned, or drained) lives here; a crash discards all cache
//! contents and keeps exactly this image.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::addr::{Addr, LineAddr, LINE_BYTES};

/// Byte pattern a poisoned (media-error) line reads as. Repeated across
/// the line it forms [`POISON_WORD`] in every 8-byte word, so checksum
/// folds over poisoned data are deterministic.
pub const POISON_BYTE: u8 = 0xDE;

/// The 8-byte little-endian word a poisoned line reads as.
pub const POISON_WORD: u64 = u64::from_le_bytes([POISON_BYTE; 8]);

/// Number of 8-byte words in a cache line (torn-write granularity).
pub const WORDS_PER_LINE: usize = LINE_BYTES / 8;

/// Lines per copy-on-write overlay page (64 lines = 4 KiB of data), so a
/// line number splits into `page = lineno >> 6`, `slot = lineno & 63` with
/// plain shifts — no hashing anywhere on the overlay path.
const PAGE_LINES: usize = 64;
/// `log2(PAGE_LINES)`.
const PAGE_LINE_SHIFT: u32 = 6;

/// One overlay page: a presence bitmap plus the line payloads. Pages are
/// boxed so an unpopulated directory slot costs one null pointer, and the
/// whole page (bitmap + 4 KiB) clones with a single memcpy on fork.
#[derive(Debug, Clone)]
struct OverlayPage {
    /// Bit `s` set ⇒ line `s` of this page lives in `data`.
    present: u64,
    /// Line payloads; only `present` slots are meaningful.
    data: [[u8; LINE_BYTES]; PAGE_LINES],
}

impl OverlayPage {
    fn new_boxed() -> Box<OverlayPage> {
        Box::new(OverlayPage {
            present: 0,
            data: [[0u8; LINE_BYTES]; PAGE_LINES],
        })
    }
}

/// The simulated non-volatile main memory: a flat byte image with
/// copy-on-write forking.
///
/// All contents are durable by definition. The cache hierarchy reads lines
/// from and writes lines to this image; [`crate::machine::Machine`] exposes
/// `poke_*`/`peek_*` helpers that bypass the hierarchy for setup and
/// post-crash inspection.
///
/// The image is a shared base (`Arc<Vec<u8>>`) plus a per-handle *paged*
/// overlay: a directory of `Option<Box<OverlayPage>>` indexed by
/// `lineno >> 6`, each page holding a presence bitmap and 64 line
/// payloads. Every overlay access is line-index arithmetic (two shifts and
/// a bit test) — no hashing. [`Nvmm::fork`] is O(touched pages) — it
/// shares the base and clones only populated pages — so a crash-state
/// model checker can explore thousands of candidate post-crash images
/// without deep-copying the heap. The directory grows lazily to the
/// highest written page, and the bump allocator hands out addresses from
/// zero upward, so its span tracks the *used* heap, not the configured
/// capacity. A handle that uniquely owns its base (the common, unforked
/// case) flattens the overlay back into the base on write, so normal
/// simulation pays no overlay cost.
///
/// The base is atomically reference-counted so a whole image (and hence a
/// machine) can move across host threads: the parallel exploration engine
/// forks images on one worker and recovers them on another.
///
/// # Media faults
///
/// A line can be *poisoned* ([`Nvmm::poison_line`]): its cells are
/// re-programmed to the fixed [`POISON_BYTE`] pattern and the line is
/// remembered in a poison set. Reads simply observe the pattern (the model
/// is deterministic, not an exception machine); any subsequent full-line
/// write re-programs the cells and *scrubs* the poison, which is exactly
/// what a cache writeback does. Recovery code queries
/// [`Nvmm::poisoned_lines`] to quarantine regions it must not trust.
#[derive(Debug, Clone)]
pub struct Nvmm {
    base: Arc<Vec<u8>>,
    /// Paged overlay directory, indexed by `lineno >> PAGE_LINE_SHIFT`.
    overlay: Vec<Option<Box<OverlayPage>>>,
    /// Lines currently present across all overlay pages (O(1) emptiness
    /// test for the read fast path).
    overlay_count: usize,
    /// Lines currently poisoned (ordered for deterministic reporting).
    poisoned: BTreeSet<u64>,
}

impl Nvmm {
    /// Create an image of `bytes` capacity, zero-filled.
    pub fn new(bytes: usize) -> Self {
        Nvmm {
            base: Arc::new(vec![0u8; bytes]),
            overlay: Vec::new(),
            overlay_count: 0,
            poisoned: BTreeSet::new(),
        }
    }

    /// The overlay payload for `lineno`, if that line has been written
    /// since the base was last uniquely owned.
    #[inline]
    fn overlay_get(&self, lineno: u64) -> Option<&[u8; LINE_BYTES]> {
        let page = (lineno >> PAGE_LINE_SHIFT) as usize;
        let slot = (lineno & (PAGE_LINES as u64 - 1)) as usize;
        match self.overlay.get(page) {
            Some(Some(p)) if p.present & (1u64 << slot) != 0 => Some(&p.data[slot]),
            _ => None,
        }
    }

    /// A writable overlay payload for `lineno`, seeded from the base image
    /// when the line was not yet present (read-modify-write path).
    fn overlay_line_mut(&mut self, lineno: u64) -> &mut [u8; LINE_BYTES] {
        let page = (lineno >> PAGE_LINE_SHIFT) as usize;
        let slot = (lineno & (PAGE_LINES as u64 - 1)) as usize;
        if page >= self.overlay.len() {
            self.overlay.resize_with(page + 1, || None);
        }
        let p = self.overlay[page].get_or_insert_with(OverlayPage::new_boxed);
        if p.present & (1u64 << slot) == 0 {
            p.present |= 1u64 << slot;
            self.overlay_count += 1;
            let lb = lineno as usize * LINE_BYTES;
            p.data[slot].copy_from_slice(&self.base[lb..lb + LINE_BYTES]);
        }
        &mut self.overlay[page].as_mut().expect("page just ensured").data[slot]
    }

    /// Install `buf` as the overlay payload for `lineno` (full-line write;
    /// no base seed needed).
    fn overlay_insert(&mut self, lineno: u64, buf: &[u8; LINE_BYTES]) {
        let page = (lineno >> PAGE_LINE_SHIFT) as usize;
        let slot = (lineno & (PAGE_LINES as u64 - 1)) as usize;
        if page >= self.overlay.len() {
            self.overlay.resize_with(page + 1, || None);
        }
        let p = self.overlay[page].get_or_insert_with(OverlayPage::new_boxed);
        if p.present & (1u64 << slot) == 0 {
            p.present |= 1u64 << slot;
            self.overlay_count += 1;
        }
        p.data[slot] = *buf;
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.base.len()
    }

    /// A copy-on-write fork of the current image. The fork shares the
    /// base bytes with `self`; writes on either side land in that side's
    /// private overlay (or in a freshly-owned base once the other handles
    /// are dropped), so forking is O(touched overlay pages), not O(heap).
    pub fn fork(&self) -> Nvmm {
        Nvmm {
            base: Arc::clone(&self.base),
            overlay: self.overlay.clone(),
            overlay_count: self.overlay_count,
            poisoned: self.poisoned.clone(),
        }
    }

    /// Number of lines currently living in this handle's overlay (0 when
    /// the handle uniquely owns its base). Exposed for fork-cost metrics.
    pub fn overlay_lines(&self) -> usize {
        self.overlay_count
    }

    /// Whether the base image is shared with other forks.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.base) > 1
    }

    /// If the base is uniquely owned, merge the overlay back into it so
    /// subsequent writes take the direct path. Early-outs on an empty
    /// overlay (the common unforked case) before touching the refcount.
    fn flatten(&mut self) {
        if self.overlay_count == 0 {
            return;
        }
        if let Some(data) = Arc::get_mut(&mut self.base) {
            for (pi, slot) in self.overlay.iter().enumerate() {
                let Some(p) = slot else { continue };
                let mut present = p.present;
                while present != 0 {
                    let s = present.trailing_zeros() as usize;
                    present &= present - 1;
                    let base = (pi * PAGE_LINES + s) * LINE_BYTES;
                    data[base..base + LINE_BYTES].copy_from_slice(&p.data[s]);
                }
            }
            self.overlay.clear();
            self.overlay_count = 0;
        }
    }

    #[inline]
    fn check_line(&self, line: LineAddr) {
        let base = line.base().0 as usize;
        debug_assert_eq!(base % LINE_BYTES, 0, "line base must be line-aligned");
        debug_assert!(
            base + LINE_BYTES <= self.base.len(),
            "line {line} outside the NVMM image ({} bytes)",
            self.base.len()
        );
        let _ = base;
    }

    /// Read a full cache line into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn read_line(&self, line: LineAddr, buf: &mut [u8; LINE_BYTES]) {
        self.check_line(line);
        // Fast path: an unforked image has no overlay, so skip the page
        // probe entirely (this runs on every simulated line fill).
        if self.overlay_count != 0 {
            if let Some(over) = self.overlay_get(line.0) {
                *buf = *over;
                return;
            }
        }
        let base = line.base().0 as usize;
        buf.copy_from_slice(&self.base[base..base + LINE_BYTES]);
    }

    /// Write a full cache line from `buf`. A full-line write re-programs
    /// every cell, so it scrubs any poison on the line.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn write_line(&mut self, line: LineAddr, buf: &[u8; LINE_BYTES]) {
        self.check_line(line);
        if !self.poisoned.is_empty() {
            self.poisoned.remove(&line.0);
        }
        if Arc::get_mut(&mut self.base).is_some() {
            self.flatten();
            let base = line.base().0 as usize;
            let data = Arc::get_mut(&mut self.base).expect("uniquely owned");
            data[base..base + LINE_BYTES].copy_from_slice(buf);
        } else {
            self.overlay_insert(line.0, buf);
        }
    }

    /// Write only the 8-byte words of `buf` selected by `word_mask` (bit
    /// `w` selects bytes `[8w, 8w+8)`), leaving the rest of the line as it
    /// was — a *torn* line persist. ADR platforms guarantee 8-byte-aligned
    /// atomic durability but nothing wider, so a crash mid-writeback may
    /// land any subset of a line's words.
    ///
    /// The merge happens at write time (read current line, splice selected
    /// words, store the full line), so [`Nvmm::read_line`] and
    /// [`Nvmm::fork`] need no per-word bookkeeping and the empty-overlay
    /// read fast path is untouched. Like any write, a torn write
    /// re-programs the line's cells and scrubs poison.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn write_words(&mut self, line: LineAddr, buf: &[u8; LINE_BYTES], word_mask: u8) {
        if word_mask == 0 {
            return;
        }
        if word_mask == 0xFF {
            self.write_line(line, buf);
            return;
        }
        let mut merged = [0u8; LINE_BYTES];
        self.read_line(line, &mut merged);
        for w in 0..WORDS_PER_LINE {
            if word_mask & (1u8 << w) != 0 {
                merged[8 * w..8 * w + 8].copy_from_slice(&buf[8 * w..8 * w + 8]);
            }
        }
        self.write_line(line, &merged);
    }

    /// Mark `line` as a media error: its cells now hold the
    /// [`POISON_BYTE`] pattern and the line is tracked as poisoned until a
    /// writeback scrubs it.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn poison_line(&mut self, line: LineAddr) {
        self.check_line(line);
        self.write_line(line, &[POISON_BYTE; LINE_BYTES]);
        self.poisoned.insert(line.0);
    }

    /// Whether `line` is currently poisoned.
    pub fn is_poisoned(&self, line: LineAddr) -> bool {
        self.poisoned.contains(&line.0)
    }

    /// All currently poisoned lines, in ascending address order.
    pub fn poisoned_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.poisoned_lines_into(&mut out);
        out
    }

    /// [`Nvmm::poisoned_lines`] into a caller-owned buffer (cleared
    /// first), so tight loops can reuse the allocation.
    pub fn poisoned_lines_into(&self, out: &mut Vec<LineAddr>) {
        out.clear();
        out.extend(self.poisoned.iter().map(|&l| LineAddr(l)));
    }

    /// Number of currently poisoned lines.
    pub fn poisoned_count(&self) -> usize {
        self.poisoned.len()
    }

    /// Read `N` bytes at an arbitrary address (setup/inspection path).
    pub fn peek_bytes(&self, addr: Addr, out: &mut [u8]) {
        let base = addr.0 as usize;
        assert!(base + out.len() <= self.base.len(), "peek out of bounds");
        if self.overlay_count == 0 {
            out.copy_from_slice(&self.base[base..base + out.len()]);
            return;
        }
        // Forked image: stitch base and overlay line-chunk by line-chunk.
        let end = base + out.len();
        let mut at = base;
        while at < end {
            let off = at % LINE_BYTES;
            let n = (LINE_BYTES - off).min(end - at);
            let dst = &mut out[at - base..at - base + n];
            match self.overlay_get((at / LINE_BYTES) as u64) {
                Some(over) => dst.copy_from_slice(&over[off..off + n]),
                None => dst.copy_from_slice(&self.base[at..at + n]),
            }
            at += n;
        }
    }

    /// Write bytes at an arbitrary address (setup path; this models data
    /// that is already durable before the measured run begins).
    pub fn poke_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let base = addr.0 as usize;
        assert!(base + bytes.len() <= self.base.len(), "poke out of bounds");
        if Arc::get_mut(&mut self.base).is_some() {
            self.flatten();
            let data = Arc::get_mut(&mut self.base).expect("uniquely owned");
            data[base..base + bytes.len()].copy_from_slice(bytes);
            return;
        }
        // Forked image: splice line-chunk by line-chunk into the overlay,
        // seeding each newly-present line from the base.
        let end = base + bytes.len();
        let mut at = base;
        while at < end {
            let off = at % LINE_BYTES;
            let n = (LINE_BYTES - off).min(end - at);
            let over = self.overlay_line_mut((at / LINE_BYTES) as u64);
            over[off..off + n].copy_from_slice(&bytes[at - base..at - base + n]);
            at += n;
        }
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
    impl Sealed for i64 {}
}

/// Plain scalar types that can live in simulated persistent memory.
///
/// This trait is sealed; it is implemented for `f64`, `f32`, `u64`, `u32`
/// and `i64`. Values are stored as little-endian bit patterns so that a
/// crash (which operates on raw bytes) round-trips exactly.
pub trait Scalar: private::Sealed + Copy + PartialEq + std::fmt::Debug + Default {
    /// Size of the scalar in bytes.
    const SIZE: usize;
    /// Widen the bit pattern to 64 bits (zero-extended).
    fn to_bits64(self) -> u64;
    /// Recover the value from a 64-bit bit pattern.
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for f32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for u64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

impl Scalar for u32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as u32
    }
}

impl Scalar for i64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

/// A typed handle to a contiguous array in simulated persistent memory.
///
/// `PArray` is a cheap `Copy` handle (base address + length); the actual
/// bytes live in the NVMM image / cache hierarchy. Element accesses go
/// through [`crate::core::CoreCtx`] so they are timed and crash-aware;
/// `Machine::poke_slice`/`peek_slice` provide untimed setup access.
///
/// # Examples
///
/// ```
/// use lp_sim::machine::Machine;
/// use lp_sim::config::MachineConfig;
/// let mut m = Machine::new(MachineConfig::default().with_nvmm_bytes(1 << 20));
/// let arr = m.alloc::<f64>(100).unwrap();
/// m.poke(arr, 3, 1.5);
/// assert_eq!(m.peek(arr, 3), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PArray<T: Scalar> {
    base: Addr,
    len: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Scalar> PArray<T> {
    pub(crate) fn from_raw(base: Addr, len: usize) -> Self {
        PArray {
            base,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base byte address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "PArray index {i} out of bounds (len {})",
            self.len
        );
        Addr(self.base.0 + (i * T::SIZE) as u64)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Distinct cache lines covered by the whole array.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> {
        crate::addr::lines_covering(self.base, self.bytes())
    }

    /// Distinct cache lines covered by elements `[start, start+count)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn lines_of_range(&self, start: usize, count: usize) -> impl Iterator<Item = LineAddr> {
        assert!(start + count <= self.len, "range out of bounds");
        let first = Addr(self.base.0 + (start * T::SIZE) as u64);
        crate::addr::lines_covering(first, (count * T::SIZE) as u64)
    }
}

/// Error returned when the persistent heap runs out of capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfPersistentMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes remaining in the heap.
    pub available: u64,
}

impl std::fmt::Display for OutOfPersistentMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of persistent memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfPersistentMemory {}

/// Line-aligned bump allocator over the NVMM address space.
///
/// Allocations are aligned to cache-line boundaries so distinct arrays never
/// share a line (avoiding false sharing between simulated threads and making
/// flush sets exact).
#[derive(Debug, Clone)]
pub struct PersistentHeap {
    cursor: u64,
    capacity: u64,
}

impl PersistentHeap {
    /// A heap spanning `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        PersistentHeap {
            cursor: 0,
            capacity,
        }
    }

    /// Allocate a typed array of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the heap is exhausted.
    pub fn alloc<T: Scalar>(&mut self, len: usize) -> Result<PArray<T>, OutOfPersistentMemory> {
        let bytes = (len * T::SIZE) as u64;
        let aligned = self.cursor.next_multiple_of(LINE_BYTES as u64);
        if aligned + bytes > self.capacity {
            return Err(OutOfPersistentMemory {
                requested: bytes,
                available: self.capacity.saturating_sub(aligned),
            });
        }
        let base = Addr(aligned);
        self.cursor = aligned + bytes;
        Ok(PArray::from_raw(base, len))
    }

    /// Bytes allocated so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.cursor
    }

    /// Remaining capacity in bytes.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvmm_line_roundtrip() {
        let mut n = Nvmm::new(4096);
        let mut line = [0u8; LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        n.write_line(LineAddr(3), &line);
        let mut out = [0u8; LINE_BYTES];
        n.read_line(LineAddr(3), &mut out);
        assert_eq!(line, out);
        // Neighbours untouched.
        n.read_line(LineAddr(2), &mut out);
        assert_eq!(out, [0u8; LINE_BYTES]);
    }

    #[test]
    fn write_words_persists_only_selected_words() {
        let mut n = Nvmm::new(4096);
        let mut old = [0u8; LINE_BYTES];
        for (i, b) in old.iter_mut().enumerate() {
            *b = 100 + (i / 8) as u8;
        }
        n.write_line(LineAddr(2), &old);
        let new = [7u8; LINE_BYTES];
        // Words 0 and 5 persist; the rest of the line keeps its old data.
        n.write_words(LineAddr(2), &new, 0b0010_0001);
        let mut out = [0u8; LINE_BYTES];
        n.read_line(LineAddr(2), &mut out);
        for w in 0..WORDS_PER_LINE {
            let expect = if w == 0 || w == 5 { 7u8 } else { 100 + w as u8 };
            assert_eq!(out[8 * w..8 * w + 8], [expect; 8], "word {w}");
        }
        // Mask 0 writes nothing, mask 0xFF is a full-line write.
        n.write_words(LineAddr(2), &new, 0);
        n.read_line(LineAddr(2), &mut out);
        assert_eq!(out[8..16], [101u8; 8]);
        n.write_words(LineAddr(2), &new, 0xFF);
        n.read_line(LineAddr(2), &mut out);
        assert_eq!(out, new);
    }

    #[test]
    fn write_words_on_forked_image_stays_isolated() {
        let mut n = Nvmm::new(4096);
        n.write_line(LineAddr(1), &[3u8; LINE_BYTES]);
        let mut f = n.fork();
        f.write_words(LineAddr(1), &[9u8; LINE_BYTES], 0b0000_0001);
        let mut out = [0u8; LINE_BYTES];
        f.read_line(LineAddr(1), &mut out);
        assert_eq!(out[0..8], [9u8; 8]);
        assert_eq!(out[8..], [3u8; LINE_BYTES - 8][..]);
        n.read_line(LineAddr(1), &mut out);
        assert_eq!(out, [3u8; LINE_BYTES], "original unaffected");
    }

    #[test]
    fn poison_reads_as_pattern_until_scrubbed() {
        let mut n = Nvmm::new(4096);
        n.write_line(LineAddr(4), &[1u8; LINE_BYTES]);
        n.poison_line(LineAddr(4));
        assert!(n.is_poisoned(LineAddr(4)));
        assert_eq!(n.poisoned_count(), 1);
        assert_eq!(n.poisoned_lines(), vec![LineAddr(4)]);
        let mut out = [0u8; LINE_BYTES];
        n.read_line(LineAddr(4), &mut out);
        assert_eq!(out, [POISON_BYTE; LINE_BYTES]);
        // A full-line writeback re-programs the cells and scrubs.
        n.write_line(LineAddr(4), &[2u8; LINE_BYTES]);
        assert!(!n.is_poisoned(LineAddr(4)));
        n.read_line(LineAddr(4), &mut out);
        assert_eq!(out, [2u8; LINE_BYTES]);
    }

    #[test]
    fn poison_travels_with_forks_and_torn_writes_scrub() {
        let mut n = Nvmm::new(4096);
        n.poison_line(LineAddr(7));
        let mut f = n.fork();
        assert!(f.is_poisoned(LineAddr(7)));
        f.write_words(LineAddr(7), &[5u8; LINE_BYTES], 0b0000_0010);
        assert!(!f.is_poisoned(LineAddr(7)), "partial write scrubs too");
        let mut out = [0u8; LINE_BYTES];
        f.read_line(LineAddr(7), &mut out);
        assert_eq!(out[8..16], [5u8; 8]);
        assert_eq!(out[0..8], [POISON_BYTE; 8], "unwritten words keep pattern");
        assert!(n.is_poisoned(LineAddr(7)), "original still poisoned");
    }

    #[test]
    fn poison_word_matches_pattern() {
        assert_eq!(POISON_WORD.to_le_bytes(), [POISON_BYTE; 8]);
    }

    #[test]
    fn nvmm_poke_peek() {
        let mut n = Nvmm::new(4096);
        n.poke_bytes(Addr(100), &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        n.peek_bytes(Addr(100), &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn fork_is_isolated_and_cheap() {
        let mut n = Nvmm::new(4096);
        n.poke_bytes(Addr(64), &[9, 9, 9]);
        let mut f = n.fork();
        assert!(n.is_shared() && f.is_shared());
        assert_eq!(
            f.overlay_lines(),
            0,
            "fork of a flat image carries no overlay"
        );
        // Writes on the fork land in its overlay and are invisible to the
        // original (and vice versa).
        f.poke_bytes(Addr(64), &[1, 2, 3]);
        let mut line = [0xabu8; LINE_BYTES];
        f.write_line(LineAddr(9), &line);
        let mut out = [0u8; 3];
        n.peek_bytes(Addr(64), &mut out);
        assert_eq!(out, [9, 9, 9]);
        f.peek_bytes(Addr(64), &mut out);
        assert_eq!(out, [1, 2, 3]);
        n.read_line(LineAddr(9), &mut line);
        assert_eq!(line, [0u8; LINE_BYTES]);
        assert_eq!(f.overlay_lines(), 2);
        // Dropping the original lets the fork flatten on its next write.
        drop(n);
        f.poke_bytes(Addr(0), &[5]);
        assert_eq!(f.overlay_lines(), 0);
        assert!(!f.is_shared());
        f.peek_bytes(Addr(64), &mut out);
        assert_eq!(out, [1, 2, 3], "overlay contents survive flattening");
    }

    #[test]
    fn forked_peek_straddles_overlay_boundary() {
        let mut n = Nvmm::new(4096);
        n.poke_bytes(Addr(60), &[1, 1, 1, 1, 2, 2, 2, 2]);
        let mut f = n.fork();
        // Overwrite only the second line; a straddling peek must stitch
        // base and overlay bytes together.
        f.poke_bytes(Addr(64), &[7, 7, 7, 7]);
        let mut out = [0u8; 8];
        f.peek_bytes(Addr(60), &mut out);
        assert_eq!(out, [1, 1, 1, 1, 7, 7, 7, 7]);
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(f64::from_bits64(1.25f64.to_bits64()), 1.25);
        assert_eq!(f32::from_bits64(7.5f32.to_bits64()), 7.5);
        assert_eq!(u64::from_bits64(u64::MAX.to_bits64()), u64::MAX);
        assert_eq!(u32::from_bits64(12345u32.to_bits64()), 12345);
        assert_eq!(i64::from_bits64((-17i64).to_bits64()), -17);
    }

    #[test]
    fn heap_alignment_and_exhaustion() {
        let mut h = PersistentHeap::new(256);
        let a = h.alloc::<f64>(3).unwrap(); // 24 bytes at 0
        assert_eq!(a.base(), Addr(0));
        let b = h.alloc::<u32>(1).unwrap(); // next line
        assert_eq!(b.base(), Addr(64));
        assert!(h.alloc::<f64>(1000).is_err());
        let err = h.alloc::<f64>(1000).unwrap_err();
        assert!(err.to_string().contains("out of persistent memory"));
    }

    #[test]
    fn parray_addressing() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<f64>(100).unwrap();
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert_eq!(a.addr(0), a.base());
        assert_eq!(a.addr(1).0 - a.addr(0).0, 8);
        assert_eq!(a.bytes(), 800);
        assert_eq!(a.lines().count(), 800usize.div_ceil(64));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn parray_bounds_check() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<u32>(4).unwrap();
        let _ = a.addr(4);
    }

    #[test]
    fn lines_of_range_spans_correctly() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<f64>(64).unwrap(); // 512 bytes = 8 lines
        let all: Vec<_> = a.lines_of_range(0, 64).collect();
        assert_eq!(all.len(), 8);
        let one: Vec<_> = a.lines_of_range(0, 8).collect();
        assert_eq!(one.len(), 1);
        let straddle: Vec<_> = a.lines_of_range(7, 2).collect();
        assert_eq!(straddle.len(), 2);
    }
}

//! The NVMM image, typed persistent arrays, and a bump allocator.
//!
//! The non-volatile main memory is modelled as a flat byte array. Only data
//! that has been written back from the cache hierarchy (naturally evicted,
//! flushed, cleaned, or drained) lives here; a crash discards all cache
//! contents and keeps exactly this image.

use crate::addr::{Addr, LineAddr, LINE_BYTES};

/// The simulated non-volatile main memory: a flat byte image.
///
/// All contents are durable by definition. The cache hierarchy reads lines
/// from and writes lines to this image; [`crate::machine::Machine`] exposes
/// `poke_*`/`peek_*` helpers that bypass the hierarchy for setup and
/// post-crash inspection.
#[derive(Debug, Clone)]
pub struct Nvmm {
    data: Vec<u8>,
}

impl Nvmm {
    /// Create an image of `bytes` capacity, zero-filled.
    pub fn new(bytes: usize) -> Self {
        Nvmm {
            data: vec![0u8; bytes],
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Read a full cache line into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn read_line(&self, line: LineAddr, buf: &mut [u8; LINE_BYTES]) {
        let base = line.base().0 as usize;
        debug_assert_eq!(base % LINE_BYTES, 0, "line base must be line-aligned");
        debug_assert!(
            base + LINE_BYTES <= self.data.len(),
            "line {line} outside the NVMM image ({} bytes)",
            self.data.len()
        );
        buf.copy_from_slice(&self.data[base..base + LINE_BYTES]);
    }

    /// Write a full cache line from `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the image.
    pub fn write_line(&mut self, line: LineAddr, buf: &[u8; LINE_BYTES]) {
        let base = line.base().0 as usize;
        debug_assert_eq!(base % LINE_BYTES, 0, "line base must be line-aligned");
        debug_assert!(
            base + LINE_BYTES <= self.data.len(),
            "line {line} outside the NVMM image ({} bytes)",
            self.data.len()
        );
        self.data[base..base + LINE_BYTES].copy_from_slice(buf);
    }

    /// Read `N` bytes at an arbitrary address (setup/inspection path).
    pub fn peek_bytes(&self, addr: Addr, out: &mut [u8]) {
        let base = addr.0 as usize;
        out.copy_from_slice(&self.data[base..base + out.len()]);
    }

    /// Write bytes at an arbitrary address (setup path; this models data
    /// that is already durable before the measured run begins).
    pub fn poke_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let base = addr.0 as usize;
        self.data[base..base + bytes.len()].copy_from_slice(bytes);
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
    impl Sealed for i64 {}
}

/// Plain scalar types that can live in simulated persistent memory.
///
/// This trait is sealed; it is implemented for `f64`, `f32`, `u64`, `u32`
/// and `i64`. Values are stored as little-endian bit patterns so that a
/// crash (which operates on raw bytes) round-trips exactly.
pub trait Scalar: private::Sealed + Copy + PartialEq + std::fmt::Debug + Default {
    /// Size of the scalar in bytes.
    const SIZE: usize;
    /// Widen the bit pattern to 64 bits (zero-extended).
    fn to_bits64(self) -> u64;
    /// Recover the value from a 64-bit bit pattern.
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for f32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for u64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

impl Scalar for u32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as u32
    }
}

impl Scalar for i64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

/// A typed handle to a contiguous array in simulated persistent memory.
///
/// `PArray` is a cheap `Copy` handle (base address + length); the actual
/// bytes live in the NVMM image / cache hierarchy. Element accesses go
/// through [`crate::core::CoreCtx`] so they are timed and crash-aware;
/// `Machine::poke_slice`/`peek_slice` provide untimed setup access.
///
/// # Examples
///
/// ```
/// use lp_sim::machine::Machine;
/// use lp_sim::config::MachineConfig;
/// let mut m = Machine::new(MachineConfig::default().with_nvmm_bytes(1 << 20));
/// let arr = m.alloc::<f64>(100).unwrap();
/// m.poke(arr, 3, 1.5);
/// assert_eq!(m.peek(arr, 3), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PArray<T: Scalar> {
    base: Addr,
    len: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Scalar> PArray<T> {
    pub(crate) fn from_raw(base: Addr, len: usize) -> Self {
        PArray {
            base,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base byte address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "PArray index {i} out of bounds (len {})",
            self.len
        );
        Addr(self.base.0 + (i * T::SIZE) as u64)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Distinct cache lines covered by the whole array.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> {
        crate::addr::lines_covering(self.base, self.bytes())
    }

    /// Distinct cache lines covered by elements `[start, start+count)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn lines_of_range(&self, start: usize, count: usize) -> impl Iterator<Item = LineAddr> {
        assert!(start + count <= self.len, "range out of bounds");
        let first = Addr(self.base.0 + (start * T::SIZE) as u64);
        crate::addr::lines_covering(first, (count * T::SIZE) as u64)
    }
}

/// Error returned when the persistent heap runs out of capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfPersistentMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes remaining in the heap.
    pub available: u64,
}

impl std::fmt::Display for OutOfPersistentMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of persistent memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfPersistentMemory {}

/// Line-aligned bump allocator over the NVMM address space.
///
/// Allocations are aligned to cache-line boundaries so distinct arrays never
/// share a line (avoiding false sharing between simulated threads and making
/// flush sets exact).
#[derive(Debug, Clone)]
pub struct PersistentHeap {
    cursor: u64,
    capacity: u64,
}

impl PersistentHeap {
    /// A heap spanning `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        PersistentHeap {
            cursor: 0,
            capacity,
        }
    }

    /// Allocate a typed array of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the heap is exhausted.
    pub fn alloc<T: Scalar>(&mut self, len: usize) -> Result<PArray<T>, OutOfPersistentMemory> {
        let bytes = (len * T::SIZE) as u64;
        let aligned = self.cursor.next_multiple_of(LINE_BYTES as u64);
        if aligned + bytes > self.capacity {
            return Err(OutOfPersistentMemory {
                requested: bytes,
                available: self.capacity.saturating_sub(aligned),
            });
        }
        let base = Addr(aligned);
        self.cursor = aligned + bytes;
        Ok(PArray::from_raw(base, len))
    }

    /// Bytes allocated so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.cursor
    }

    /// Remaining capacity in bytes.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvmm_line_roundtrip() {
        let mut n = Nvmm::new(4096);
        let mut line = [0u8; LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        n.write_line(LineAddr(3), &line);
        let mut out = [0u8; LINE_BYTES];
        n.read_line(LineAddr(3), &mut out);
        assert_eq!(line, out);
        // Neighbours untouched.
        n.read_line(LineAddr(2), &mut out);
        assert_eq!(out, [0u8; LINE_BYTES]);
    }

    #[test]
    fn nvmm_poke_peek() {
        let mut n = Nvmm::new(4096);
        n.poke_bytes(Addr(100), &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        n.peek_bytes(Addr(100), &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(f64::from_bits64(1.25f64.to_bits64()), 1.25);
        assert_eq!(f32::from_bits64(7.5f32.to_bits64()), 7.5);
        assert_eq!(u64::from_bits64(u64::MAX.to_bits64()), u64::MAX);
        assert_eq!(u32::from_bits64(12345u32.to_bits64()), 12345);
        assert_eq!(i64::from_bits64((-17i64).to_bits64()), -17);
    }

    #[test]
    fn heap_alignment_and_exhaustion() {
        let mut h = PersistentHeap::new(256);
        let a = h.alloc::<f64>(3).unwrap(); // 24 bytes at 0
        assert_eq!(a.base(), Addr(0));
        let b = h.alloc::<u32>(1).unwrap(); // next line
        assert_eq!(b.base(), Addr(64));
        assert!(h.alloc::<f64>(1000).is_err());
        let err = h.alloc::<f64>(1000).unwrap_err();
        assert!(err.to_string().contains("out of persistent memory"));
    }

    #[test]
    fn parray_addressing() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<f64>(100).unwrap();
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert_eq!(a.addr(0), a.base());
        assert_eq!(a.addr(1).0 - a.addr(0).0, 8);
        assert_eq!(a.bytes(), 800);
        assert_eq!(a.lines().count(), 800usize.div_ceil(64));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn parray_bounds_check() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<u32>(4).unwrap();
        let _ = a.addr(4);
    }

    #[test]
    fn lines_of_range_spans_correctly() {
        let mut h = PersistentHeap::new(1 << 16);
        let a = h.alloc::<f64>(64).unwrap(); // 512 bytes = 8 lines
        let all: Vec<_> = a.lines_of_range(0, 64).collect();
        assert_eq!(all.len(), 8);
        let one: Vec<_> = a.lines_of_range(0, 8).collect();
        assert_eq!(one.len(), 1);
        let straddle: Vec<_> = a.lines_of_range(7, 2).collect();
        assert_eq!(straddle.len(), 2);
    }
}
